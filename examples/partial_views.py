#!/usr/bin/env python3
"""Maximally contained rewritings (Section 7 future work).

When the views do not retain enough information for an *equivalent*
rewriting, the paper's future-work direction (in the spirit of Duschka &
Genesereth / Duschka & Levy) is to return the best *sound* answer: a
rewriting whose result is contained in the query's, maximal among such.

Scenario: the mediator can only reach two partial archives -- one holding
SIGMOD publications, one holding 1997 publications.  A query for ALL
titles has no equivalent rewriting, but the union of both archives'
titles is the maximally contained answer.

Run:  python examples/partial_views.py
"""

from repro.oem import build_database, obj
from repro.rewriting import maximally_contained_rewritings, rewrite
from repro.tsl import evaluate, evaluate_program, parse_query, print_query


def main() -> None:
    db = build_database("db", [
        obj("pub", [obj("title", "views-paper"),
                    obj("booktitle", "sigmod"), obj("year", 1993)]),
        obj("pub", [obj("title", "mediators-paper"),
                    obj("booktitle", "vldb"), obj("year", 1997)]),
        obj("pub", [obj("title", "obscure-paper"),
                    obj("booktitle", "icde"), obj("year", 1995)]),
    ])
    views = {
        "sigmod_arch": parse_query(
            "<v(P) pub {<c(P,L,W) L W>}> :- "
            "<P pub {<B booktitle sigmod>}>@db AND <P pub {<X L W>}>@db",
            name="sigmod_arch"),
        "y97_arch": parse_query(
            "<w(P) pub {<d(P,L,W) L W>}> :- "
            "<P pub {<Y year 1997>}>@db AND <P pub {<X L W>}>@db",
            name="y97_arch"),
    }
    query = parse_query("<f(P) title T> :- <P pub {<X title T>}>@db")

    print("query:", print_query(query))
    print("views: partial archives (sigmod pubs; 1997 pubs)\n")

    equivalent_result = rewrite(query, views, total_only=True)
    print("equivalent rewritings:", len(equivalent_result.rewritings),
          "(the archives cover only part of the data)")

    contained = maximally_contained_rewritings(query, views)
    print(f"\nmaximally contained rewritings: {len(contained)}")
    for rewriting in contained:
        print("   ", rewriting)

    # Execute the union of the maximal rewritings over the materialized
    # archives: the best obtainable answer.
    materialized = {name: evaluate(view, db, answer_name=name)
                    for name, view in views.items()}
    union = evaluate_program([r.query for r in contained], materialized)
    got = sorted(r.value for r in union.root_objects())
    full = sorted(r.value for r in evaluate(query, db).root_objects())
    print("\nfull answer:        ", full)
    print("best sound answer:  ", got)
    print("missing (unreachable through the views):",
          sorted(set(full) - set(got)))


if __name__ == "__main__":
    main()
