#!/usr/bin/env python3
"""Quickstart: OEM data, TSL queries, and rewriting with views.

Builds the paper's Figure 3 bibliographic objects, runs a TSL query over
them, then demonstrates the headline capability: rewriting a query to run
against a view instead of the base data, with an identical result.

Run:  python examples/quickstart.py
"""

from repro.oem import build_database, identical, obj
from repro.rewriting import rewrite
from repro.tsl import evaluate, parse_query, print_query


def main() -> None:
    # ------------------------------------------------------------------
    # 1. An OEM database (Figure 3 of the paper, plus a second pub).
    # ------------------------------------------------------------------
    db = build_database("db", [
        obj("person", [obj("name", "A. Gupta")], oid="per1"),
        obj("pub", [obj("author", "A. Gupta"),
                    obj("title", "Constraint Views"),
                    obj("booktitle", "SIGMOD"),
                    obj("year", 1993)], oid="pub1"),
        obj("pub", [obj("author", "Y. Papakonstantinou"),
                    obj("title", "Object Exchange"),
                    obj("booktitle", "ICDE"),
                    obj("year", 1995)], oid="pub2"),
    ])
    print("database:", db)

    # ------------------------------------------------------------------
    # 2. A TSL query: titles of SIGMOD publications.
    # ------------------------------------------------------------------
    query = parse_query('''
        <hit(P) sigmod-title T> :-
            <P pub {<B booktitle "SIGMOD">}>@db AND
            <P pub {<X title T>}>@db
    ''')
    print("\nquery:\n ", print_query(query, multiline=True))
    answer = evaluate(query, db)
    for root in answer.root_objects():
        print("answer object:", root.oid, "->", root.value)

    # ------------------------------------------------------------------
    # 3. A view, and the rewriting of the query over it.
    # ------------------------------------------------------------------
    view = parse_query('''
        <v(P) pub {<c(P,L,W) L W>}> :-
            <P pub {<B booktitle "SIGMOD">}>@db AND
            <P pub {<X L W>}>@db
    ''', name="sigmod_pubs")
    print("\nview sigmod_pubs:\n ", print_query(view, multiline=True))

    result = rewrite(query, {"sigmod_pubs": view})
    print(f"\n{len(result.rewritings)} rewriting(s) found; stats:",
          result.stats)
    for rewriting in result.rewritings:
        print("  rewriting:", print_query(rewriting.query))

    # ------------------------------------------------------------------
    # 4. The rewriting evaluated over the *materialized view* returns
    #    exactly the same answer as the query over the base data.
    # ------------------------------------------------------------------
    materialized = evaluate(view, db, answer_name="sigmod_pubs")
    via_view = evaluate(result.rewritings[0].query,
                        {"db": db, "sigmod_pubs": materialized})
    print("\nanswers identical via view:", identical(answer, via_view))


if __name__ == "__main__":
    main()
