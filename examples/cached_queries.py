#!/usr/bin/env python3
"""Answering queries from cached query results (Section 1; benchmark E10).

"If a cached query result contains all SIGMOD publications, our rewriting
algorithm can create a rewriting query where SIGMOD 97 publications are
obtained by filtering the cached query for 1997 publications."

Builds a bibliography, runs the broad SIGMOD query once (populating the
cache), then answers the narrower SIGMOD-97 query *from the cache* -- and
times both paths to show the win.

Run:  python examples/cached_queries.py
"""

import time

from repro.oem import identical
from repro.repository import Repository
from repro.tsl import evaluate
from repro.workloads import (conference_query, generate_bibliography,
                             sigmod_97_query)


def main() -> None:
    db = generate_bibliography(3000, seed=42, sigmod_fraction=0.15)
    print(f"bibliography: {db.stats()}")
    repo = Repository.from_database(db)

    broad = conference_query("sigmod")
    narrow = sigmod_97_query()

    # Populate the cache with the broad query's answer.
    started = time.perf_counter()
    report = repo.query_with_report(broad)
    broad_seconds = time.perf_counter() - started
    print(f"\nbroad query (all SIGMOD pubs): method={report.method}, "
          f"{len(report.answer.roots)} pubs, {broad_seconds:.3f}s")

    # The narrow query is answered by *rewriting over the cache*.
    started = time.perf_counter()
    report = repo.query_with_report(narrow)
    cached_seconds = time.perf_counter() - started
    print(f"narrow query (SIGMOD 97) via cache: method={report.method}, "
          f"{len(report.answer.roots)} pubs, {cached_seconds:.3f}s")
    assert report.method == "cache"

    # Compare against direct evaluation over the full store.
    started = time.perf_counter()
    direct = evaluate(narrow, db)
    direct_seconds = time.perf_counter() - started
    print(f"narrow query direct over store: "
          f"{len(direct.roots)} pubs, {direct_seconds:.3f}s")

    print("\nanswers identical:", identical(report.answer, direct))
    if cached_seconds > 0:
        print(f"cache speedup: {direct_seconds / cached_seconds:.1f}x")
    print("cache stats:", repo.cache.stats)

    # Updates invalidate: the cached entry is version-stale afterwards.
    repo.store.add_root(repo.store.add_atomic("late", "noise", 1))
    report = repo.query_with_report(narrow)
    print("\nafter a store update, method =", report.method,
          "(stale cache skipped)")


if __name__ == "__main__":
    main()
