#!/usr/bin/env python3
"""The TSIMMIS mediation scenario of Figures 1-2 (the "SIGMOD 97" story).

Three autonomous bibliographic sources with different query capabilities:

* ``acm``   supports selections on *year* only,
* ``dblib`` supports selections on *conference* only,
* ``arch``  supports a parameterless dump of everything.

A user asks for the SIGMOD 1997 publications of each source.  The
Capability-Based Rewriter decides, per source, what can be pushed down
(the paper: "if one source only supports queries on year, the CBR will
decide that a query that retrieves the '97 publications will be sent to
this source.  The rest, i.e., filtering for SIGMOD, will be done at the
mediator").

Run:  python examples/biblio_mediator.py
"""

import random

from repro.mediator import CapabilityView, Mediator, Source
from repro.oem import build_database, obj
from repro.tsl import parse_query


def make_source(name: str, seed: int, capability_text: str) -> Source:
    rng = random.Random(seed)
    confs = ["sigmod", "vldb", "icde", "pods"]
    pubs = []
    for index in range(12):
        pubs.append(obj("pub", [
            obj("title", f"{name}-paper-{index}"),
            obj("conf", rng.choice(confs)),
            obj("year", rng.choice([1995, 1996, 1997])),
        ]))
    db = build_database(name, pubs)
    capability = CapabilityView.from_text(f"{name}_cap", capability_text)
    return Source(name, db, [capability])


def main() -> None:
    acm = make_source("acm", seed=1, capability_text="""
        <va(P) pub {<ca(P,L,W) L W>}> :-
            <P pub {<Y year $YEAR>}>@acm AND <P pub {<X L W>}>@acm
    """)
    dblib = make_source("dblib", seed=2, capability_text="""
        <vd(P) pub {<cd(P,L,W) L W>}> :-
            <P pub {<C conf $CONF>}>@dblib AND <P pub {<X L W>}>@dblib
    """)
    arch = make_source("arch", seed=3, capability_text="""
        <vr(P) pub {<cr(P,L,W) L W>}> :- <P pub {<X L W>}>@arch
    """)

    mediator = Mediator(sources={s.name: s for s in (acm, dblib, arch)})

    print("Capabilities:")
    for source in (acm, dblib, arch):
        for capability in source.capabilities:
            print("  ", capability)

    # One source-specific "SIGMOD 97" query per source (the mediator's
    # decomposition of the user query, as in Figure 2).
    for source in ("acm", "dblib", "arch"):
        query = parse_query(
            f"<hit(P) pub {{<k(P,L,W) L W>}}> :- "
            f"<P pub {{<Y year 1997>}}>@{source} AND "
            f"<P pub {{<C conf sigmod>}}>@{source} AND "
            f"<P pub {{<X L W>}}>@{source}")
        print(f"\n--- source-specific query against {source} ---")
        print(mediator.explain(query))
        report = mediator.answer_with_report(query)
        print(f"result: {len(report.answer.roots)} publications, "
              f"{report.source_queries} source query(ies), "
              f"{report.objects_transferred} objects transferred")
        for root in report.answer.root_objects():
            titles = [c.value for c in root.value if c.label == "title"]
            print("   *", titles[0])

    # An integrated view: the mediator expands queries over it by
    # composition, then plans each expanded rule through the CBR.
    print("\n--- integrated view over the archive source ---")
    mediator.define_view("recent", """
        <u(P) pub {<uc(P,L,W) L W>}> :-
            <P pub {<Y year 1997>}>@arch AND <P pub {<X L W>}>@arch
    """)
    query = parse_query(
        "<hit(P) found yes> :- "
        "<u(P) pub {<U2 conf sigmod>}>@recent")
    print(mediator.explain(query))
    answer = mediator.answer(query)
    print(f"integrated answer: {len(answer.roots)} publications")


if __name__ == "__main__":
    main()
