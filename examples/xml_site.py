#!/usr/bin/env python3
"""Web-site management with views over XML data (Section 1, [11]).

"A Web site is a declaratively-defined graph over the semistructured data
graph ... queries asked over the data graph need to be rewritten as
queries over the Web site structure and contents.  The Web site
definitions are just view definitions over the data graph."

This example imports an XML product catalog (with an internal DTD), defines
a "web site" as TSL views over it, and rewrites data-graph queries to run
against the site pages only.

Run:  python examples/xml_site.py
"""

from repro.oem import identical
from repro.rewriting import rewrite
from repro.tsl import evaluate, parse_query, print_query
from repro.xmlbridge import dtd_from_document, xml_to_oem

CATALOG = """<?xml version="1.0"?>
<!DOCTYPE catalog [
  <!ELEMENT catalog (product*)>
  <!ELEMENT product (name, price, category)>
  <!ELEMENT name CDATA>
  <!ELEMENT price CDATA>
  <!ELEMENT category CDATA>
]>
<catalog>
  <product><name>laptop</name><price>999</price>
           <category>computers</category></product>
  <product><name>mouse</name><price>19</price>
           <category>computers</category></product>
  <product><name>desk</name><price>120</price>
           <category>furniture</category></product>
  <product><name>lamp</name><price>35</price>
           <category>furniture</category></product>
</catalog>
"""


def main() -> None:
    db = xml_to_oem(CATALOG)
    dtd = dtd_from_document(CATALOG)
    print("imported catalog:", db.stats())
    print("DTD says product has exactly one price:",
          dtd.functional_child("product", "price"))

    # The "web site": one page family listing products per category.
    # (Note the page body requires only category and name: a page that
    # additionally demanded a price could answer strictly fewer queries,
    # because TSL's rewriting cannot use existence constraints.)
    page = parse_query("""
        <page(C) category-page {
            <hdr(C) heading C>
            <row(P) row {<nm(P,N) name N>}>}> :-
            <R catalog {<P product {<K category C>}>}>@db AND
            <R catalog {<P product {<X name N>}>}>@db
    """, name="site")
    print("\nsite definition:\n", print_query(page, multiline=True))
    site = evaluate(page, db, answer_name="site")
    print("site pages:", len(site.roots))

    # A data-graph query: names of products cheaper than ... well, TSL
    # has no comparisons; ask for the names of products in 'computers'.
    query = parse_query("""
        <f(P) product-name N> :-
            <R catalog {<P product {<K category computers>}>}>@db AND
            <R catalog {<P product {<X name N>}>}>@db
    """)
    print("\ndata-graph query:", print_query(query))
    direct = evaluate(query, db)
    print("direct answer:",
          sorted(r.value for r in direct.root_objects()))

    # Rewrite it to use only the site pages.
    result = rewrite(query, {"site": page}, constraints=dtd,
                     total_only=True)
    print(f"\n{len(result.rewritings)} total rewriting(s) over the site")
    for rewriting in result.rewritings:
        print("   ", print_query(rewriting.query))
    via_site = evaluate(result.rewritings[0].query, {"site": site})
    print("identical answers via the site:", identical(direct, via_site))


if __name__ == "__main__":
    main()
