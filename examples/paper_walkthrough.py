#!/usr/bin/env python3
"""The worked examples of Section 3, executed end to end.

Walks through Examples 3.1-3.5 exactly as the paper presents them:

* (Q3) over (V1)  -- rewritable: produces (Q4).
* (Q5) over (V1)  -- rewritable via a *set mapping*: produces (Q6).
* (Q7) over (V1)  -- mapping (M6) exists, candidate (Q8) is built, but
  its composition (Q9) is not equivalent to (Q7): no rewriting.
* (Q11)           -- the chase turns the set variable into (Q10).
* (Q7) + the Section 3.3 DTD -- label inference and the labeled FD make
  (Q8) a valid rewriting after all.

Run:  python examples/paper_walkthrough.py
"""

from repro.rewriting import (chase, compose, find_mappings, paper_dtd,
                             rewrite)
from repro.tsl import parse_query, print_query


def banner(title: str) -> None:
    print("\n" + "=" * 72)
    print(title)
    print("=" * 72)


def show_rewritings(label, query, views, constraints=None):
    result = rewrite(query, views, constraints=constraints)
    print(f"{label}: {len(result.rewritings)} rewriting(s)")
    for rewriting in result.rewritings:
        print("   ", print_query(rewriting.query))
    return result


def main() -> None:
    v1 = parse_query("""
        <g(P') p {<pp(P',Y') pr Y'> <h(X') v Z'>}> :-
            <P' p {<X' Y' Z'>}>@db
    """, name="V1")
    views = {"V1": v1}

    banner("The view (V1): groups labels under pr, values under v")
    print(print_query(v1, multiline=True))

    banner("Example 3.1: (Q3) asks whether the value leland appears")
    q3 = parse_query("<f(P) stanford yes> :- <P p {<X Y leland>}>@db")
    print("query:", print_query(q3))
    [mapping] = find_mappings(chase(v1), chase(q3))
    print("the mapping (M2):", mapping.subst)
    show_rewritings("(Q4)", q3, views)

    banner("Example 3.2: (Q5) needs a set mapping")
    q5 = parse_query(
        "<f(P) stanford yes> :- <P p {<X Y {<Z last stanford>}>}>@db")
    print("query:", print_query(q5))
    [mapping] = find_mappings(chase(v1), chase(q5))
    print("the mapping (M5):", mapping.subst)
    print("   (note Z' mapped to the set pattern {<Z last stanford>})")
    show_rewritings("(Q6)", q5, views)

    banner("Example 3.3: (Q7) has a mapping but NO rewriting")
    q7 = parse_query(
        "<f(P) stanford yes> :- <P p {<X name {<Z last stanford>}>}>@db")
    print("query:", print_query(q7))
    [mapping] = find_mappings(chase(v1), chase(q7))
    print("the mapping (M6):", mapping.subst)
    q8 = parse_query("""
        <f(P) stanford yes> :-
            <g(P) p {<pp(P,Y) pr name>
                     <h(X) v {<Z last stanford>}>}>@V1
    """)
    print("candidate (Q8):", print_query(q8))
    composed = compose(q8, views)
    print(f"composition (Q9): a union of {len(composed)} rule(s); "
          "not equivalent to (Q7) --")
    print("  the view 'loses' the label-value correspondence.")
    show_rewritings("(Q7) without constraints", q7, views)

    banner("Example 3.4: the chase extension for set variables")
    q11 = parse_query("""
        <f(P) stan-student V> :-
            <P p {<U university stanford>}>@db AND <P p V>@db
    """)
    print("(Q11):", print_query(q11))
    print("chased:", print_query(chase(q11)))
    print("   (V became a fresh set pattern; the head was rewritten too)")

    banner("Example 3.5: with the Section 3.3 DTD, (Q7) IS rewritable")
    dtd = paper_dtd()
    print("label inference: p . ? . last  =>",
          dtd.infer_middle_label("p", "last"))
    print("labeled FD: p -> name:", dtd.functional_child("p", "name"))
    show_rewritings("(Q7) with the DTD", q7, views, constraints=dtd)


if __name__ == "__main__":
    main()
