#!/usr/bin/env python3
"""Structural constraints unlock rewritings (Section 3.3, Example 3.5).

(Q7) asks for persons whose *name* contains <last stanford>.  The view
(V1) hides which label each value sat under, so without extra knowledge
there is no rewriting.  The Section 3.3 DTD guarantees (a) the only
p-subobject that can contain a `last` is `name` (label inference) and
(b) each p has exactly one name (a labeled functional dependency) --
together they make the candidate (Q8) correct.

The same constraints can also be *discovered from the data*: a DataGuide
plus instance cardinalities yields an instance-level DTD that unlocks the
identical rewriting.

Run:  python examples/dtd_constraints.py
"""

from repro.oem import identical
from repro.rewriting import (build_dataguide, dtd_from_dataguide, paper_dtd,
                             rewrite)
from repro.tsl import evaluate, print_query
from repro.workloads import generate_people, query_q7, view_v1


def main() -> None:
    db = generate_people(200, seed=13)
    print("people database:", db.stats())
    v1 = view_v1()
    q7 = query_q7()
    views = {"V1": v1}
    print("\n(V1):", print_query(v1))
    print("(Q7):", print_query(q7))

    # ------------------------------------------------------------------
    # Without constraints: no rewriting exists (Example 3.3).
    # ------------------------------------------------------------------
    bare = rewrite(q7, views)
    print(f"\nwithout constraints: {len(bare.rewritings)} rewritings "
          f"({bare.stats.candidates_tested} candidates tested)")

    # ------------------------------------------------------------------
    # With the paper's DTD: one rewriting (Example 3.5).
    # ------------------------------------------------------------------
    dtd = paper_dtd()
    with_dtd = rewrite(q7, views, constraints=dtd)
    print(f"with the Section 3.3 DTD: {len(with_dtd.rewritings)} rewriting")
    for rewriting in with_dtd.rewritings:
        print("   ", print_query(rewriting.query))

    # Semantics check on DTD-conforming data.
    [rewriting] = with_dtd.rewritings
    materialized = evaluate(v1, db, answer_name="V1")
    direct = evaluate(q7, db)
    via = evaluate(rewriting.query, {"db": db, "V1": materialized})
    print("rewriting identical to direct evaluation:",
          identical(direct, via))
    print(f"  ({len(direct.roots)} matching persons)")

    # ------------------------------------------------------------------
    # The same constraints, mined from the instance via a DataGuide.
    # ------------------------------------------------------------------
    guide = build_dataguide(db)
    print(f"\nDataGuide: {guide.node_count()} nodes, "
          f"{len(guide.label_paths())} label paths")
    print("  p . ? . last =>", guide.infer_middle_label("p", "last"))
    derived = dtd_from_dataguide(db)
    mined = rewrite(q7, views, constraints=derived)
    print(f"with instance-derived constraints: "
          f"{len(mined.rewritings)} rewriting (same as the DTD)")


if __name__ == "__main__":
    main()
