"""Differential testing and fuzzing for the rewriting pipeline.

This package turns the paper's correctness claims into *executable
oracles* checked on randomly generated inputs:

- :mod:`repro.oracle.gen` -- deterministic seeded generation of fuzz
  cases (database + query + views + optional DTD) plus the shared
  random-workload helpers used by the test and benchmark suites.
- :mod:`repro.oracle.brute` -- an independent brute-force containment
  mapping enumerator used to cross-check ``repro.rewriting.mappings``.
- :mod:`repro.oracle.oracles` -- the three oracle families: semantic
  (rewritings evaluate to the original answers), containment (engine
  mappings agree with brute force; equivalence verdicts are sound), and
  metamorphic (chase idempotence, evaluation preservation, composition
  associativity, printer/parser round trips).
- :mod:`repro.oracle.shrink` -- greedy counterexample minimization.
- :mod:`repro.oracle.corpus` -- replayable JSON persistence of failures.
- :mod:`repro.oracle.runner` -- the campaign loop behind
  ``python -m repro fuzz``.

See ``docs/TESTING.md`` for the user-facing guide.
"""

from __future__ import annotations

from .brute import brute_coverage, brute_mappings, brute_query_maps_into
from .corpus import (case_from_json, case_to_json, load_case, load_corpus,
                     save_case)
from .gen import (DEFAULT_PROFILE_ROTATION, LABEL_POOL, PROFILES, VALUE_POOL,
                  Case, CaseConfig, generate_case, random_ground_term,
                  random_query, random_substitution, random_term,
                  sample_db_and_query, sample_view)
from .oracles import (ORACLES, ContainmentOracle, Failure, MetamorphicOracle,
                      OracleResult, SemanticOracle, SignatureOracle,
                      run_oracle)
from .runner import (DEFAULT_ORACLES, FailureRecord, FuzzConfig, FuzzReport,
                     replay, run_fuzz)
from .shrink import shrink_case

__all__ = [
    "DEFAULT_ORACLES",
    "DEFAULT_PROFILE_ROTATION",
    "LABEL_POOL",
    "ORACLES",
    "PROFILES",
    "VALUE_POOL",
    "Case",
    "CaseConfig",
    "ContainmentOracle",
    "Failure",
    "FailureRecord",
    "FuzzConfig",
    "FuzzReport",
    "MetamorphicOracle",
    "OracleResult",
    "SemanticOracle",
    "SignatureOracle",
    "brute_coverage",
    "brute_mappings",
    "brute_query_maps_into",
    "case_from_json",
    "case_to_json",
    "generate_case",
    "load_case",
    "load_corpus",
    "random_ground_term",
    "random_query",
    "random_substitution",
    "random_term",
    "replay",
    "run_fuzz",
    "run_oracle",
    "sample_db_and_query",
    "sample_view",
    "save_case",
    "shrink_case",
]
