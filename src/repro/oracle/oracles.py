"""The three executable oracles (semantic, containment, metamorphic).

Each oracle takes a generated :class:`~repro.oracle.gen.Case` and returns
the invariant violations it found.  The oracles are *executable
specifications* of the paper's claims:

semantic
    Soundness of the rewriter (Lemma 5.3 direction of Theorem 5.5): every
    emitted rewriting -- and its composition with the view definitions --
    evaluates to a result identical to the original query's on the
    concrete database.  Plus completeness on cases constructed to admit a
    rewriting (the exposing view).

containment
    Differential check of the containment-mapping engine against the
    brute-force enumerator of :mod:`repro.oracle.brute`, and of the
    Section 4 equivalence verdicts against actual evaluation (an
    ``equivalent`` verdict that evaluation refutes is a soundness bug).

metamorphic
    Relations that must hold between pipeline stages without knowing the
    expected output: the chase and normal form preserve evaluation, the
    chase is idempotent, printing then parsing is the identity, and
    composing a probe query with a view is semantically the same as
    evaluating the probe over the materialized view -- including through
    a stack of two views, where one-shot and stepwise composition must
    agree (associativity of view inlining).

memo
    Memoization transparency: rewriting through a
    :class:`~repro.rewriting.session.RewriteSession` -- cold and warm
    (the second call over the same session exercises every memo hit
    path) -- returns exactly the rewriting set of the unmemoized
    pipeline, compared by canonical hash, and the session's memoized
    chase agrees with the plain chase.

signature
    Transparency and soundness of the label-signature pre-filter
    (:mod:`repro.analysis.viewset.signature`): rewriting with the
    pre-filter on returns exactly the rewriting set of rewriting with
    it off, and every view the signature judges inadmissible for the
    query profile truly has no containment mapping into the prepared
    target, confirmed by the brute-force enumerator.

index
    Transparency of the target-path index
    (:mod:`repro.rewriting.index`): for every chased view,
    :func:`~repro.rewriting.mappings.find_mappings` with the index on
    must return the *identical list* of mappings (same order, same
    coverage sets) as the unindexed scan -- the index only skips
    target paths that provably cannot match, so the surviving search
    tree is the same.  Checked at the ``body_mappings`` level too, so
    a divergence is pinned to the narrowest kernel.

persist
    Transparency of the disk layer (:mod:`repro.storage`) and
    soundness of label-based incremental maintenance: the durable
    store reloads the case database byte-identically through both the
    WAL-replay and the snapshot path with a stable version; a sharded
    query cache and a rewrite-session memo round-trip through
    save/close/reload and serve the cached query (resp. rewrite
    result) as a hit with byte-identical answers and canonical
    fingerprints; re-saving a reloaded cache reproduces the shard
    files byte for byte; and an update touching labels a cached
    statement can match invalidates its entry while a provably
    disjoint update patches it in place with the answer intact.
"""

from __future__ import annotations

import json
import tempfile
import traceback
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Protocol

from ..analysis.viewset.signature import query_profile, view_signature
from ..errors import ChaseContradictionError, CompositionError, ReproError
from ..logic.terms import FunctionTerm
from ..oem.equivalence import explain_difference, identical
from ..oem.model import OemDatabase
from ..oem.serialize import database_to_json
from ..rewriting.canon import query_key
from ..rewriting.chase import chase
from ..rewriting.composition import compose
from ..rewriting.equivalence import equivalent, minimize, prepare_program
from ..rewriting.mappings import body_mappings, find_mappings
from ..rewriting.rewriter import rewrite
from ..rewriting.session import RewriteSession
from ..storage import (DurableStore, SessionRegistry, ShardedCacheStore,
                       ShardedQueryCache, StorageLayout)
from ..storage.maintenance import statement_labels
from ..tsl.ast import Query, SetPatternTerm
from ..tsl.evaluator import evaluate, evaluate_program
from ..tsl.normalize import normalize, path_to_condition, query_paths
from ..tsl.parser import parse_query
from ..tsl.printer import print_query
from ..tsl.validate import is_safe
from ..workloads.random_oem import RandomQueryConfig, sample_query
from .brute import brute_coverage, brute_mappings
from .gen import Case, sample_view


@dataclass(frozen=True)
class Failure:
    """One violated invariant."""

    oracle: str
    invariant: str
    message: str

    def __str__(self) -> str:
        return f"[{self.oracle}/{self.invariant}] {self.message}"


@dataclass
class OracleResult:
    """What one oracle did on one case."""

    checks: int = 0
    failures: list[Failure] = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.failures is None:
            self.failures = []


class Oracle(Protocol):
    name: str

    def check(self, case: Case) -> OracleResult: ...


def _diff_summary(left: OemDatabase, right: OemDatabase) -> str:
    diffs = explain_difference(left, right, limit=3)
    return "; ".join(diffs) if diffs else "results differ"


def _term_has_set_pattern(term: object) -> bool:
    if isinstance(term, SetPatternTerm):
        return True
    if isinstance(term, FunctionTerm):
        return any(_term_has_set_pattern(arg) for arg in term.args)
    return False


def _uses_set_mappings(query: Query) -> bool:
    """True when a body pattern embeds a set-pattern term.

    View instantiations built from *set mappings* (Example 3.2) carry
    ``{<...>}`` terms inside their head oids; such a rewriting denotes
    copies of source subgraphs and is only checkable through its
    composition, not by direct evaluation over materialized views.
    """
    for condition in query.body:
        for pattern in condition.pattern.nested_patterns():
            if (_term_has_set_pattern(pattern.oid)
                    or _term_has_set_pattern(pattern.label)
                    or _term_has_set_pattern(pattern.value)):
                return True
    return False


class SemanticOracle:
    """Evaluate Q and every rewriting; the answers must be identical."""

    name = "semantic"

    def __init__(self, max_candidates: int = 128) -> None:
        self.max_candidates = max_candidates

    def check(self, case: Case) -> OracleResult:
        result = OracleResult()
        constraints = case.constraints
        expected = evaluate(case.query, case.db)
        materialized = {
            name: evaluate(view, case.db, answer_name=name)
            for name, view in case.views.items()}
        sources = {case.db.name: case.db, **materialized}
        outcome = rewrite(case.query, case.views, constraints,
                          max_candidates=self.max_candidates)
        for rewriting in outcome:
            if case.conjunctive and not _uses_set_mappings(rewriting.query):
                # Only meaningful without copy semantics: materialized
                # views with hanging subgraphs are not faithful sources.
                result.checks += 1
                actual = evaluate(rewriting.query, sources)
                if not identical(expected, actual):
                    result.failures.append(Failure(
                        self.name, "rewriting-sound",
                        f"rewriting via {sorted(rewriting.views_used)} "
                        f"disagrees with Q on the database: "
                        f"{_diff_summary(expected, actual)}"))
            result.checks += 1
            inlined = evaluate_program(rewriting.composition, case.db)
            if not identical(expected, inlined):
                result.failures.append(Failure(
                    self.name, "composition-sound",
                    f"composition of rewriting via "
                    f"{sorted(rewriting.views_used)} disagrees with Q: "
                    f"{_diff_summary(expected, inlined)}"))
        result.checks += 1
        if case.expect_rewriting and not outcome.rewritings:
            result.failures.append(Failure(
                self.name, "rewriting-complete",
                "case admits a rewriting by construction (exposing view) "
                "but the rewriter found none"))
        return result


class ContainmentOracle:
    """Differential-test mappings and equivalence verdicts."""

    name = "containment"

    def check(self, case: Case) -> OracleResult:
        result = OracleResult()
        constraints = case.constraints
        prepared = prepare_program([case.query], constraints)
        if not prepared:
            return result  # contradictory body: nothing to cross-check
        target = prepared[0]
        for name, view in sorted(case.views.items()):
            chased_view = chase(view, constraints)
            mappings = find_mappings(chased_view, target)
            engine = {m.subst for m in mappings}
            brute = brute_mappings(chased_view, target)
            result.checks += 1
            if engine != brute:
                only_engine = {str(s) for s in engine - brute}
                only_brute = {str(s) for s in brute - engine}
                result.failures.append(Failure(
                    self.name, "mappings-differ",
                    f"view {name}: engine-only={sorted(only_engine)} "
                    f"brute-only={sorted(only_brute)}"))
                continue
            for mapping in mappings:
                result.checks += 1
                brute_covers = brute_coverage(chased_view, target,
                                              mapping.subst)
                if mapping.covers != brute_covers:
                    result.failures.append(Failure(
                        self.name, "coverage-differs",
                        f"view {name}, mapping {mapping.subst}: engine "
                        f"covers {sorted(mapping.covers)}, brute covers "
                        f"{sorted(brute_covers)}"))
        result.checks += 1
        if not equivalent(case.query, chase(case.query, constraints),
                          constraints):
            result.failures.append(Failure(
                self.name, "chase-equivalent",
                "query not judged equivalent to its own chase"))
        result.checks += 1
        if not equivalent(case.query, normalize(case.query), constraints):
            result.failures.append(Failure(
                self.name, "normalize-equivalent",
                "query not judged equivalent to its own normal form"))
        self._check_condition_drops(case, target, result)
        self._check_minimize(case, target, result)
        return result

    def _check_condition_drops(self, case: Case, target: Query,
                               result: OracleResult) -> None:
        """An `equivalent` verdict refuted by evaluation is a bug."""
        constraints = case.constraints
        paths = query_paths(target)
        if len(paths) < 2:
            return
        expected = evaluate(target, case.db)
        for index in range(len(paths)):
            body = tuple(path_to_condition(p)
                         for i, p in enumerate(paths) if i != index)
            smaller = Query(target.head, body, name=target.name)
            if not is_safe(smaller):
                continue
            result.checks += 1
            if equivalent(target, smaller, constraints):
                actual = evaluate(smaller, case.db)
                if not identical(expected, actual):
                    result.failures.append(Failure(
                        self.name, "equivalence-unsound",
                        f"dropping condition {index} judged equivalent "
                        f"but evaluation differs: "
                        f"{_diff_summary(expected, actual)}"))

    def _check_minimize(self, case: Case, target: Query,
                        result: OracleResult) -> None:
        constraints = case.constraints
        minimized = minimize(target)
        result.checks += 1
        if not equivalent(target, minimized, constraints):
            result.failures.append(Failure(
                self.name, "minimize-equivalent",
                "minimize() produced a non-equivalent query"))
            return
        result.checks += 1
        expected = evaluate(target, case.db)
        actual = evaluate(minimized, case.db)
        if not identical(expected, actual):
            result.failures.append(Failure(
                self.name, "minimize-sound",
                f"minimized query evaluates differently: "
                f"{_diff_summary(expected, actual)}"))


class MetamorphicOracle:
    """Stage-relation invariants: chase, normal form, printer, composition."""

    name = "metamorphic"

    def check(self, case: Case) -> OracleResult:
        result = OracleResult()
        constraints = case.constraints
        expected = evaluate(case.query, case.db)
        chased = chase(case.query, constraints)

        result.checks += 1
        rechased = chase(chased, constraints)
        if set(query_paths(chased)) != set(query_paths(rechased)):
            result.failures.append(Failure(
                self.name, "chase-idempotent",
                "chasing a chased query changed its path set"))

        result.checks += 1
        actual = evaluate(chased, case.db)
        if not identical(expected, actual):
            result.failures.append(Failure(
                self.name, "chase-preserves-evaluation",
                f"chase changed the query's result: "
                f"{_diff_summary(expected, actual)}"))

        result.checks += 1
        actual = evaluate(normalize(case.query), case.db)
        if not identical(expected, actual):
            result.failures.append(Failure(
                self.name, "normalize-preserves-evaluation",
                f"normal form changed the query's result: "
                f"{_diff_summary(expected, actual)}"))

        for label, candidate in [("query", case.query), ("chased", chased),
                                 *((f"view:{n}", v)
                                   for n, v in sorted(case.views.items()))]:
            result.checks += 1
            text = print_query(candidate)
            reparsed = parse_query(text)
            if reparsed != candidate:
                result.failures.append(Failure(
                    self.name, "print-parse-roundtrip",
                    f"{label} did not survive print->parse: {text}"))

        self._check_composition(case, result)
        self._check_stacked_composition(case, result)
        return result

    def _probe(self, mv: OemDatabase, seed: int) -> Query | None:
        if not mv.roots:
            return None
        config = RandomQueryConfig(conditions=1, max_depth=2,
                                   label_variable_probability=0.0,
                                   conjunctive=True)
        return sample_query(mv, config, seed=seed)

    def _check_composition(self, case: Case, result: OracleResult) -> None:
        """evaluate(probe, materialized V) == evaluate(compose(probe, V), db)."""
        for name, view in sorted(case.views.items()):
            mv = evaluate(view, case.db, answer_name=name)
            probe = self._probe(mv, case.seed + 17)
            if probe is None:
                continue
            try:
                composed = compose(probe, {name: view})
            except CompositionError:
                continue  # probe not expressible over base data: fine
            result.checks += 1
            direct = evaluate(probe, {name: mv})
            inlined = evaluate_program(composed, case.db)
            if not identical(direct, inlined):
                result.failures.append(Failure(
                    self.name, "composition-semantics",
                    f"probe over materialized {name} disagrees with its "
                    f"composition over the base database: "
                    f"{_diff_summary(direct, inlined)}"))

    def _check_stacked_composition(self, case: Case,
                                   result: OracleResult) -> None:
        """One-shot vs stepwise inlining through a two-view stack."""
        inner = sample_view(case.db, seed=case.seed + 23, name="S1")
        if inner is None:
            return
        m_inner = evaluate(inner, case.db, answer_name="S1")
        if not m_inner.roots:
            return
        outer = sample_view(m_inner, seed=case.seed + 29, name="S2")
        if outer is None:
            return
        m_outer = evaluate(outer, m_inner, answer_name="S2")
        probe = self._probe(m_outer, case.seed + 31)
        if probe is None:
            return
        try:
            one_shot = compose(probe, {"S1": inner, "S2": outer})
            stepwise = [rule
                        for partial in compose(probe, {"S2": outer})
                        for rule in compose(partial, {"S1": inner})]
        except CompositionError:
            return
        result.checks += 1
        direct = evaluate(probe, {"S2": m_outer})
        via_one_shot = evaluate_program(one_shot, case.db)
        via_stepwise = evaluate_program(stepwise, case.db)
        if not identical(via_one_shot, via_stepwise):
            result.failures.append(Failure(
                self.name, "composition-associative",
                f"one-shot and stepwise inlining of a two-view stack "
                f"disagree: {_diff_summary(via_one_shot, via_stepwise)}"))
        elif not identical(direct, via_one_shot):
            result.failures.append(Failure(
                self.name, "composition-associative",
                f"two-view stack inlining disagrees with direct "
                f"evaluation: {_diff_summary(direct, via_one_shot)}"))


class MemoOracle:
    """Memoization must not change any rewriting result.

    Runs ``rewrite`` three ways -- unmemoized, through a cold
    :class:`~repro.rewriting.session.RewriteSession`, and again through
    the now-warm session (serving from the result memo) -- and demands
    the identical rewriting set, compared by the canonical hash of each
    rewriting query plus the views it uses.
    """

    name = "memo"

    def __init__(self, max_candidates: int = 128) -> None:
        self.max_candidates = max_candidates

    @staticmethod
    def _fingerprint(outcome) -> set:
        return {(query_key(r.query), tuple(sorted(r.views_used)))
                for r in outcome.rewritings}

    def check(self, case: Case) -> OracleResult:
        result = OracleResult()
        constraints = case.constraints
        plain = rewrite(case.query, case.views, constraints,
                        max_candidates=self.max_candidates)
        if plain.truncated:
            return result  # partial sets may legitimately differ
        expected = self._fingerprint(plain)
        session = RewriteSession(case.views, constraints)
        for phase in ("cold", "warm"):
            result.checks += 1
            memoized = session.rewrite(
                case.query, max_candidates=self.max_candidates)
            actual = self._fingerprint(memoized)
            if actual != expected:
                result.failures.append(Failure(
                    self.name, f"rewrite-{phase}-differs",
                    f"memoized ({phase} session) rewriting set differs "
                    f"from unmemoized: only_memo="
                    f"{sorted(actual - expected)} only_plain="
                    f"{sorted(expected - actual)}"))
        result.checks += 1
        try:
            plain_chase = chase(case.query, constraints)
        except ChaseContradictionError:
            try:
                session.chase(case.query)
            except ChaseContradictionError:
                pass
            else:
                result.failures.append(Failure(
                    self.name, "chase-memo-differs",
                    "chase() contradicts but session.chase() does not"))
        else:
            if query_key(session.chase(case.query)) \
                    != query_key(plain_chase):
                result.failures.append(Failure(
                    self.name, "chase-memo-differs",
                    "session.chase() disagrees with chase() up to "
                    "renaming"))
        return result


class SignatureOracle:
    """The label-signature pre-filter must be invisible and sound.

    Two invariants over every case:

    * **parity** -- ``rewrite`` with ``signature_prefilter=True`` (the
      default) and ``False`` produce the identical rewriting set,
      compared by canonical hash plus views used (truncated searches
      are skipped: a partial set may legitimately differ when pruning
      changes the enumeration order).
    * **soundness** -- every chased view whose
      :class:`~repro.analysis.viewset.signature.ViewSignature` is
      inadmissible for the prepared target's profile must have *zero*
      containment mappings into that target, confirmed against the
      brute-force enumerator.  A single mapping from a pruned view
      would mean the pre-filter discards real rewritings.
    """

    name = "signature"

    def __init__(self, max_candidates: int = 128) -> None:
        self.max_candidates = max_candidates

    @staticmethod
    def _fingerprint(outcome) -> set:
        return {(query_key(r.query), tuple(sorted(r.views_used)))
                for r in outcome.rewritings}

    def check(self, case: Case) -> OracleResult:
        result = OracleResult()
        constraints = case.constraints
        filtered = rewrite(case.query, case.views, constraints,
                           max_candidates=self.max_candidates)
        unfiltered = rewrite(case.query, case.views, constraints,
                             max_candidates=self.max_candidates,
                             signature_prefilter=False)
        if not filtered.truncated and not unfiltered.truncated:
            result.checks += 1
            on = self._fingerprint(filtered)
            off = self._fingerprint(unfiltered)
            if on != off:
                result.failures.append(Failure(
                    self.name, "prefilter-parity",
                    f"rewriting set changed under the pre-filter: "
                    f"only_on={sorted(on - off)} "
                    f"only_off={sorted(off - on)}"))
        prepared = prepare_program([case.query], constraints)
        if not prepared:
            return result  # contradictory body: every pruning is sound
        target = prepared[0]
        profile = query_profile(target)
        for name, view in sorted(case.views.items()):
            try:
                chased_view = chase(view, constraints)
            except ChaseContradictionError:
                continue  # unsatisfiable view: rewriter skips it anyway
            signature = view_signature(chased_view)
            if signature.admissible_for(profile):
                continue
            result.checks += 1
            mappings = brute_mappings(chased_view, target)
            if mappings:
                result.failures.append(Failure(
                    self.name, "prefilter-unsound",
                    f"view {name} judged inadmissible "
                    f"({signature.missing_from(profile)}) but has "
                    f"{len(mappings)} brute-force containment "
                    f"mapping(s) into the target"))
        return result


class IndexOracle:
    """The target-path index must be invisible to the mapping search.

    :class:`~repro.rewriting.index.PathIndex` statically prunes target
    paths that :func:`~repro.rewriting.mappings.map_path_into` would
    reject unconditionally, and candidates come back in ascending scan
    order -- so the indexed search explores the *same tree* as the full
    scan and must produce the identical mapping **list**, not merely the
    same set.  For every chased view against the prepared target:

    * **find-parity** -- ``find_mappings`` with ``use_index=True`` (the
      default) and ``False`` return equal lists of
      :class:`~repro.rewriting.mappings.Mapping` (substitution *and*
      coverage, in order);
    * **body-parity** -- ``body_mappings`` over the raw path lists
      agrees the same way, pinning any divergence below the coverage
      layer.
    """

    name = "index"

    def check(self, case: Case) -> OracleResult:
        result = OracleResult()
        constraints = case.constraints
        prepared = prepare_program([case.query], constraints)
        if not prepared:
            return result  # contradictory body: nothing to map into
        target = prepared[0]
        target_paths = query_paths(target)
        for name, view in sorted(case.views.items()):
            try:
                chased_view = chase(view, constraints)
            except ChaseContradictionError:
                continue  # unsatisfiable view: rewriter skips it anyway
            result.checks += 1
            indexed = find_mappings(chased_view, target)
            scanned = find_mappings(chased_view, target, use_index=False)
            if indexed != scanned:
                only_on = [str(m.subst) for m in indexed
                           if m not in scanned]
                only_off = [str(m.subst) for m in scanned
                            if m not in indexed]
                result.failures.append(Failure(
                    self.name, "indexed-mappings-differ",
                    f"view {name}: indexed and scan find_mappings "
                    f"disagree: only_indexed={only_on} "
                    f"only_scan={only_off}"))
                continue
            view_paths = query_paths(chased_view)
            result.checks += 1
            body_on = body_mappings(view_paths, target_paths)
            body_off = body_mappings(view_paths, target_paths,
                                     use_index=False)
            if body_on != body_off:
                result.failures.append(Failure(
                    self.name, "indexed-body-mappings-differ",
                    f"view {name}: body_mappings diverges under the "
                    f"index: indexed={len(body_on)} "
                    f"scan={len(body_off)}"))
        return result


class PersistOracle:
    """Disk round trips must be invisible; maintenance must be sound.

    Runs the case through the whole :mod:`repro.storage` stack inside a
    temporary directory:

    * **store** -- ingest the case database into a
      :class:`~repro.storage.durable.DurableStore`, close, reopen (WAL
      replay), compact, reopen (snapshot): both reloads must be
      byte-identical under the sorted OEM serialization with a stable
      store version;
    * **cache** -- evaluate the query and every view, insert into a
      :class:`~repro.storage.shard.ShardedQueryCache`, save, reload
      into a fresh cache: the canonical-key/answer map must round-trip
      byte-identically, the query must hit exactly, and re-saving the
      reloaded cache must reproduce the shard files byte for byte;
    * **memo** -- rewrite through a session, persist the result memo
      via :class:`~repro.storage.registry.SessionRegistry`, reload into
      a fresh session: the lookup must hit with the same canonical
      rewriting fingerprints;
    * **maintenance** -- an update touching only a label the statement
      provably cannot match patches the entry in place (still a hit,
      answer intact), while an update touching a label it can match --
      or any update, when the statement has a label variable --
      invalidates the entry outright.
    """

    name = "persist"
    SHARDS = 2

    def __init__(self, max_candidates: int = 128) -> None:
        self.max_candidates = max_candidates

    @staticmethod
    def _canonical(db: OemDatabase) -> str:
        return json.dumps(database_to_json(db, sort_oids=True),
                          sort_keys=True)

    def check(self, case: Case) -> OracleResult:
        result = OracleResult()
        with tempfile.TemporaryDirectory(prefix="repro-persist-") as tmp:
            root = Path(tmp)
            version = self._check_store(case, root / "store", result)
            self._check_cache(case, root, version, result)
            self._check_session(case, root / "store", version, result)
        return result

    def _check_store(self, case: Case, root: Path,
                     result: OracleResult) -> int:
        store = DurableStore.create(root, case.db.name,
                                    cache_shards=self.SHARDS)
        store.ingest(case.db)
        store.close()
        expected = self._canonical(case.db)
        reopened = DurableStore.open(root)          # the WAL-replay path
        version = reopened.version
        result.checks += 1
        if self._canonical(reopened.db) != expected:
            result.failures.append(Failure(
                self.name, "store-roundtrip",
                "database differs after close/reopen (WAL replay)"))
        reopened.compact()
        reopened.close()
        again = DurableStore.open(root)             # the snapshot path
        result.checks += 1
        if again.version != version \
                or self._canonical(again.db) != expected:
            result.failures.append(Failure(
                self.name, "store-compact-stable",
                f"database or version changed across compact/reopen "
                f"(version {version} -> {again.version})"))
        again.close()
        return version

    def _check_cache(self, case: Case, root: Path, version: int,
                     result: OracleResult) -> None:
        constraints = case.constraints
        layout = StorageLayout(root / "store")
        cache = ShardedQueryCache(shards=self.SHARDS, capacity=64,
                                  constraints=constraints)
        expected: dict[str, str] = {}
        for statement in (case.query, *case.views.values()):
            answer = evaluate(statement, case.db)
            entry = cache.insert(statement, answer, version)
            expected[entry.key] = self._canonical(answer)
        disk = ShardedCacheStore(layout, self.SHARDS)
        disk.save(cache, version)
        reloaded = ShardedQueryCache(shards=self.SHARDS, capacity=64,
                                     constraints=constraints)
        disk.load(reloaded, version)
        loaded = {entry.key: self._canonical(entry.answer)
                  for shard in reloaded.shards
                  for entry in shard.snapshot_entries()}
        result.checks += 1
        if loaded != expected:
            missing = sorted(set(expected) - set(loaded))
            extra = sorted(set(loaded) - set(expected))
            changed = sorted(key for key in set(loaded) & set(expected)
                             if loaded[key] != expected[key])
            result.failures.append(Failure(
                self.name, "cache-roundtrip",
                f"reloaded cache differs: missing={missing[:3]} "
                f"changed={changed[:3]} extra={extra[:3]}"))
        resave = ShardedCacheStore(StorageLayout(root / "resave"),
                                   self.SHARDS)
        resave.save(reloaded, version)
        result.checks += 1
        unstable = [index for index in range(self.SHARDS)
                    if layout.shard_path(index).read_bytes()
                    != resave.layout.shard_path(index).read_bytes()]
        if unstable:
            result.failures.append(Failure(
                self.name, "cache-resave-stable",
                f"re-saving the reloaded cache changed shard file(s) "
                f"{unstable}"))
        key = query_key(case.query)
        result.checks += 1
        answer = reloaded.lookup(case.query, version)
        if answer is None or self._canonical(answer) != expected[key]:
            result.failures.append(Failure(
                self.name, "cache-hit-after-reload",
                "cached query is not served byte-identically from the "
                "reloaded cache"))
        self._check_maintenance(case, reloaded, key, expected.get(key),
                                version, result)

    def _check_maintenance(self, case: Case, cache: ShardedQueryCache,
                           key: str, canonical_answer: str | None,
                           version: int, result: OracleResult) -> None:
        labels = statement_labels(case.query, case.constraints)
        if labels is not None and not labels:
            return  # contradictory body: no update can ever affect it
        current = version
        if labels is not None:
            cache.apply_update(frozenset({"__persist_disjoint__"}),
                               current + 1, from_version=current)
            current += 1
            result.checks += 1
            answer = cache.lookup(case.query, current)
            if answer is None:
                result.failures.append(Failure(
                    self.name, "maintenance-patches",
                    f"update touching no label of {sorted(labels)} "
                    f"dropped a patchable entry"))
            elif self._canonical(answer) != canonical_answer:
                result.failures.append(Failure(
                    self.name, "maintenance-patch-sound",
                    "patched entry serves a different answer"))
        touched = (frozenset({sorted(labels, key=repr)[0]})
                   if labels else frozenset({"__persist_probe__"}))
        cache.apply_update(touched, current + 1, from_version=current)
        result.checks += 1
        if cache.has_key(key):
            result.failures.append(Failure(
                self.name, "maintenance-invalidates",
                f"update touching {sorted(touched)} left the entry for "
                f"a statement with labels "
                f"{'unknown' if labels is None else sorted(labels)} "
                f"live in the cache"))

    def _check_session(self, case: Case, store_root: Path, version: int,
                       result: OracleResult) -> None:
        constraints = case.constraints
        session = RewriteSession(case.views, constraints)
        outcome = session.rewrite(case.query,
                                  max_candidates=self.max_candidates)
        entries = session.result_entries()
        if not entries:
            return  # truncated search: nothing memoized to persist
        registry = SessionRegistry(StorageLayout(store_root))
        registry.save("persist-oracle", session, version)
        fresh = RewriteSession(case.views, constraints)
        loaded = registry.load_into("persist-oracle", fresh, version)
        result.checks += 1
        if loaded["entries"] != len(entries):
            result.failures.append(Failure(
                self.name, "memo-roundtrip",
                f"saved {len(entries)} memo entries, reloaded "
                f"{loaded['entries']} (dropped {loaded['dropped']})"))
        (_key, flags) = entries[0][0]
        value = fresh.lookup_result(case.query, flags)
        result.checks += 1
        if value is None:
            result.failures.append(Failure(
                self.name, "memo-hit-after-reload",
                "reloaded session misses on the persisted rewrite"))
            return
        warm, _explanation = value
        expect = {(query_key(r.query), tuple(sorted(r.views_used)))
                  for r in outcome.rewritings}
        actual = {(query_key(r.query), tuple(sorted(r.views_used)))
                  for r in warm.rewritings}
        if actual != expect:
            result.failures.append(Failure(
                self.name, "memo-fingerprint",
                f"reloaded rewrite result differs: only_reloaded="
                f"{sorted(actual - expect)} only_original="
                f"{sorted(expect - actual)}"))


ORACLES: dict[str, Callable[[], Oracle]] = {
    "semantic": SemanticOracle,
    "containment": ContainmentOracle,
    "index": IndexOracle,
    "memo": MemoOracle,
    "metamorphic": MetamorphicOracle,
    "persist": PersistOracle,
    "signature": SignatureOracle,
}


def run_oracle(oracle: Oracle, case: Case) -> OracleResult:
    """Run one oracle, converting crashes into failures.

    An unexpected exception inside the pipeline under test is itself an
    invariant violation (the oracles only feed it well-formed input).
    """
    try:
        return oracle.check(case)
    except ReproError as exc:
        result = OracleResult(checks=1)
        result.failures.append(Failure(
            oracle.name, "unexpected-error",
            f"{type(exc).__name__}: {exc}"))
        return result
    except Exception as exc:  # noqa: BLE001 -- fuzzing must survive crashes
        result = OracleResult(checks=1)
        summary = traceback.format_exception_only(type(exc), exc)[-1].strip()
        result.failures.append(Failure(
            oracle.name, "unexpected-error", summary))
        return result
