"""Reusable pytest fixtures for randomized workloads.

Both ``tests/conftest.py`` and ``benchmarks/conftest.py`` pull these in
(``from repro.oracle.fixtures import *``) so the test and benchmark
suites sample random databases and queries through one code path --
:func:`repro.oracle.gen.sample_db_and_query` -- instead of each conftest
carrying its own copy of the generator calls.
"""

from __future__ import annotations

import pytest

from ..workloads import RandomOemConfig, RandomQueryConfig
from .gen import generate_case, sample_db_and_query

__all__ = ["random_workload", "random_db", "random_query_for_db",
           "oracle_case"]


@pytest.fixture
def random_workload():
    """Factory: seed -> (database, satisfiable query).

    Accepts optional ``oem=RandomOemConfig(...)`` and
    ``query=RandomQueryConfig(...)`` overrides.
    """

    def factory(seed: int, *, oem: RandomOemConfig | None = None,
                query: RandomQueryConfig | None = None):
        return sample_db_and_query(seed, oem=oem, query=query)

    return factory


@pytest.fixture
def random_db(random_workload):
    """A deterministic medium-sized random database (seed 0)."""
    db, _ = random_workload(0)
    return db


@pytest.fixture
def random_query_for_db(random_workload):
    """The satisfiable query paired with :func:`random_db`."""
    _, query = random_workload(0)
    return query


@pytest.fixture
def oracle_case():
    """Factory: seed -> a full fuzz :class:`~repro.oracle.gen.Case`."""
    return generate_case
