"""A brute-force containment-mapping enumerator.

This is the differential twin of :mod:`repro.rewriting.mappings`: the
same specification (Section 3.1 -- every single path of the source maps
into some single path of the target, prefix absorption as set mappings),
implemented as naively as possible.  No backtracking order heuristics, no
shared matching engine: paths are flattened by a local walker, candidate
assignments are enumerated with :func:`itertools.product`, and matching
is a ~30-line recursive function over plain dicts.  Slow and obviously
correct, which is the point -- any disagreement with the engine is a bug
in one of the two.

Only the :class:`~repro.logic.subst.Substitution` container and the AST
node types are shared with the engine (they are data, not algorithm).
"""

from __future__ import annotations

import itertools

from ..logic.subst import Substitution
from ..logic.terms import Constant, FunctionTerm, Term, Variable
from ..tsl.ast import (Condition, ObjectPattern, PatternValue, Query,
                       SetPattern, SetPatternTerm)
from ..tsl.normalize import Path

# Renaming marker for the source side.  Deliberately different from the
# engine's dagger so the two implementations cannot mask each other's
# renaming bugs.
_APART = "‡"

Binding = dict[Variable, Term]


def flatten(query: Query) -> list[Path]:
    """Root-to-leaf paths of the query body (local, engine-free walker)."""
    paths: list[Path] = []
    seen: set[Path] = set()

    def walk(node: ObjectPattern, prefix: tuple, source: str) -> None:
        steps = prefix + ((node.oid, node.label),)
        value = node.value
        if isinstance(value, SetPattern) and value.patterns:
            for child in value.patterns:
                walk(child, steps, source)
        else:
            path = Path(steps, value, source)
            if path not in seen:
                seen.add(path)
                paths.append(path)

    for condition in query.body:
        walk(condition.pattern, (), condition.source)
    return paths


def _resolve(term: Term, binding: Binding) -> Term:
    """Apply *binding* to *term*.  Bound values contain no source
    variables (one-way matching only binds the source side), so a single
    structural pass suffices."""
    if isinstance(term, Variable):
        return binding.get(term, term)
    if isinstance(term, FunctionTerm):
        return FunctionTerm(term.functor,
                            tuple(_resolve(a, binding) for a in term.args))
    return term


def _match(pattern: Term, target: Term,
           binding: Binding) -> Binding | None:
    """One-way match: bind *pattern*-side variables so it equals *target*.

    Only marker-renamed (source-side) variables are bindable; a target
    variable surfacing on the pattern side via resolution must match by
    equality, never capture.
    """
    pattern = _resolve(pattern, binding)
    if isinstance(pattern, Variable) and pattern.name.endswith(_APART):
        extended = dict(binding)
        extended[pattern] = target
        return extended
    if isinstance(pattern, FunctionTerm):
        if (not isinstance(target, FunctionTerm)
                or pattern.functor != target.functor
                or len(pattern.args) != len(target.args)):
            return None
        out: Binding | None = binding
        for p_arg, t_arg in zip(pattern.args, target.args):
            out = _match(p_arg, t_arg, out)
            if out is None:
                return None
        return out
    # Constants and SetPatternTerms: structural equality.
    return binding if pattern == target else None


def _chain(steps: tuple, leaf: PatternValue) -> ObjectPattern:
    oid, label = steps[-1]
    pattern = ObjectPattern(oid, label, leaf)
    for oid, label in reversed(steps[:-1]):
        pattern = ObjectPattern(oid, label, SetPattern((pattern,)))
    return pattern


def _suffix_term(path: Path, depth: int) -> SetPatternTerm:
    return SetPatternTerm(SetPattern((_chain(path.steps[depth:],
                                             path.leaf),)))


def map_path(a: Path, b: Path, binding: Binding) -> Binding | None:
    """Extend *binding* so source path *a* maps into target path *b*."""
    n, m = len(a.steps), len(b.steps)
    if a.source != b.source or n > m:
        return None
    out: Binding | None = binding
    for (a_oid, a_label), (b_oid, b_label) in zip(a.steps, b.steps):
        out = _match(a_oid, b_oid, out)
        if out is None:
            return None
        out = _match(a_label, b_label, out)
        if out is None:
            return None
    a_leaf = a.leaf
    if isinstance(a_leaf, SetPattern):
        # `{}` leaf asserts "is a set object".
        if n < m or isinstance(b.leaf, SetPattern):
            return out
        return None
    if n < m:
        # Set mapping: the leaf variable absorbs b's leftover suffix.
        if isinstance(_resolve(a_leaf, out), Constant):
            return None
        return _match(a_leaf, _suffix_term(b, n), out)
    if isinstance(b.leaf, SetPattern):
        if isinstance(_resolve(a_leaf, out), Constant):
            return None
        return _match(a_leaf, SetPatternTerm(SetPattern(())), out)
    return _match(a_leaf, b.leaf, out)


def _rename_apart(paths: list[Path]) -> list[Path]:
    def rename(term: Term) -> Term:
        if isinstance(term, Variable):
            return Variable(term.name + _APART)
        if isinstance(term, FunctionTerm):
            return FunctionTerm(term.functor,
                                tuple(rename(a) for a in term.args))
        return term

    renamed = []
    for path in paths:
        steps = tuple((rename(oid), rename(label))
                      for oid, label in path.steps)
        leaf = path.leaf
        if isinstance(leaf, Term):
            leaf = rename(leaf)
        renamed.append(Path(steps, leaf, path.source))
    return renamed


def _unrename(binding: Binding) -> Substitution:
    return Substitution({Variable(v.name.removesuffix(_APART)): t
                         for v, t in binding.items()})


def brute_mappings(view: Query, query: Query) -> set[Substitution]:
    """Every containment mapping from body(*view*) to body(*query*).

    Exhaustive: tries all ``len(target) ** len(source)`` assignments of
    source paths to target paths.  Returns substitutions over the
    original (unrenamed) view variables, directly comparable with
    ``{m.subst for m in find_mappings(view, query)}``.
    """
    source_paths = _rename_apart(flatten(view))
    target_paths = flatten(query)
    found: set[Substitution] = set()
    if not source_paths:
        return {Substitution()}
    for assignment in itertools.product(target_paths,
                                        repeat=len(source_paths)):
        binding: Binding | None = {}
        for source, target in zip(source_paths, assignment):
            binding = map_path(source, target, binding)
            if binding is None:
                break
        if binding is not None:
            found.add(_unrename(binding))
    return found


def brute_coverage(view: Query, query: Query,
                   subst: Substitution) -> frozenset[int]:
    """Target path indices some view path maps into under fixed *subst*."""
    fixed: Binding = {Variable(v.name + _APART): t for v, t in subst.items()}
    source_paths = _rename_apart(flatten(view))
    target_paths = flatten(query)
    covered: set[int] = set()
    for source in source_paths:
        for index, target in enumerate(target_paths):
            extended = map_path(source, target, dict(fixed))
            if extended is not None and extended == fixed:
                covered.add(index)
    return frozenset(covered)


def brute_query_maps_into(a: Query, b: Query) -> bool:
    """True when some containment mapping sends body(*a*) into body(*b*)."""
    return bool(brute_mappings(a, b))
