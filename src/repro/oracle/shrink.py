"""Greedy minimization of failing cases.

Given a case and a predicate ("this case still reproduces the failure"),
the shrinker repeatedly tries structure-removing reductions -- drop a
view, a body condition, a head child, a database root, a database edge --
keeping any reduction under which the predicate still holds, until a
fixpoint.  Counterexamples reported by the fuzzer are therefore close to
minimal: typically one view, one or two conditions, a handful of objects.

The predicate is the failure *reproducer*, usually "the same (oracle,
invariant) pair fails again" -- see :mod:`repro.oracle.runner`.
"""

from __future__ import annotations

import json
from dataclasses import replace
from typing import Callable, Iterator

from ..oem.model import OemDatabase
from ..oem.serialize import (database_from_json, database_to_json,
                             term_to_json)
from ..tsl.ast import ObjectPattern, Query, SetPattern
from ..tsl.validate import is_safe
from .gen import Case

Predicate = Callable[[Case], bool]


def _with_query(case: Case, query: Query) -> Case:
    return replace(case, query=query)


def _head_without_child(head: ObjectPattern,
                        index: int) -> ObjectPattern | None:
    if not isinstance(head.value, SetPattern):
        return None
    children = head.value.patterns
    if index >= len(children):
        return None
    kept = children[:index] + children[index + 1:]
    return ObjectPattern(head.oid, head.label, SetPattern(kept))


def _query_reductions(query: Query) -> Iterator[Query]:
    """Structurally smaller, still-safe variants of *query*."""
    if len(query.body) > 1:
        for index in range(len(query.body)):
            body = query.body[:index] + query.body[index + 1:]
            smaller = Query(query.head, body, name=query.name)
            if is_safe(smaller):
                yield smaller
    if isinstance(query.head.value, SetPattern):
        for index in range(len(query.head.value.patterns)):
            head = _head_without_child(query.head, index)
            if head is not None:
                smaller = Query(head, query.body, name=query.name)
                if is_safe(smaller):
                    yield smaller


def _case_reductions(case: Case) -> Iterator[Case]:
    # 1. Drop a view entirely.  Without the exposing view "V" the case no
    #    longer promises a rewriting, so completeness must not re-fire.
    for name in sorted(case.views):
        views = {n: v for n, v in case.views.items() if n != name}
        expect = case.expect_rewriting and "V" in views
        yield replace(case, views=views, expect_rewriting=expect)
    # 2. Shrink the query.
    for query in _query_reductions(case.query):
        yield _with_query(case, query)
    # 3. Shrink a view.
    for name in sorted(case.views):
        for view in _query_reductions(case.views[name]):
            views = dict(case.views)
            views[name] = view
            yield replace(case, views=views)
    # 4. Shrink the database.
    yield from _database_reductions(case)


def _database_reductions(case: Case) -> Iterator[Case]:
    data = database_to_json(case.db)
    roots = data.get("roots", [])
    if len(roots) > 1:
        for index in range(len(roots)):
            smaller = dict(data)
            smaller["roots"] = roots[:index] + roots[index + 1:]
            yield replace(case, db=_pruned(smaller))
    for index, obj in enumerate(data.get("objects", [])):
        children = obj.get("children")
        if not children:
            continue
        for child_index in range(len(children)):
            objects = [dict(o) for o in data["objects"]]
            objects[index]["children"] = (children[:child_index]
                                          + children[child_index + 1:])
            smaller = dict(data)
            smaller["objects"] = objects
            yield replace(case, db=_pruned(smaller))


def _canonical(term_json: object) -> str:
    return json.dumps(term_json, sort_keys=True)


def _pruned(data: dict) -> OemDatabase:
    """Rebuild a database from JSON, dropping unreachable objects."""
    db = database_from_json(data)
    reachable = {_canonical(term_to_json(oid))
                 for oid in db.reachable_oids()}
    pruned = {
        "name": data["name"],
        "roots": data["roots"],
        "objects": [obj for obj in data["objects"]
                    if _canonical(obj["oid"]) in reachable],
    }
    return database_from_json(pruned)


def shrink_case(case: Case, predicate: Predicate,
                max_attempts: int = 400) -> Case:
    """Smallest case (under greedy reduction) still satisfying *predicate*.

    Assumes ``predicate(case)`` is already True.  Each candidate
    reduction costs one predicate evaluation (one oracle run), bounded by
    *max_attempts* in total.
    """
    attempts = 0
    current = case
    improved = True
    while improved and attempts < max_attempts:
        improved = False
        for candidate in _case_reductions(current):
            attempts += 1
            if attempts > max_attempts:
                break
            try:
                if predicate(candidate):
                    current = candidate
                    improved = True
                    break
            except Exception:  # noqa: BLE001 -- a crashy reduction is not it
                continue
    return current
