"""Deterministic seeded generation of oracle test cases.

A :class:`Case` bundles everything one differential-testing iteration
needs: a random OEM database, a satisfiable query sampled from it, a set
of views (always including the *exposing view*, so an equivalent
rewriting exists by construction -- the completeness check relies on
this), and optional structural constraints.  Generation is a pure
function of ``(profile, seed)``, so every failure the fuzzer reports is
replayable from its seed alone.

The module also hosts the synthetic (non-database-sampled) generators
shared by the property-based tests: random Herbrand terms, random
substitutions, and random well-formed TSL queries that exercise the
printer/parser corners (quoted constants, ``{}`` leaves, label
variables) which database sampling never produces.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace

from ..logic.subst import Substitution
from ..logic.terms import Constant, FunctionTerm, Term, Variable
from ..oem.model import OemDatabase
from ..rewriting.constraints import PAPER_DTD, Dtd, parse_dtd
from ..tsl.ast import (Condition, ObjectPattern, PatternValue, Query,
                       SetPattern, query_size)
from ..workloads.people import generate_people
from ..workloads.random_oem import (RandomOemConfig, RandomQueryConfig,
                                    exposing_view, generate_random_database,
                                    sample_query)


@dataclass
class Case:
    """One replayable differential-testing input."""

    seed: int
    profile: str
    db: OemDatabase
    query: Query
    views: dict[str, Query]
    dtd_text: str | None = None
    #: True when ``views`` contains a view admitting an equivalent
    #: rewriting by construction (the exposing view).
    expect_rewriting: bool = False
    #: True when the query is conjunctive TSL (no copy semantics); the
    #: materialized-view soundness check only applies then.
    conjunctive: bool = True

    @property
    def constraints(self) -> Dtd | None:
        if self.dtd_text is None:
            return None
        return parse_dtd(self.dtd_text, source=self.db.name)

    def describe(self) -> str:
        stats = self.db.stats()
        return (f"seed={self.seed} profile={self.profile} "
                f"db={stats['objects']}obj/{stats['roots']}roots "
                f"query={len(self.query.body)}cond "
                f"views={sorted(self.views)}")


@dataclass(frozen=True)
class CaseConfig:
    """Knobs and size budgets for one generation profile."""

    profile: str = "conjunctive"
    oem: RandomOemConfig = RandomOemConfig(roots=2, max_depth=3,
                                           max_fanout=2)
    query: RandomQueryConfig = RandomQueryConfig(conditions=2, max_depth=3)
    conjunctive_only: bool = True
    dtd_constrained: bool = False
    people: int = 8            # database size for the dtd profile
    extra_views: int = 1       # sampled path views besides the exposing view
    max_query_size: int = 12   # budget: object patterns in head + body
    max_db_objects: int = 80   # budget: objects in the database


#: The fuzzer's generation profiles, rotated per iteration.
PROFILES: dict[str, CaseConfig] = {
    "conjunctive": CaseConfig(),
    "copy": CaseConfig(profile="copy", conjunctive_only=False),
    "dag": CaseConfig(profile="dag",
                      oem=RandomOemConfig(roots=2, max_depth=3, max_fanout=2,
                                          share_probability=0.3)),
    "dtd": CaseConfig(profile="dtd", dtd_constrained=True, extra_views=0),
}

DEFAULT_PROFILE_ROTATION: tuple[str, ...] = ("conjunctive", "copy", "dag",
                                             "dtd")


def _sub_seeds(profile: str, seed: int, count: int) -> list[int]:
    rng = random.Random(f"{profile}:{seed}")
    return [rng.randrange(2 ** 31) for _ in range(count)]


def _sample_within_budget(db: OemDatabase, config: CaseConfig,
                          seed: int) -> Query:
    """Sample a query, shedding conditions until the size budget holds."""
    query_config = config.query
    if config.conjunctive_only:
        query_config = replace(query_config, conjunctive=True)
    while True:
        query = sample_query(db, query_config, seed)
        if (query_size(query) <= config.max_query_size
                or query_config.conditions <= 1):
            return query
        query_config = replace(query_config,
                               conditions=query_config.conditions - 1)


def _shrink_oem_config(oem: RandomOemConfig) -> RandomOemConfig:
    if oem.max_fanout > 1:
        return replace(oem, max_fanout=oem.max_fanout - 1)
    if oem.max_depth > 1:
        return replace(oem, max_depth=oem.max_depth - 1)
    return replace(oem, roots=max(1, oem.roots - 1))


def generate_case(seed: int, config: CaseConfig | None = None) -> Case:
    """Generate the case determined by ``(config.profile, seed)``."""
    config = config or PROFILES["conjunctive"]
    db_seed, q_seed, v_seed = _sub_seeds(config.profile, seed, 3)
    dtd_text = None
    if config.dtd_constrained:
        db = generate_people(config.people, seed=db_seed)
        dtd_text = PAPER_DTD
    else:
        oem = config.oem
        db = generate_random_database(oem, seed=db_seed)
        while db.stats()["objects"] > config.max_db_objects:
            oem = _shrink_oem_config(oem)
            db = generate_random_database(oem, seed=db_seed)
    query = _sample_within_budget(db, config, q_seed)
    views = {"V": exposing_view(query, name="V")}
    for index in range(config.extra_views):
        name = f"W{index + 1}"
        view = sample_view(db, seed=v_seed + index, name=name)
        if view is not None:
            views[name] = view
    return Case(seed=seed, profile=config.profile, db=db, query=query,
                views=views, dtd_text=dtd_text, expect_rewriting=True,
                conjunctive=config.conjunctive_only)


def sample_view(db: OemDatabase, seed: int, name: str = "W",
                max_depth: int = 6) -> Query | None:
    """A single-path view sampled from *db*, ending at an atomic leaf.

    The body walks one observed root-to-atom chain and pins the leaf to
    the observed *constant*: a leaf variable would also match set objects
    elsewhere in the database (TSL cannot assert atomicity), dragging
    copy semantics into the materialized view, whose ground set values no
    composition can reconstruct.  The head ``<v_<name>(O1..On) row c>``
    carries every body variable in its oid, so one assignment determines
    one head object (no accidental fusion conflicts).  Returns None when
    the sampled chain never reaches an atomic object.
    """
    rng = random.Random(f"view:{seed}")
    if not db.roots:
        return None
    node = rng.choice(db.roots)
    chain = [node]
    while len(chain) < max_depth and not db.is_atomic(node):
        children = db.children(node)
        if not children:
            break
        node = rng.choice(children)
        chain.append(node)
    if not db.is_atomic(chain[-1]):
        return None
    leaf = Constant(db.atomic_value(chain[-1]))
    oid_vars = [Variable(f"O{depth}") for depth in range(1, len(chain) + 1)]
    pattern: ObjectPattern | None = None
    for position, step in enumerate(reversed(chain)):
        oid_var = oid_vars[len(chain) - position - 1]
        label = Constant(db.label(step))
        value: PatternValue = (leaf if position == 0
                               else SetPattern((pattern,)))
        pattern = ObjectPattern(oid_var, label, value)
    assert pattern is not None
    head = ObjectPattern(
        FunctionTerm(f"v_{name.lower()}", tuple(oid_vars)),
        Constant("row"), leaf)
    return Query(head, (Condition(pattern, db.name),), name=name)


# --------------------------------------------------------------------------
# Shared database+query sampling (fixture dedup for tests and benchmarks)
# --------------------------------------------------------------------------

def sample_db_and_query(seed: int,
                        oem: RandomOemConfig | None = None,
                        query: RandomQueryConfig | None = None
                        ) -> tuple[OemDatabase, Query]:
    """The canonical random (database, satisfiable query) pair.

    One shared entry point for every property-based test and benchmark
    that needs "a random database and a query with non-trivial answers";
    previously each test module carried its own copy of this setup.
    """
    oem = oem or RandomOemConfig(roots=3, max_depth=4, max_fanout=3)
    query = query or RandomQueryConfig(conditions=2, max_depth=3)
    db = generate_random_database(oem, seed=seed)
    return db, sample_query(db, query, seed=seed + 1)


# --------------------------------------------------------------------------
# Synthetic generators for the property-based tests
# --------------------------------------------------------------------------

#: Constant pools deliberately include values that must be quoted by the
#: printer (spaces, uppercase initials, leading digits) and values that
#: stay bare (apostrophes, hyphens), so round-trip tests cover both.
LABEL_POOL: tuple[str, ...] = ("a", "b", "name", "addr", "palo alto",
                               "x-y", "Ab")
VALUE_POOL: tuple[object, ...] = ("u", "stanford", "palo alto", "o'hara",
                                  "650-1111", "Ab", 7, 42)

_FUNCTORS = ("f", "g", "h")


def random_term(rng: random.Random, depth: int = 2,
                variables: tuple[str, ...] = ("X", "Y", "Z", "W")) -> Term:
    """A random term: constants, variables, and function terms."""
    roll = rng.random()
    if depth <= 0 or roll < 0.35:
        return Constant(rng.choice(VALUE_POOL))
    if roll < 0.7:
        return Variable(rng.choice(variables))
    return FunctionTerm(rng.choice(_FUNCTORS),
                        tuple(random_term(rng, depth - 1, variables)
                              for _ in range(rng.randint(1, 3))))


def random_ground_term(rng: random.Random, depth: int = 2) -> Term:
    """A random variable-free term."""
    if depth <= 0 or rng.random() < 0.5:
        return Constant(rng.choice(VALUE_POOL))
    return FunctionTerm(rng.choice(_FUNCTORS),
                        tuple(random_ground_term(rng, depth - 1)
                              for _ in range(rng.randint(1, 2))))


def random_substitution(rng: random.Random,
                        variables: tuple[str, ...] = ("X", "Y", "Z", "W"),
                        range_variables: tuple[str, ...] = ("A", "B", "C")
                        ) -> Substitution:
    """A random substitution whose range avoids its own domain.

    Right-hand sides draw from a disjoint variable pool, so the result is
    normalized (application is idempotent) -- the form every engine
    component produces and consumes.
    """
    mapping = {}
    for name in variables:
        roll = rng.random()
        if roll < 0.4:
            continue
        if roll < 0.7:
            mapping[Variable(name)] = random_ground_term(rng)
        else:
            mapping[Variable(name)] = Variable(rng.choice(range_variables))
    return Substitution(mapping)


def _random_label(rng: random.Random, condition: int, level: int) -> Term:
    if rng.random() < 0.2:
        return Variable(f"L{condition}_{level}")
    return Constant(rng.choice(LABEL_POOL))


def random_query(seed: int, max_conditions: int = 3,
                 max_depth: int = 3) -> Query:
    """A random well-formed TSL query (not sampled from any database).

    Satisfiability is NOT guaranteed -- these queries feed the
    printer/parser and logic property tests, which never evaluate them.
    They do exercise shapes database sampling cannot produce: constant
    leaves that need quoting, ``{}`` leaves, label variables, and shared
    root variables across conditions.
    """
    rng = random.Random(f"rq:{seed}")
    shared_root = Variable("R") if rng.random() < 0.4 else None
    conditions: list[Condition] = []
    head_children: list[ObjectPattern] = []
    value_vars: list[Variable] = []
    for index in range(1, rng.randint(1, max_conditions) + 1):
        depth = rng.randint(1, max_depth)
        roll = rng.random()
        leaf: PatternValue
        if roll < 0.25:
            leaf = Constant(rng.choice(VALUE_POOL))
        elif roll < 0.35:
            leaf = SetPattern(())
        else:
            leaf_var = Variable(f"V{index}")
            leaf = leaf_var
            value_vars.append(leaf_var)
            head_children.append(ObjectPattern(
                FunctionTerm(f"h{index}", (Variable(f"O{index}_1"),)),
                Constant("item"), leaf_var))
        pattern = ObjectPattern(Variable(f"O{index}_{depth}"),
                                _random_label(rng, index, depth), leaf)
        for level in range(depth - 1, 0, -1):
            pattern = ObjectPattern(Variable(f"O{index}_{level}"),
                                    _random_label(rng, index, level),
                                    SetPattern((pattern,)))
        if shared_root is not None:
            pattern = ObjectPattern(shared_root,
                                    Constant(rng.choice(LABEL_POOL)),
                                    SetPattern((pattern,)))
        conditions.append(Condition(pattern, "db"))
    top = shared_root if shared_root is not None else Variable("O1_1")
    roll = rng.random()
    head_value: PatternValue
    if head_children and roll < 0.4:
        head_value = SetPattern(tuple(head_children))
    elif value_vars and roll < 0.7:
        head_value = value_vars[0]
    else:
        head_value = Constant("yes")
    head = ObjectPattern(FunctionTerm("ans", (top,)),
                         Constant(rng.choice(LABEL_POOL)), head_value)
    return Query(head, tuple(conditions))
