"""Corpus persistence: failing cases as replayable JSON files.

Every shrunk counterexample the fuzzer finds is written here so it can
be (a) replayed exactly with ``python -m repro fuzz --replay FILE`` and
(b) checked into ``tests/corpus/`` as a permanent regression test.
Queries and views are stored as TSL *text* (human-readable, and a free
extra workout for the printer/parser); databases use the JSON codec of
:mod:`repro.oem.serialize`.
"""

from __future__ import annotations

import json
import os
import re
from typing import Any

from ..oem.serialize import database_from_json, database_to_json
from ..tsl.ast import Query
from ..tsl.parser import parse_query
from ..tsl.printer import print_query
from .gen import Case

FORMAT_VERSION = 1


def case_to_json(case: Case) -> dict[str, Any]:
    """Encode a case as JSON-compatible data."""
    return {
        "version": FORMAT_VERSION,
        "seed": case.seed,
        "profile": case.profile,
        "expect_rewriting": case.expect_rewriting,
        "conjunctive": case.conjunctive,
        "query": print_query(case.query),
        "views": {name: print_query(view)
                  for name, view in sorted(case.views.items())},
        "database": database_to_json(case.db),
        "dtd": case.dtd_text,
    }


def case_from_json(data: dict[str, Any]) -> Case:
    """Decode a case from :func:`case_to_json` output."""
    version = data.get("version")
    if version != FORMAT_VERSION:
        raise ValueError(f"unsupported corpus format version {version!r}")
    views = {name: _named(parse_query(text), name)
             for name, text in data.get("views", {}).items()}
    return Case(
        seed=data.get("seed", 0),
        profile=data.get("profile", "corpus"),
        db=database_from_json(data["database"]),
        query=parse_query(data["query"]),
        views=views,
        dtd_text=data.get("dtd"),
        expect_rewriting=bool(data.get("expect_rewriting", False)),
        conjunctive=bool(data.get("conjunctive", True)),
    )


def _named(query: Query, name: str) -> Query:
    return Query(query.head, query.body, name=name)


def save_case(case: Case, directory: str, stem: str) -> str:
    """Write *case* under *directory* as ``<stem>.json`` (deduplicated).

    Appends ``-2``, ``-3``, ... when the stem is taken by a *different*
    case; returns the path written (or the existing identical file).
    """
    os.makedirs(directory, exist_ok=True)
    payload = json.dumps(case_to_json(case), indent=2, sort_keys=True)
    stem = re.sub(r"[^A-Za-z0-9_.-]", "-", stem) or "case"
    suffix = 0
    while True:
        suffix += 1
        filename = f"{stem}.json" if suffix == 1 else f"{stem}-{suffix}.json"
        path = os.path.join(directory, filename)
        if not os.path.exists(path):
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(payload + "\n")
            return path
        with open(path, encoding="utf-8") as handle:
            if handle.read().rstrip("\n") == payload:
                return path


def load_case(path: str) -> Case:
    """Load one corpus file."""
    with open(path, encoding="utf-8") as handle:
        return case_from_json(json.load(handle))


def load_corpus(directory: str) -> list[tuple[str, Case]]:
    """Load every ``*.json`` case under *directory*, sorted by filename."""
    if not os.path.isdir(directory):
        return []
    out: list[tuple[str, Case]] = []
    for filename in sorted(os.listdir(directory)):
        if filename.endswith(".json"):
            path = os.path.join(directory, filename)
            out.append((path, load_case(path)))
    return out
