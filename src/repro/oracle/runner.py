"""The fuzzing loop: generate, check, shrink, record, report.

One iteration = one generated case run through the selected oracles.
Profiles rotate per iteration so every batch mixes tree/DAG/DTD shapes
and conjunctive/copy queries.  On failure the case is re-minimized by
:mod:`repro.oracle.shrink` under a "same (oracle, invariant) fails"
predicate, optionally saved to a corpus directory, and reported with the
seed needed to regenerate the original.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any

from ..obs import NULL_TRACER
from .corpus import case_to_json, load_case, save_case
from .gen import DEFAULT_PROFILE_ROTATION, PROFILES, Case, generate_case
from .oracles import ORACLES, Failure, Oracle, run_oracle
from .shrink import shrink_case

DEFAULT_ORACLES = tuple(sorted(ORACLES))


@dataclass(frozen=True)
class FuzzConfig:
    """One fuzzing campaign."""

    seed: int = 0
    iterations: int = 100
    budget_seconds: float | None = None
    oracles: tuple[str, ...] = DEFAULT_ORACLES
    profiles: tuple[str, ...] = DEFAULT_PROFILE_ROTATION
    shrink: bool = True
    corpus_dir: str | None = None
    max_shrink_attempts: int = 400


@dataclass
class FailureRecord:
    """One minimized counterexample."""

    oracle: str
    invariant: str
    message: str
    seed: int
    profile: str
    conditions: int
    case_json: dict[str, Any]
    corpus_path: str | None = None

    def to_json(self) -> dict[str, Any]:
        return {
            "oracle": self.oracle,
            "invariant": self.invariant,
            "message": self.message,
            "seed": self.seed,
            "profile": self.profile,
            "conditions": self.conditions,
            "corpus_path": self.corpus_path,
            "case": self.case_json,
        }


@dataclass
class FuzzReport:
    """Campaign outcome."""

    iterations_run: int = 0
    elapsed_seconds: float = 0.0
    checks: dict[str, int] = field(default_factory=dict)
    failures: list[FailureRecord] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def to_json(self) -> dict[str, Any]:
        return {
            "ok": self.ok,
            "iterations": self.iterations_run,
            "elapsed_seconds": round(self.elapsed_seconds, 3),
            "checks": dict(sorted(self.checks.items())),
            "failures": [f.to_json() for f in self.failures],
        }

    def summary(self) -> str:
        checks = ", ".join(f"{name}={count}"
                           for name, count in sorted(self.checks.items()))
        status = "OK" if self.ok else f"{len(self.failures)} FAILURE(S)"
        return (f"{status}: {self.iterations_run} iterations in "
                f"{self.elapsed_seconds:.1f}s ({checks})")


def _make_oracles(names: tuple[str, ...]) -> list[Oracle]:
    unknown = set(names) - set(ORACLES)
    if unknown:
        raise ValueError(f"unknown oracle(s): {sorted(unknown)}; "
                         f"available: {sorted(ORACLES)}")
    return [ORACLES[name]() for name in names]


def _reproduces(oracle: Oracle, failure: Failure):
    """Predicate: the same (oracle, invariant) still fails on a case."""

    def predicate(case: Case) -> bool:
        result = run_oracle(oracle, case)
        return any(f.invariant == failure.invariant
                   for f in result.failures)

    return predicate


def _record_failures(case: Case, oracle: Oracle, failures: list[Failure],
                     config: FuzzConfig, report: FuzzReport) -> None:
    for failure in failures:
        shrunk = case
        if config.shrink:
            shrunk = shrink_case(case, _reproduces(oracle, failure),
                                 max_attempts=config.max_shrink_attempts)
            # Re-run on the shrunk case for the minimized message.
            for fresh in run_oracle(oracle, shrunk).failures:
                if fresh.invariant == failure.invariant:
                    failure = fresh
                    break
        record = FailureRecord(
            oracle=failure.oracle,
            invariant=failure.invariant,
            message=failure.message,
            seed=case.seed,
            profile=case.profile,
            conditions=len(shrunk.query.body),
            case_json=case_to_json(shrunk),
        )
        if config.corpus_dir is not None:
            stem = f"{failure.oracle}-{failure.invariant}-{case.profile}" \
                   f"-{case.seed}"
            record.corpus_path = save_case(shrunk, config.corpus_dir, stem)
        report.failures.append(record)


def run_fuzz(config: FuzzConfig = FuzzConfig(), *,
             tracer=None, metrics=None) -> FuzzReport:
    """Run one fuzzing campaign and return the report.

    *tracer* records one ``fuzz.iteration`` span per generated case with
    a nested ``oracle.<name>`` span per oracle; *metrics* (a
    :class:`repro.obs.MetricsRegistry`) accumulates per-oracle check
    counters and an iteration-duration histogram under ``fuzz.*`` --
    the same instruments the benchmarks use, so numbers line up.
    """
    tracer = tracer or NULL_TRACER
    oracles = _make_oracles(config.oracles)
    report = FuzzReport(checks={o.name: 0 for o in oracles})
    started = time.monotonic()
    for iteration in range(config.iterations):
        if (config.budget_seconds is not None
                and time.monotonic() - started >= config.budget_seconds):
            break
        profile = config.profiles[iteration % len(config.profiles)]
        iteration_started = time.monotonic()
        with tracer.span("fuzz.iteration", seed=config.seed + iteration,
                         profile=profile) as span:
            case = generate_case(config.seed + iteration, PROFILES[profile])
            for oracle in oracles:
                with tracer.span(f"oracle.{oracle.name}") as oracle_span:
                    result = run_oracle(oracle, case)
                    oracle_span.add("checks", result.checks)
                report.checks[oracle.name] += result.checks
                if metrics is not None:
                    metrics.increment(f"fuzz.checks.{oracle.name}",
                                      result.checks)
                if result.failures:
                    span.set("failed", True)
                    if metrics is not None:
                        metrics.increment(
                            f"fuzz.failures.{oracle.name}",
                            len(result.failures))
                    _record_failures(case, oracle, result.failures,
                                     config, report)
        if metrics is not None:
            metrics.observe("fuzz.iteration_seconds",
                            time.monotonic() - iteration_started)
        report.iterations_run = iteration + 1
    report.elapsed_seconds = time.monotonic() - started
    return report


def replay(path: str,
           oracle_names: tuple[str, ...] = DEFAULT_ORACLES) -> FuzzReport:
    """Re-run the oracles on one saved corpus case."""
    case = load_case(path)
    oracles = _make_oracles(oracle_names)
    report = FuzzReport(checks={o.name: 0 for o in oracles})
    started = time.monotonic()
    for oracle in oracles:
        result = run_oracle(oracle, case)
        report.checks[oracle.name] += result.checks
        for failure in result.failures:
            report.failures.append(FailureRecord(
                oracle=failure.oracle,
                invariant=failure.invariant,
                message=failure.message,
                seed=case.seed,
                profile=case.profile,
                conditions=len(case.query.body),
                case_json=case_to_json(case),
                corpus_path=path,
            ))
    report.iterations_run = 1
    report.elapsed_seconds = time.monotonic() - started
    return report
