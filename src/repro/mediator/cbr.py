"""The Capability-Based Rewriter (Figure 2; Section 1; [25]).

Given a mediator query over source data, the CBR decides "how to extract
the necessary information from the sources" using only their declared
capabilities: it instantiates each parameterized capability via the
containment mappings into the query (binding every parameter to a
constant), then runs the paper's rewriting algorithm with the instantiated
capabilities as the views, requiring *total* rewritings -- source data is
only reachable through capabilities.

The running example of the paper works exactly this way: for a "SIGMOD
1997" query against a source that only supports selections on ``year``,
the mapping binds ``$YEAR = 1997``, the total rewriting fetches the 1997
publications through that capability, and the SIGMOD filter lands in the
rewriting's conditions *over the view* -- i.e., it "will be done at the
mediator".
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import CapabilityError
from ..logic.terms import Constant
from ..rewriting.chase import StructuralConstraints, chase
from ..rewriting.mappings import find_mappings
from ..rewriting.rewriter import Rewriting, rewrite
from ..tsl.ast import Query
from ..tsl.normalize import normalize
from .capabilities import PlainCapability
from .cost import CostModel
from .source import Source
from .wrapper import NativeQuery, translate_to_native


@dataclass
class Plan:
    """One executable plan: a total rewriting over capability instances."""

    rewriting: Rewriting
    capabilities: dict[str, PlainCapability]
    estimated_cost: float
    native_queries: list[NativeQuery] = field(default_factory=list)

    @property
    def query(self) -> Query:
        return self.rewriting.query

    def describe(self) -> str:
        lines = [f"plan (estimated cost {self.estimated_cost:.1f}):"]
        for native in self.native_queries:
            lines.append(f"  ship {native}")
        lines.append(f"  mediator: {self.query}")
        return "\n".join(lines)


def instantiate_capabilities(query: Query, sources: dict[str, Source],
                             constraints: StructuralConstraints | None = None
                             ) -> dict[str, PlainCapability]:
    """Step 1 of the CBR: bind capability parameters via mappings.

    For each capability of each source, every containment mapping from the
    capability body into the query proposes parameter bindings; mappings
    that bind every parameter to a constant yield a plain capability
    instance.  Parameterless capabilities are always available.
    """
    target = chase(normalize(query), constraints)
    instances: dict[str, PlainCapability] = {}
    for source in sources.values():
        for capability in source.capabilities:
            if not capability.parameters:
                plain = PlainCapability(capability.name, capability,
                                        capability.query)
                instances.setdefault(plain.name, plain)
                continue
            for mapping in find_mappings(chase(capability.query,
                                                constraints), target):
                bound = {p: mapping.subst.get(p)
                         for p in capability.parameters}
                if all(isinstance(t, Constant) for t in bound.values()):
                    plain = capability.instantiate(mapping.subst)
                    instances.setdefault(plain.name, plain)
    return instances


def plan_query(query: Query, sources: dict[str, Source],
               constraints: StructuralConstraints | None = None,
               cost_model: CostModel | None = None,
               max_plans: int | None = None) -> list[Plan]:
    """Produce executable plans, cheapest first.

    Raises :class:`CapabilityError` when no capability-respecting plan
    exists (the query is unanswerable through the sources' interfaces).
    """
    cost_model = cost_model or CostModel()
    instances = instantiate_capabilities(query, sources, constraints)
    if not instances:
        raise CapabilityError(
            "no source capability is relevant to the query "
            "(no containment mapping binds the required parameters)")
    views = {name: plain.query for name, plain in instances.items()}
    outcome = rewrite(query, views, constraints, total_only=True)
    plans: list[Plan] = []
    for rewriting in outcome.rewritings:
        used = {name: instances[name] for name in rewriting.views_used}
        cost = cost_model.estimate_plan(used, sources)
        natives = [translate_to_native(plain)
                   for _, plain in sorted(used.items())]
        plans.append(Plan(rewriting, used, cost, natives))
    if not plans:
        raise CapabilityError(
            "no total rewriting over the source capabilities exists; "
            "the query exceeds the sources' interfaces")
    plans.sort(key=lambda p: (p.estimated_cost, str(p.query)))
    if max_plans is not None:
        plans = plans[:max_plans]
    return plans
