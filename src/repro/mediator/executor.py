"""Plan execution: ship, collect, consolidate (Figure 2's lower half).

"Then the individual query results ... are collected, the information
about each of them is appropriately consolidated into one entity by the
mediator and the combined result is presented to the user."  Shipping is
a wrapper execution per capability instance; consolidation is TSL's
fusion semantics, which :func:`repro.tsl.evaluator.evaluate_program`
already implements.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..oem.model import OemDatabase
from ..tsl.evaluator import evaluate_program
from .cbr import Plan
from .wrapper import Wrapper


@dataclass
class ExecutionReport:
    """What one (multi-rule) execution did."""

    answer: OemDatabase
    source_queries: int = 0
    objects_transferred: int = 0
    plans: list[Plan] = field(default_factory=list)


def execute_plans(plans: list[Plan], wrappers: dict[str, Wrapper],
                  answer_name: str = "answer") -> ExecutionReport:
    """Execute one plan per rule and fuse the results.

    A user query over an integrated view expands (by composition) into a
    union of rules, each planned separately; their results fuse into a
    single answer, exactly as Section 2's semantics prescribe.
    """
    materialized: dict[str, OemDatabase] = {}
    source_queries = 0
    objects = 0
    for plan in plans:
        for name, capability in sorted(plan.capabilities.items()):
            if name in materialized:
                continue  # shared capability instance: fetch once
            source_name = next(iter(capability.query.sources()))
            result = wrappers[source_name].execute(capability)
            materialized[name] = result
            source_queries += 1
            objects += result.stats()["objects"]
    answer = evaluate_program([plan.query for plan in plans], materialized,
                              answer_name=answer_name)
    return ExecutionReport(answer=answer, source_queries=source_queries,
                           objects_transferred=objects, plans=list(plans))


def execute_plan(plan: Plan, wrappers: dict[str, Wrapper],
                 answer_name: str = "answer") -> ExecutionReport:
    """Execute a single plan."""
    return execute_plans([plan], wrappers, answer_name)
