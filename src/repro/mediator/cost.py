"""A simple plan cost model (the "Cost estimator" box of Figure 2).

Plans are ranked before execution, so costs are estimates: each source
query pays a fixed round-trip overhead plus a transfer charge proportional
to the estimated result size.  Result sizes are estimated from the source
size and a selectivity guess based on how many constant selections the
shipped capability applies -- crude, but it orders plans the way the
TSIMMIS cost estimator's much richer statistics would (fewer round trips
and more selective pushdown win).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..logic.terms import Constant
from ..tsl.ast import Query
from ..tsl.normalize import query_paths
from .capabilities import PlainCapability
from .source import Source


@dataclass(frozen=True)
class CostModel:
    """Tunable cost coefficients."""

    per_query_cost: float = 10.0
    per_object_cost: float = 0.1
    constant_selectivity: float = 0.1

    def selectivity(self, query: Query) -> float:
        """Estimated fraction of source objects a capability returns."""
        constants = 0
        for path in query_paths(query):
            if isinstance(path.leaf, Constant):
                constants += 1
            constants += sum(
                1 for _, label in path.steps[1:]
                if isinstance(label, Constant))
        # Each constant *selection* (leaf constant) narrows the result;
        # constant labels mostly describe structure, so weigh leaves only.
        leaf_constants = sum(
            1 for path in query_paths(query)
            if isinstance(path.leaf, Constant))
        return self.constant_selectivity ** leaf_constants

    def estimate_access(self, capability: PlainCapability,
                        source: Source) -> float:
        objects = len(source.db) * self.selectivity(capability.query)
        return self.per_query_cost + self.per_object_cost * objects

    def estimate_plan(self, capabilities: dict[str, PlainCapability],
                      sources: dict[str, Source]) -> float:
        total = 0.0
        for capability in capabilities.values():
            source_name = next(iter(capability.query.sources()))
            total += self.estimate_access(capability, sources[source_name])
        return total
