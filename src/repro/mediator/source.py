"""Information sources, as the mediator sees them (Figure 1).

A :class:`Source` bundles the source's OEM data with the capability views
its interface supports.  In the real TSIMMIS system the data lives behind
an autonomous interface; here it is in-process, which exercises the
identical rewriting code path -- the rewriter "only needs the query and
the view statements, it does not need to examine the source data".
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import MediatorError
from ..oem.model import OemDatabase
from .capabilities import CapabilityView


@dataclass
class Source:
    """A named source: its data and its declared query capabilities."""

    name: str
    db: OemDatabase
    capabilities: list[CapabilityView] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.db.name != self.name:
            raise MediatorError(
                f"source {self.name!r} wraps a database named "
                f"{self.db.name!r}; names must agree so TSL conditions "
                "resolve")
        for capability in self.capabilities:
            foreign = capability.sources() - {self.name}
            if foreign:
                raise MediatorError(
                    f"capability {capability.name} of source {self.name} "
                    f"references other sources: {sorted(foreign)}")

    @classmethod
    def from_store(cls, store,
                   capabilities: list[CapabilityView] | None = None
                   ) -> "Source":
        """Expose a repository store (possibly a
        :class:`~repro.storage.durable.DurableStore`) as a mediator
        source -- the Figure 1 deployment where one of the autonomous
        sources is the site's own persistent repository.  The source
        reads the store's live database; updates through the store are
        visible to subsequent mediator evaluations.
        """
        return cls(store.db.name, store.db,
                   capabilities if capabilities is not None else [])

    def add_capability(self, capability: CapabilityView) -> None:
        foreign = capability.sources() - {self.name}
        if foreign:
            raise MediatorError(
                f"capability {capability.name} references other sources: "
                f"{sorted(foreign)}")
        self.capabilities.append(capability)

    def capability_named(self, name: str) -> CapabilityView:
        for capability in self.capabilities:
            if capability.name == name:
                return capability
        raise MediatorError(
            f"source {self.name} has no capability {name!r}")
