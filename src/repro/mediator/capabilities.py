"""Capability descriptions of information sources (Section 1).

"The different and limited query capabilities of the sources are often
described by views where the constants are parameterized.  For example,
the parameterized view ``SELECT * FROM R WHERE R.A=$X`` ... declares that
S can answer queries that pick all attributes of R and have R.A bound to a
constant."

A :class:`CapabilityView` is a TSL view over one source whose
``$``-prefixed variables are *parameters*: any query shipped to the source
must instantiate every parameter with a constant.  The paper defers the
parameterized machinery to [25, 37] and notes parameters "do not seriously
affect the complexity"; accordingly, the CBR handles them by instantiating
each capability into a plain view per parameter binding discovered by the
mapping step.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import CapabilityError
from ..logic.subst import Substitution
from ..logic.terms import Constant, Variable
from ..tsl.ast import Query
from ..tsl.parser import parse_query
from ..tsl.printer import print_query


def parameters_of(query: Query) -> frozenset[Variable]:
    """The ``$``-prefixed variables of a capability view."""
    return frozenset(v for v in query.all_variables()
                     if v.name.startswith("$"))


def bindable_parameters(query: Query) -> frozenset[Variable]:
    """The parameters a CBR execution order can actually bind.

    The mapping step discovers parameter values from *data* positions:
    a parameter occurring as a body label or atomic value can be matched
    against a constant of the query (or of an earlier view's output) and
    fed to :meth:`CapabilityView.instantiate`.  A parameter that occurs
    only in object-id fields -- or not in the body at all -- never meets
    a constant, so the capability can never be instantiated (see lint
    TSL405 in :mod:`repro.analysis.viewset`).
    """
    from ..tsl.normalize import query_paths

    bindable: set[Variable] = set()
    for path in query_paths(query):
        for _oid, label in path.steps:
            if isinstance(label, Variable) and label.name.startswith("$"):
                bindable.add(label)
        if isinstance(path.leaf, Variable) and path.leaf.name.startswith("$"):
            bindable.add(path.leaf)
    return frozenset(bindable)


@dataclass(frozen=True)
class CapabilityView:
    """One supported query template of a source."""

    name: str
    query: Query
    parameters: frozenset[Variable] = field(default=frozenset())

    @staticmethod
    def from_text(name: str, text: str) -> "CapabilityView":
        query = parse_query(text, name=name)
        return CapabilityView(name, query, parameters_of(query))

    def instantiate(self, bindings: Substitution) -> "PlainCapability":
        """Bind every parameter to a constant, yielding a plain view."""
        missing = [p for p in self.parameters
                   if not isinstance(bindings.get(p), Constant)]
        if missing:
            names = ", ".join(sorted(v.name for v in missing))
            raise CapabilityError(
                f"capability {self.name}: parameters not bound to "
                f"constants: {names}")
        narrowed = Substitution(
            {p: bindings[p] for p in self.parameters})
        values = tuple(sorted(
            (p.name, str(bindings[p])) for p in self.parameters))
        suffix = "".join(f"[{n}={v}]" for n, v in values)
        plain = self.query.substitute(narrowed)
        instance_name = f"{self.name}{suffix}"
        return PlainCapability(instance_name, self,
                               Query(plain.head, plain.body,
                                     name=instance_name))

    def sources(self) -> set[str]:
        return self.query.sources()

    def __str__(self) -> str:
        params = " ".join(sorted(v.name for v in self.parameters))
        header = f"capability {self.name}"
        if params:
            header += f" ({params})"
        return f"{header}: {print_query(self.query)}"


@dataclass(frozen=True)
class PlainCapability:
    """A capability with all parameters bound: an executable plain view."""

    name: str
    template: CapabilityView
    query: Query

    def __str__(self) -> str:
        return f"{self.name}: {print_query(self.query)}"
