"""Wrappers: the source-facing edge of the mediator (Figure 2).

"Each query is sent to a wrapper, where it is translated into the native
query language of the corresponding source."  The wrapper here translates
an instantiated capability into a simulated native form (a readable
filter-program string), executes it against the source's OEM data, and
keeps the transfer statistics the cost model and the benchmarks consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..logic.terms import Constant
from ..oem.model import OemDatabase
from ..tsl.ast import Query, SetPattern
from ..tsl.evaluator import evaluate
from ..tsl.normalize import query_paths
from .capabilities import PlainCapability
from .source import Source


@dataclass(frozen=True)
class NativeQuery:
    """The simulated native form of a shipped query."""

    source: str
    program: str

    def __str__(self) -> str:
        return f"[{self.source}] {self.program}"


@dataclass
class WrapperStats:
    """Per-wrapper transfer accounting."""

    queries_sent: int = 0
    objects_returned: int = 0
    atoms_scanned: int = 0


def translate_to_native(capability: PlainCapability) -> NativeQuery:
    """Render an instantiated capability as a native filter program.

    Purely cosmetic (the execution path evaluates TSL directly), but it
    makes plans explainable the way Figure 2's wrapper boxes are.
    """
    selections = []
    for path in query_paths(capability.query):
        labels = ".".join(str(label) for _, label in path.steps)
        if isinstance(path.leaf, SetPattern):
            selections.append(f"EXISTS {labels}")
        elif isinstance(path.leaf, Constant):
            selections.append(f"{labels} = {path.leaf.value!r}")
        else:
            selections.append(f"FETCH {labels}")
    source = next(iter(capability.query.sources()))
    return NativeQuery(source, " AND ".join(selections))


@dataclass
class Wrapper:
    """Executes instantiated capabilities against one source."""

    source: Source
    stats: WrapperStats = field(default_factory=WrapperStats)

    def execute(self, capability: PlainCapability) -> OemDatabase:
        """Run the capability's view over the source, as the source would."""
        self.stats.queries_sent += 1
        result = evaluate(capability.query, self.source.db,
                          answer_name=capability.name)
        report = result.stats()
        self.stats.objects_returned += report["objects"]
        self.stats.atoms_scanned += len(self.source.db)
        return result

    def reset_stats(self) -> None:
        self.stats = WrapperStats()
