"""The mediator facade (Figures 1 and 2).

A :class:`Mediator` integrates semistructured data from multiple sources
into virtual *integrated views*.  A user query addressed to an integrated
view is first expanded by composing it with the view definition (the same
composition machinery as the rewriting algorithm's Step 2A); each
resulting source-level rule is then handed to the Capability-Based
Rewriter, the cheapest plan per rule is executed through the wrappers,
and the collected results are fused into the answer.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import CapabilityError, MediatorError
from ..obs import NULL_TRACER, Tracer
from ..oem.model import OemDatabase
from ..rewriting.canon import canonicalize
from ..rewriting.chase import StructuralConstraints
from ..rewriting.composition import compose
from ..rewriting.session import DEFAULT_MEMO_SIZE, MemoTable
from ..tsl.ast import Query
from ..tsl.parser import parse_query
from .cbr import Plan, plan_query
from .cost import CostModel
from .executor import ExecutionReport, execute_plans
from .source import Source
from .wrapper import Wrapper


@dataclass
class Mediator:
    """Integrates sources behind capability interfaces (Figure 1)."""

    sources: dict[str, Source] = field(default_factory=dict)
    integrated_views: dict[str, Query] = field(default_factory=dict)
    constraints: StructuralConstraints | None = None
    cost_model: CostModel = field(default_factory=CostModel)
    tracer: Tracer | None = None
    memoize: bool = True
    memo_size: int = DEFAULT_MEMO_SIZE
    metrics: object | None = None
    wrappers: dict[str, Wrapper] = field(init=False, default_factory=dict)
    _expansions: MemoTable = field(init=False, repr=False)

    def __post_init__(self) -> None:
        for name, source in self.sources.items():
            if name != source.name:
                raise MediatorError(
                    f"source registered as {name!r} is named "
                    f"{source.name!r}")
            self.wrappers[name] = Wrapper(source)
        self._expansions = MemoTable("mediator.expand", self.memo_size,
                                     self.metrics)

    # -- registration --------------------------------------------------------

    def add_source(self, source: Source) -> None:
        if source.name in self.sources:
            raise MediatorError(f"duplicate source {source.name!r}")
        self.sources[source.name] = source
        self.wrappers[source.name] = Wrapper(source)
        self._expansions.clear()

    def define_view(self, name: str, definition: Query | str) -> None:
        """Register an integrated view over the sources."""
        if isinstance(definition, str):
            definition = parse_query(definition, name=name)
        unknown = definition.sources() - set(self.sources)
        if unknown:
            raise MediatorError(
                f"integrated view {name!r} references unknown sources: "
                f"{sorted(unknown)}")
        self.integrated_views[name] = definition
        self._expansions.clear()

    # -- planning and answering ------------------------------------------------

    def expand(self, query: Query) -> list[Query]:
        """Expand references to integrated views into source-level rules.

        Expansions are memoized per canonical query hash (exact-query
        compare before serving, like the rewrite session's result memo)
        and invalidated whenever a view or source is registered.
        """
        tracer = self.tracer or NULL_TRACER
        if not (query.sources() & set(self.integrated_views)):
            return [query]
        if self.memoize:
            probe = canonicalize(query)
            value = self._expansions.peek(probe.key, None)
            if value is not None:
                stored, rules = value
                if stored == query:
                    self._expansions.record_hit()
                    return list(rules)
            self._expansions.record_miss()
        rules = compose(query, self.integrated_views, tracer=tracer)
        if not rules:
            raise MediatorError(
                "the query is unsatisfiable against the integrated views")
        if self.memoize:
            self._expansions.put(probe.key, (query, tuple(rules)))
        return rules

    def plan(self, query: Query | str) -> list[Plan]:
        """One cheapest plan per expanded rule."""
        tracer = self.tracer or NULL_TRACER
        if isinstance(query, str):
            query = parse_query(query)
        with tracer.span("mediator.plan",
                         query=query.name or str(query.head)) as span:
            plans: list[Plan] = []
            for rule in self.expand(query):
                candidates = plan_query(rule, self.sources,
                                        self.constraints, self.cost_model)
                plans.append(candidates[0])
            span.add("plans", len(plans))
            return plans

    def answer(self, query: Query | str,
               answer_name: str = "answer") -> OemDatabase:
        """Plan, execute, and consolidate: the full Figure 2 pipeline."""
        return self.answer_with_report(query, answer_name).answer

    def answer_with_report(self, query: Query | str,
                           answer_name: str = "answer") -> ExecutionReport:
        tracer = self.tracer or NULL_TRACER
        with tracer.span("mediator.answer") as span:
            plans = self.plan(query)
            with tracer.span("mediator.execute"):
                report = execute_plans(plans, self.wrappers, answer_name)
            span.add("objects", report.answer.stats()["objects"])
            return report

    def explain(self, query: Query | str) -> str:
        """Human-readable account of the chosen plans."""
        try:
            plans = self.plan(query)
        except CapabilityError as exc:
            return f"unanswerable: {exc}"
        return "\n".join(plan.describe() for plan in plans)
