"""TSIMMIS-style mediation substrate (Figures 1-2; Section 1; [25])."""

from .capabilities import CapabilityView, PlainCapability, parameters_of
from .source import Source
from .wrapper import NativeQuery, Wrapper, WrapperStats, translate_to_native
from .cost import CostModel
from .cbr import Plan, instantiate_capabilities, plan_query
from .executor import ExecutionReport, execute_plan, execute_plans
from .mediator import Mediator

__all__ = [
    "CapabilityView", "PlainCapability", "parameters_of",
    "Source", "Wrapper", "WrapperStats", "NativeQuery",
    "translate_to_native",
    "CostModel",
    "Plan", "plan_query", "instantiate_capabilities",
    "ExecutionReport", "execute_plan", "execute_plans",
    "Mediator",
]
