"""Export OEM databases as XML documents.

OEM is a graph model; XML documents are trees.  Shared subobjects are
duplicated on export (each occurrence serialized in place), and cycles are
rejected -- the paper notes that "especially [for] XML data, data will
instead be naturally represented as a directed acyclic graph, or as a
tree".
"""

from __future__ import annotations

import xml.etree.ElementTree as ET

from ..errors import OemError
from ..oem.model import OemDatabase, Oid
from .to_oem import TEXT_LABEL


def _element_for(db: OemDatabase, oid: Oid,
                 on_path: set[Oid]) -> ET.Element:
    if oid in on_path:
        raise OemError(
            f"cannot export cyclic OEM data to XML (cycle through {oid})")
    label = str(db.label(oid))
    element = ET.Element(label)
    if db.is_atomic(oid):
        element.text = str(db.atomic_value(oid))
        return element
    on_path = on_path | {oid}
    for child in db.children(oid):
        if db.label(child) == TEXT_LABEL and db.is_atomic(child):
            element.text = str(db.atomic_value(child))
            continue
        element.append(_element_for(db, child, on_path))
    return element


def oem_to_xml(db: OemDatabase, root: Oid | None = None,
               wrapper_tag: str = "oem") -> str:
    """Serialize *db* (or the subtree at *root*) as an XML string.

    With several roots, they are wrapped in a ``<oem>`` element.
    """
    if root is not None:
        return ET.tostring(_element_for(db, root, set()),
                           encoding="unicode")
    roots = db.roots
    if not roots:
        raise OemError("database has no roots to export")
    if len(roots) == 1:
        return ET.tostring(_element_for(db, roots[0], set()),
                           encoding="unicode")
    wrapper = ET.Element(wrapper_tag)
    for oid in roots:
        wrapper.append(_element_for(db, oid, set()))
    return ET.tostring(wrapper, encoding="unicode")
