"""Import XML documents into OEM (Section 1: "our algorithm is applicable
to repositories of Web data stored using the XML data model, which is very
similar to our data model").

Mapping: an element becomes an OEM object labeled with its tag; elements
with only text become atomic objects; elements with children become set
objects (mixed content keeps the text as a ``#text`` atomic subobject);
attributes become atomic subobjects labeled with the attribute name.
Since OEM does not support order, document order is not preserved --
exactly the simplification the paper applies to DTDs.
"""

from __future__ import annotations

import re
import xml.etree.ElementTree as ET

from ..errors import OemError
from ..oem.model import OemDatabase

TEXT_LABEL = "#text"

_DOCTYPE_RE = re.compile(r"<!DOCTYPE\s+[\w.-]+\s*(\[.*?\])?\s*>", re.DOTALL)


def _strip_doctype(text: str) -> str:
    """Remove a DOCTYPE declaration before parsing.

    The paper's DTDs use ``CDATA`` content models, which strict XML
    parsers reject; the internal subset is extracted separately by
    :mod:`repro.xmlbridge.dtd_reader`, so it is safe to drop here.
    """
    return _DOCTYPE_RE.sub("", text)


def _coerce(text: str):
    """Numeric-looking text becomes an int, everything else a string."""
    stripped = text.strip()
    if stripped.lstrip("-").isdigit():
        return int(stripped)
    return stripped


def element_to_oem(db: OemDatabase, element: ET.Element,
                   prefix: str) -> str:
    """Register *element* (recursively) and return its oid."""
    oid = prefix
    children = list(element)
    text = (element.text or "").strip()
    if not children and not element.attrib:
        db.add_atomic(oid, element.tag, _coerce(text) if text else "")
        return oid
    db.add_set(oid, element.tag)
    for name, value in sorted(element.attrib.items()):
        attr_oid = f"{oid}/@{name}"
        db.add_atomic(attr_oid, name, _coerce(value))
        db.add_child(oid, attr_oid)
    if text:
        text_oid = f"{oid}/#text"
        db.add_atomic(text_oid, TEXT_LABEL, _coerce(text))
        db.add_child(oid, text_oid)
    for index, child in enumerate(children):
        child_oid = element_to_oem(db, child, f"{oid}/{index}")
        db.add_child(oid, child_oid)
    return oid


def xml_to_oem(text: str, name: str = "db") -> OemDatabase:
    """Parse an XML document into an OEM database (root = root element).

    Oids are document-path constants (``/0``, ``/0/2``, ...), which makes
    them stable across re-imports of the same document -- the "URL as
    object id" idea of Section 2 applied to document positions.
    """
    try:
        root = ET.fromstring(_strip_doctype(text))
    except ET.ParseError as exc:
        raise OemError(f"malformed XML: {exc}") from exc
    db = OemDatabase(name)
    oid = element_to_oem(db, root, "/0")
    db.add_root(oid)
    db.check_integrity()
    return db


def xml_fragments_to_oem(fragments: list[str],
                         name: str = "db") -> OemDatabase:
    """Import several documents as the roots of one database."""
    db = OemDatabase(name)
    for index, fragment in enumerate(fragments):
        try:
            root = ET.fromstring(fragment)
        except ET.ParseError as exc:
            raise OemError(f"malformed XML fragment {index}: {exc}") from exc
        oid = element_to_oem(db, root, f"/{index}")
        db.add_root(oid)
    db.check_integrity()
    return db
