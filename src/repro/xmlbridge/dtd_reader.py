"""Extract structural constraints from XML documents' DTDs.

An XML document may carry an internal DTD subset in its DOCTYPE; this
module pulls the ``<!ELEMENT ...>`` declarations out and feeds them to
:func:`repro.rewriting.constraints.parse_dtd`, so a repository importing
XML gets Section 3.3's label inference and labeled FDs for free.
"""

from __future__ import annotations

import re

from ..errors import ConstraintError
from ..rewriting.constraints import Dtd, parse_dtd

_DOCTYPE_RE = re.compile(r"<!DOCTYPE\s+[\w.-]+\s*\[(.*?)\]\s*>", re.DOTALL)


def extract_internal_dtd(document: str) -> str | None:
    """Return the internal DTD subset of *document*, if present."""
    match = _DOCTYPE_RE.search(document)
    if match is None:
        return None
    return match.group(1)


def dtd_from_document(document: str, source: str = "db") -> Dtd | None:
    """Parse the document's internal DTD into constraints, if any."""
    subset = extract_internal_dtd(document)
    if subset is None:
        return None
    if "<!ELEMENT" not in subset:
        return None
    return parse_dtd(subset, source=source)


def dtd_from_file_text(text: str, source: str = "db") -> Dtd:
    """Parse a standalone ``.dtd`` file's text."""
    if "<!ELEMENT" not in text:
        raise ConstraintError("no element declarations in DTD text")
    return parse_dtd(text, source=source)
