"""XML <-> OEM bridge and DTD extraction."""

from .to_oem import element_to_oem, xml_fragments_to_oem, xml_to_oem
from .from_oem import oem_to_xml
from .dtd_reader import (dtd_from_document, dtd_from_file_text,
                         extract_internal_dtd)

__all__ = [
    "xml_to_oem", "xml_fragments_to_oem", "element_to_oem",
    "oem_to_xml",
    "extract_internal_dtd", "dtd_from_document", "dtd_from_file_text",
]
