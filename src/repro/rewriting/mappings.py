"""Containment mappings, generalized for object nesting (Step 1A, Section 3.1).

A *mapping* from query ``A`` (e.g. a view body) to query ``B`` (e.g. the
query body) sends ``A``'s variables to ``B``'s terms so that every single
path of ``A`` maps into some single path of ``B``.  A path maps into a path
by matching pointwise from the top-level object down; when ``A``'s path is
a *prefix* of ``B``'s, the leftover suffix of ``B`` is absorbed by ``A``'s
leaf value variable as a *set mapping* (Example 3.2: ``Z' -> {<Z last
stanford>}``).

Mappings are a necessary condition for a view to be relevant to a query
(Lemma 5.1) but not sufficient (Example 3.3) -- the composition test of
Step 2 decides.

The same engine serves the equivalence test of Section 4: a containment
mapping from component query ``T`` to ``P`` witnesses ``P ⊆ T``.

Both queries must be in normal form with the chase applied (the caller's
responsibility; :func:`find_mappings` normalizes defensively).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..logic.subst import Substitution
from ..logic.terms import Constant, Term, Variable
from ..logic.unify import match
from ..tsl.ast import Query, SetPattern, SetPatternTerm
from ..tsl.decompose import ComponentQuery
from ..tsl.normalize import (Path, condition_paths, path_pattern,
                             path_to_condition, query_paths)
from .index import IndexStats, PathIndex

EMPTY_SET_TERM = SetPatternTerm(SetPattern(()))


@dataclass(frozen=True, slots=True)
class Mapping:
    """A containment mapping plus the target paths it covers.

    ``covers`` holds the indices (into the target's path list) of the
    conditions the source body maps into -- the bookkeeping behind the
    covering heuristic of Section 3.4.
    """

    subst: Substitution
    covers: frozenset[int]

    def __str__(self) -> str:
        return str(self.subst)


def _suffix_term(path: Path, depth: int) -> SetPatternTerm:
    """The set pattern denoting the value of *path*'s object at *depth*.

    ``depth`` is 1-based; the value of the object at step ``depth`` is the
    set containing the rest of the chain.
    """
    suffix = path_pattern(path.steps[depth:], path.leaf)
    return SetPatternTerm(SetPattern((suffix,)))


def map_path_into(a: Path, b: Path,
                  subst: Substitution) -> Substitution | None:
    """Extend *subst* so that path *a* maps into path *b*, or None.

    Matching is one-way: only *a*-side variables are bound.  Top-level
    objects align with top-level objects (both denote root conditions).
    """
    if a.source != b.source or len(a.steps) > len(b.steps):
        return None
    for (a_oid, a_label), (b_oid, b_label) in zip(a.steps, b.steps):
        subst = match(a_oid, b_oid, subst)
        if subst is None:
            return None
        subst = match(a_label, b_label, subst)
        if subst is None:
            return None
    return _map_leaf(a, b, subst)


def _map_leaf(a: Path, b: Path, subst: Substitution) -> Substitution | None:
    n, m = len(a.steps), len(b.steps)
    a_leaf = a.leaf
    if isinstance(a_leaf, SetPattern):
        # a ends in {}: it only asserts "is a set object".  b implies that
        # exactly when it continues below depth n or itself ends in {}.
        if n < m:
            return subst
        return subst if isinstance(b.leaf, SetPattern) else None
    if n < m:
        # Set mapping: a's leaf value absorbs b's leftover suffix.
        if isinstance(subst.apply(a_leaf), Constant):
            return None
        return match(a_leaf, _suffix_term(b, n), subst)
    if isinstance(b.leaf, SetPattern):
        # b ends in {}: a's leaf variable may absorb the bare set assertion.
        if isinstance(subst.apply(a_leaf), Constant):
            return None
        return match(a_leaf, EMPTY_SET_TERM, subst)
    return match(a_leaf, b.leaf, subst)


# Internal marker appended to source-side variable names so a mapping
# search never confuses them with identically-named target variables.
# The lexer cannot produce it, so parsed queries never collide.
_APART = "†"


def _path_variables(path: Path) -> set[Variable]:
    out: set[Variable] = set()
    for oid, label in path.steps:
        out.update(oid.variables())
        out.update(label.variables())
    if isinstance(path.leaf, Term):
        out.update(path.leaf.variables())
    return out


def _rename_path(path: Path, subst: Substitution) -> Path:
    steps = tuple((subst.apply(oid), subst.apply(label))
                  for oid, label in path.steps)
    leaf = path.leaf
    if isinstance(leaf, Term):
        leaf = subst.apply(leaf)
    return Path(steps, leaf, path.source)


def rename_paths_apart(source_paths: list[Path],
                       initial: Substitution | None
                       ) -> tuple[list[Path], Substitution]:
    """Rename source-side variables apart from any target-side ones.

    Returns the renamed paths and the renamed initial substitution.  The
    domain of *initial* is renamed along (its range addresses the target
    side and is left alone).
    """
    source_vars: set[Variable] = set()
    for path in source_paths:
        source_vars |= _path_variables(path)
    if initial is not None:
        source_vars |= set(initial)
    renaming = Substitution(
        {v: Variable(v.name + _APART) for v in source_vars})
    renamed = [_rename_path(p, renaming) for p in source_paths]
    if initial is None:
        renamed_initial = Substitution()
    else:
        renamed_initial = Substitution(
            {Variable(v.name + _APART): t for v, t in initial.items()})
    return renamed, renamed_initial


def _strip_apart(name: str) -> str:
    # Strip to fixpoint: component_mapping pre-renames its paths apart,
    # then body_mappings renames again, so domains can carry stacked
    # markers.  Within one search every domain variable carries the same
    # number of markers (renaming is uniform), so stripping all of them
    # cannot collide two distinct variables.
    while name.endswith(_APART):
        name = name[:-len(_APART)]
    return name


def _unrename(subst: Substitution) -> Substitution:
    return Substitution({
        Variable(_strip_apart(v.name)): t
        for v, t in subst.items()})


def _constrainedness(path: Path, bound: frozenset[Variable]) -> int:
    """Sort score: steps + constants + already-bound variable occurrences.

    Higher scores fail faster: every constant and every bound variable is
    a point where :func:`map_path_into` can refute a target immediately,
    so trying those paths first prunes the search tree near the root.
    """
    score = len(path.steps)
    for oid, label in path.steps:
        for term in (oid, label):
            if isinstance(term, Constant):
                score += 1
            else:
                score += sum(1 for v in term.variables() if v in bound)
    leaf = path.leaf
    if isinstance(leaf, Constant):
        score += 1
    elif isinstance(leaf, Term):
        score += sum(1 for v in leaf.variables() if v in bound)
    return score


def most_constrained_order(paths: list[Path],
                           bound: frozenset[Variable]) -> list[int]:
    """Path indices, most-constrained-first (stable for equal scores)."""
    return sorted(range(len(paths)),
                  key=lambda i: -_constrainedness(paths[i], bound))


def body_mappings(source_paths: list[Path], target_paths: list[Path],
                  initial: Substitution | None = None,
                  limit: int | None = None,
                  budget=None, *,
                  index: PathIndex | None = None,
                  use_index: bool = True,
                  index_stats: IndexStats | None = None
                  ) -> list[Substitution]:
    """All substitutions mapping every source path into some target path.

    Source and target may freely share variable names: the source side is
    renamed apart internally and the results are translated back, so the
    returned substitutions are over the original source variables.

    Backtracking search over per-path choices; the result is deduplicated.
    Worst-case exponential in the number of source paths (Section 5.1).
    Pass ``limit=1`` when only existence matters -- the search stops at
    the first complete mapping.  *budget* is ticked once per search node
    and may raise :class:`~repro.errors.BudgetExceededError`.

    By default a :class:`~repro.rewriting.index.PathIndex` over
    *target_paths* restricts each source path to statically compatible
    targets; pass a prebuilt *index* to share one across calls, or
    ``use_index=False`` for the exhaustive scan (same results, same
    order).  *index_stats*, when given, accumulates hit/skip tallies.
    """
    renamed_paths, start = rename_paths_apart(source_paths, initial)
    results: list[Substitution] = []
    seen: set[Substitution] = set()
    # Most-constrained-first: longer paths, paths with more constants,
    # and paths over already-bound variables fail faster, which prunes
    # the search tree dramatically.
    order = most_constrained_order(renamed_paths, frozenset(start))
    if use_index:
        if index is None:
            index = PathIndex(target_paths)
        # Renaming only touches variables, never constants, so static
        # compatibility of the renamed path equals that of the original.
        candidate_lists = [index.candidates(renamed_paths[i])
                           for i in order]
        if index_stats is not None:
            index_stats.merge(index.stats_for(candidate_lists))
        choices = [[target_paths[t] for t in candidates]
                   for candidates in candidate_lists]
    else:
        choices = [target_paths for _ in order]

    def extend(position: int, subst: Substitution) -> bool:
        if budget is not None:
            budget.tick()
        if position == len(order):
            unrenamed = _unrename(subst)
            if unrenamed not in seen:
                seen.add(unrenamed)
                results.append(unrenamed)
            return limit is not None and len(results) >= limit
        source = renamed_paths[order[position]]
        for target in choices[position]:
            extended = map_path_into(source, target, subst)
            if extended is not None:
                if extend(position + 1, extended):
                    return True
        return False

    extend(0, start)
    return results


def body_mapping_exists(source_paths: list[Path], target_paths: list[Path],
                        initial: Substitution | None = None) -> bool:
    """Existence check: is there any complete containment mapping?"""
    return bool(body_mappings(source_paths, target_paths, initial, limit=1))


def coverage(source_paths: list[Path], target_paths: list[Path],
             subst: Substitution, *,
             index: PathIndex | None = None,
             use_index: bool = True) -> frozenset[int]:
    """Target path indices some source path maps into under fixed *subst*."""
    renamed_paths, fixed = rename_paths_apart(source_paths, subst)
    covered: set[int] = set()
    if use_index and index is None:
        index = PathIndex(target_paths)
    for source in renamed_paths:
        if use_index:
            positions = index.candidates(source)
        else:
            positions = range(len(target_paths))
        for position in positions:
            if position in covered:
                continue
            if map_path_into(source, target_paths[position],
                             fixed) == fixed:
                covered.add(position)
    return frozenset(covered)


def find_mappings(view: Query, query: Query, *,
                  budget=None,
                  index: PathIndex | None = None,
                  use_index: bool = True,
                  index_stats: IndexStats | None = None) -> list[Mapping]:
    """Step 1A: all mappings from the body of *view* to the body of *query*.

    Inputs are normalized defensively; apply the chase first for the full
    algorithm of Section 3.4.  One :class:`PathIndex` over the query body
    is shared by the mapping search and every coverage computation; pass
    a prebuilt *index* (e.g. from a view plan) to share it across views.
    """
    source_paths = query_paths(view)
    target_paths = query_paths(query)
    if use_index and index is None:
        index = PathIndex(target_paths)
    return [Mapping(subst, coverage(source_paths, target_paths, subst,
                                    index=index, use_index=use_index))
            for subst in body_mappings(source_paths, target_paths,
                                       budget=budget, index=index,
                                       use_index=use_index,
                                       index_stats=index_stats)]


def query_maps_into(a: Query, b: Query) -> bool:
    """True when some containment mapping sends body(*a*) into body(*b*)."""
    return bool(body_mappings(query_paths(a), query_paths(b)))


# --------------------------------------------------------------------------
# Refutation diagnostics (EXPLAIN provenance)
# --------------------------------------------------------------------------

def path_mapping_obstacle(a: Path, b: Path) -> str | None:
    """None when *a* maps into *b*; otherwise the first failing check.

    Diagnostic counterpart of :func:`map_path_into`: re-runs the
    pointwise match and names the condition component (source, length,
    oid, label, or leaf) that refutes it.  Messages quote the original
    (un-renamed) terms.
    """
    if a.source != b.source:
        return f"sources differ ({a.source!r} vs {b.source!r})"
    if len(a.steps) > len(b.steps):
        return (f"source path is deeper ({len(a.steps)} steps) than the "
                f"target ({len(b.steps)} steps)")
    (renamed,), subst = rename_paths_apart([a], None)
    for depth in range(len(renamed.steps)):
        r_oid, r_label = renamed.steps[depth]
        a_oid, a_label = a.steps[depth]
        b_oid, b_label = b.steps[depth]
        extended = match(r_oid, b_oid, subst)
        if extended is None:
            return (f"oid {a_oid} does not match {b_oid} "
                    f"at step {depth}")
        subst = extended
        extended = match(r_label, b_label, subst)
        if extended is None:
            return (f"label {a_label} does not match {b_label} "
                    f"at step {depth}")
        subst = extended
    if _map_leaf(renamed, b, subst) is None:
        return f"leaf value {a.leaf} does not match {b.leaf}"
    return None


def mapping_obstacle(source_paths: list[Path],
                     target_paths: list[Path]) -> str:
    """Why no containment mapping exists, as one printable sentence.

    Finds the first source path that maps into *no* target path in
    isolation and reports its best obstacle (preferring a same-source
    target so the message names a label/oid/leaf clash rather than the
    trivial source mismatch).  When every path maps somewhere
    individually the failure is a cross-condition binding conflict,
    which is reported as such.  Only call this after
    :func:`body_mappings` came back empty.
    """
    if not target_paths:
        return "the target query has no conditions"
    for source in source_paths:
        obstacles = [path_mapping_obstacle(source, target)
                     for target in target_paths]
        if all(obstacle is not None for obstacle in obstacles):
            best = next(
                (o for o in obstacles if not o.startswith("sources differ")),
                obstacles[0])
            condition = path_to_condition(source)
            return (f"condition {condition} maps into no query "
                    f"condition: {best}")
    return ("every condition maps into some query condition "
            "individually, but no single substitution satisfies all of "
            "them (variable bindings conflict across conditions)")


# --------------------------------------------------------------------------
# Component-query mappings (Section 4 equivalence machinery)
# --------------------------------------------------------------------------

def _match_values(a_value, b_value,
                  subst: Substitution) -> Substitution | None:
    """Match an object-rule value field of *a* onto one of *b*."""
    if isinstance(a_value, SetPattern):
        return subst if isinstance(b_value, SetPattern) else None
    if isinstance(b_value, SetPattern):
        if isinstance(subst.apply(a_value), Constant):
            return None
        return match(a_value, EMPTY_SET_TERM, subst)
    return match(a_value, b_value, subst)


def component_mapping(t: ComponentQuery, p: ComponentQuery,
                      budget=None) -> Substitution | None:
    """A mapping from component query *t* to *p* (witnessing ``p ⊆ t``).

    The mapping must send the head of *t* onto the head of *p* and every
    body condition of *t* into a body condition of *p* (Theorem 4.2).
    *t* and *p* may share variable names (e.g. comparing a rule with
    itself); the *t* side is renamed apart internally.
    """
    if t.kind != p.kind or len(t.head_terms) != len(p.head_terms):
        return None
    apart = Substitution({
        v: Variable(v.name + _APART)
        for v in _component_variables(t)})
    subst: Substitution | None = Substitution()
    for t_term, p_term in zip(t.head_terms, p.head_terms):
        subst = match(apart.apply(t_term), p_term, subst)
        if subst is None:
            return None
    if t.kind == "object":
        t_value = t.value
        if isinstance(t_value, Term):
            t_value = apart.apply(t_value)
        subst = _match_values(t_value, p.value, subst)
        if subst is None:
            return None
    t_paths = [_rename_path(path, apart)
               for c in t.body for path in condition_paths(c)]
    p_paths = [path for c in p.body for path in condition_paths(c)]
    # Paths are pre-renamed, so hand body_mappings an already-apart
    # initial keyed by the renamed names (it renames once more, which is
    # harmless and keeps the contract uniform).
    found = body_mappings(t_paths, p_paths, initial=subst, limit=1,
                          budget=budget)
    return found[0] if found else None


def _component_variables(component: ComponentQuery) -> set[Variable]:
    out: set[Variable] = set()
    for term in component.head_terms:
        out.update(term.variables())
    if isinstance(component.value, Term):
        out.update(component.value.variables())
    for condition in component.body:
        out.update(condition.variables())
    return out
