"""Compile-time equivalence of TSL queries and unions (Section 4).

Two queries are equivalent iff their results are equivalent on every OEM
database.  Because TSL heads construct graphs -- and different rules (or
different assignments) can contribute parts of the same graph -- each rule
is decomposed into *graph component queries* (top / member / object rules,
:mod:`repro.tsl.decompose`); two decompositions are equivalent iff the
mutual-mapping condition of Theorem 4.2 holds, which generalizes the
containment theorem for unions of conjunctive queries [33, 18].

Inputs are chased (with optional structural constraints) and normalized
first; a rule whose chase contradicts the oid key dependency has an empty
result on every database and drops out of its union.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..errors import ChaseContradictionError
from ..logic.subst import Substitution
from ..obs import NULL_TRACER
from ..tsl.ast import Query
from ..tsl.decompose import ComponentQuery, decompose_program
from ..tsl.normalize import normalize, path_to_condition, query_paths
from .chase import StructuralConstraints, chase
from .mappings import body_mappings, component_mapping


def prepare_program(rules: Iterable[Query],
                    constraints: StructuralConstraints | None = None,
                    minimize_rules: bool = False, *,
                    budget=None, session=None) -> list[Query]:
    """Chase + normalize each rule; drop rules with contradictory bodies.

    With a :class:`~repro.rewriting.session.RewriteSession` (created for
    the same *constraints*) the per-rule chase and minimization hit the
    session's memo tables.
    """
    prepared: list[Query] = []
    for rule in rules:
        try:
            if session is not None:
                chased = session.chase(rule, budget=budget)
            else:
                chased = chase(rule, constraints, budget=budget)
        except ChaseContradictionError:
            continue  # empty on every legal database: contributes nothing
        if minimize_rules:
            if session is not None:
                chased = session.minimize(chased, budget=budget)
            else:
                chased = minimize(chased, budget=budget)
        prepared.append(chased)
    return prepared


def components_subsumed(left: Sequence[ComponentQuery],
                        right: Sequence[ComponentQuery],
                        budget=None) -> bool:
    """True when every left component has a mapping *from* some right one.

    Witnesses that the left union's result graph is contained in the
    right's, component-wise (one half of Theorem 4.2).
    """
    return all(
        any(component_mapping(t, p, budget=budget) is not None
            for t in right)
        for p in left)


def programs_equivalent(left: Iterable[Query], right: Iterable[Query],
                        constraints: StructuralConstraints | None = None,
                        minimize_rules: bool = False, *,
                        tracer=None, budget=None, session=None,
                        right_components=None) -> bool:
    """Theorem 4.3: decompose both unions and test mutual mappings.

    *session* memoizes the sub-steps (chase, minimize, decomposition);
    the verdict itself is memoized by
    :meth:`~repro.rewriting.session.RewriteSession.programs_equivalent`,
    which delegates here on a miss.  *right_components*, when given,
    must be the prepared + decomposed form of *right* under the same
    *constraints* and *minimize_rules*; the rewriter precomputes the
    target query's components once and shares them across every
    candidate's Step 2 test.
    """
    tracer = tracer or NULL_TRACER
    with tracer.span("equivalence") as span:
        left_rules = prepare_program(left, constraints, minimize_rules,
                                     budget=budget, session=session)
        if session is not None:
            left_components = session.decompose(left_rules)
        else:
            left_components = decompose_program(left_rules)
        if right_components is None:
            right_rules = prepare_program(right, constraints,
                                          minimize_rules, budget=budget,
                                          session=session)
            if session is not None:
                right_components = session.decompose(right_rules)
            else:
                right_components = decompose_program(right_rules)
        span.add("components",
                 len(left_components) + len(right_components))
        outcome = (components_subsumed(left_components, right_components,
                                       budget=budget)
                   and components_subsumed(right_components,
                                           left_components, budget=budget))
        span.set("equivalent", outcome)
        return outcome


def equivalence_obstacle(left: Iterable[Query], right: Iterable[Query],
                         constraints: StructuralConstraints | None = None,
                         *, budget=None, session=None) -> dict | None:
    """Why :func:`programs_equivalent` says False: the unmapped component.

    Re-runs the Theorem 4.3 test and returns the first graph component
    (top / member / object rule) that no component of the other side
    maps onto::

        {"unmapped_side": "left" | "right",
         "component_kind": "top" | "member" | "object",
         "component": "<printable component rule>"}

    ``unmapped_side="left"`` means a *left* component is not covered by
    any right component (left is not contained in right), and
    symmetrically.  Returns None when the programs are equivalent.
    This is a diagnostic (EXPLAIN) path: it redoes the decomposition
    and mapping searches rather than touching the hot path.
    """
    left_rules = prepare_program(left, constraints, budget=budget,
                                 session=session)
    right_rules = prepare_program(right, constraints, budget=budget,
                                  session=session)
    if session is not None:
        left_components = session.decompose(left_rules)
        right_components = session.decompose(right_rules)
    else:
        left_components = decompose_program(left_rules)
        right_components = decompose_program(right_rules)
    for side, components, others in (
            ("left", left_components, right_components),
            ("right", right_components, left_components)):
        for p in components:
            if not any(component_mapping(t, p, budget=budget) is not None
                       for t in others):
                return {"unmapped_side": side,
                        "component_kind": p.kind,
                        "component": str(p)}
    return None


def equivalent(left: Query, right: Query,
               constraints: StructuralConstraints | None = None) -> bool:
    """Equivalence of two single TSL rules."""
    return programs_equivalent([left], [right], constraints)


def minimize(query: Query, *, budget=None) -> Query:
    """Remove redundant body conditions (classic CQ minimization).

    A path is removable when the full body maps into the remaining body by
    a containment mapping that is the identity on head variables -- a
    sound (homomorphism-witnessed) proof that the smaller query is
    contained in the original; the other containment is trivial.
    Compositions produce one view-body copy per resolution goal, so they
    carry heavy redundancy; this pass collapses it.
    """
    current = normalize(query)
    frozen = Substitution({v: v for v in current.head_variables()})
    paths = query_paths(current)
    improved = True
    while improved and len(paths) > 1:
        improved = False
        for index in range(len(paths)):
            remaining = paths[:index] + paths[index + 1:]
            if body_mappings(paths, remaining, initial=frozen, limit=1,
                             budget=budget):
                paths = remaining
                improved = True
                break
    return Query(current.head, tuple(path_to_condition(p) for p in paths),
                 name=current.name)
