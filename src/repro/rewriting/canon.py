"""Canonical forms and stable hashes for queries (memoization keys).

The cached-query manager and the :class:`~repro.rewriting.session.
RewriteSession` memo tables key work on *query identity* -- but two TSL
queries that differ only in variable spelling or in the order of their
body conjuncts denote the same rewriting problem.  This module computes
a **variable-order-independent canonical form**:

* body conditions are split to single paths (normal form) and sorted by
  a name-free structural *skeleton*;
* every variable is renamed apart to a De Bruijn-style index ``$0, $1,
  ...`` assigned by first occurrence scanning the head and then the
  sorted body;
* the sort/number passes iterate to a fixpoint so ties between
  structurally identical conjuncts resolve deterministically.

The canonical form is itself a :class:`~repro.tsl.ast.Query` (same
head structure, path-normal body), so it round-trips through the whole
pipeline and is *equivalent* to its input.  Equality of canonical forms
implies alpha-equivalence of the inputs -- the soundness requirement for
a memoization key; the converse holds up to skeleton ties, which only
costs an occasional memo miss, never a wrong hit.

:func:`query_key` (and friends) hash the canonical rendering with
``blake2b``, so keys are stable across processes (unlike ``hash()``,
which is salted for strings).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from functools import cached_property, lru_cache
from typing import Iterable, Sequence

from ..logic.subst import Substitution
from ..logic.terms import Constant, FunctionTerm, Term, Variable
from ..tsl.ast import (Condition, ObjectPattern, Query, SetPattern,
                       SetPatternTerm)
from ..tsl.decompose import ComponentQuery
from ..tsl.normalize import normalize

#: Canonical variables are named ``$0, $1, ...``; the lexer cannot
#: produce ``$`` in an identifier, so canonical names never collide with
#: parsed ones (mirrors the ``†`` marker of :mod:`.mappings`).
CANON_STEM = "$"

#: Fixpoint bound for the sort/renumber refinement.  Two passes settle
#: every query the generators produce; the bound is a safety net.
_MAX_PASSES = 8


# --------------------------------------------------------------------------
# Structural skeletons (name-free sort keys)
# --------------------------------------------------------------------------

def _term_skeleton(term) -> str:
    if isinstance(term, Variable):
        return "?"
    if isinstance(term, Constant):
        return f"c:{term.value!r}"
    if isinstance(term, FunctionTerm):
        inner = ",".join(_term_skeleton(arg) for arg in term.args)
        return f"{term.functor}({inner})"
    if isinstance(term, SetPatternTerm):
        return _set_skeleton(term.pattern)
    return str(term)


def _set_skeleton(pattern: SetPattern) -> str:
    inner = " ".join(sorted(_pattern_skeleton(p) for p in pattern.patterns))
    return "{" + inner + "}"


def _pattern_skeleton(pattern: ObjectPattern) -> str:
    value = pattern.value
    if isinstance(value, SetPattern):
        rendered = _set_skeleton(value)
    else:
        rendered = _term_skeleton(value)
    return (f"<{_term_skeleton(pattern.oid)} "
            f"{_term_skeleton(pattern.label)} {rendered}>")


@lru_cache(maxsize=65536)
def _condition_skeleton(condition: Condition) -> str:
    return f"{_pattern_skeleton(condition.pattern)}@{condition.source}"


@lru_cache(maxsize=65536)
def _condition_str(condition: Condition) -> str:
    """``str(condition)``, cached -- rendering dominates refinement."""
    return str(condition)


# --------------------------------------------------------------------------
# Hash-consing (interning) of terms and conditions
# --------------------------------------------------------------------------

#: Interning pools are cleared wholesale when full -- hash-consing is an
#: optimization, never a source of truth, so dropping entries only costs
#: a little sharing.
_POOL_CAPACITY = 65536
_TERM_POOL: dict = {}
_CONDITION_POOL: dict[Condition, Condition] = {}


def intern_term(term):
    """Return the pooled representative equal to *term* (hash-consing).

    Equal terms collapse to one object, so later equality checks hit the
    ``is``-shortcut and per-object caches (skeletons, variable sets) are
    computed once per structure instead of once per copy.
    """
    if len(_TERM_POOL) >= _POOL_CAPACITY:
        _TERM_POOL.clear()
    return _TERM_POOL.setdefault(term, term)


def intern_condition(condition: Condition) -> Condition:
    """Return the pooled representative equal to *condition*."""
    if len(_CONDITION_POOL) >= _POOL_CAPACITY:
        _CONDITION_POOL.clear()
    return _CONDITION_POOL.setdefault(condition, condition)


# --------------------------------------------------------------------------
# Canonicalization
# --------------------------------------------------------------------------

def _collect_variables(term, out: list[Variable]) -> None:
    """Append each variable of a term/pattern in deterministic preorder."""
    if isinstance(term, Variable):
        out.append(term)
    elif isinstance(term, FunctionTerm):
        for arg in term.args:
            _collect_variables(arg, out)
    elif isinstance(term, SetPatternTerm):
        _collect_variables(term.pattern, out)
    elif isinstance(term, SetPattern):
        for pattern in term.patterns:
            _collect_variables(pattern, out)
    elif isinstance(term, ObjectPattern):
        _collect_variables(term.oid, out)
        _collect_variables(term.label, out)
        _collect_variables(term.value, out)


def _number_variables(head: ObjectPattern | None,
                      body: Sequence[Condition]) -> Substitution:
    """First-occurrence De Bruijn numbering over head then body."""
    occurrences: list[Variable] = []
    if head is not None:
        _collect_variables(head, occurrences)
    for condition in body:
        _collect_variables(condition.pattern, occurrences)
    forward: dict[Variable, Variable] = {}
    for variable in occurrences:
        if variable not in forward:
            forward[variable] = Variable(f"{CANON_STEM}{len(forward)}")
    return Substitution(forward)


@dataclass(frozen=True)
class Canonical:
    """A canonicalized query plus the renaming that produced it."""

    query: Query
    #: original variable -> canonical ``$i`` variable (injective).
    forward: Substitution

    @cached_property
    def key(self) -> str:
        # cached_property works on this frozen dataclass because it is
        # not slotted: the computed digest lands in the instance
        # __dict__, bypassing the frozen __setattr__.
        return _digest(_render_query(self.query))


@lru_cache(maxsize=8192)
def canonicalize(query: Query) -> Canonical:
    """The canonical form of *query* (normal-form body, ``$i`` variables).

    The result is equivalent to the input: the body is only split to
    single paths, reordered (conjunction is a set), and renamed apart.

    Cached by query equality (spans excluded): canonicalization runs on
    every memo probe, so repeated probes of the same query are free.
    """
    current = normalize(query)
    body = list(current.body)
    # Initial sort ignores variable names entirely.
    body.sort(key=_condition_skeleton)
    forward = _number_variables(current.head, body)
    for _ in range(_MAX_PASSES):
        # Refine: sort by the fully-rendered canonical conjunct (ties
        # between equal skeletons now resolve by variable wiring), then
        # renumber; stop when the order is stable.
        rendered = [(_condition_str(intern_condition(c.substitute(forward))),
                     c) for c in body]
        rendered.sort(key=lambda item: item[0])
        reordered = [c for _, c in rendered]
        renumbered = _number_variables(current.head, reordered)
        if reordered == body and renumbered == forward:
            break
        body, forward = reordered, renumbered
    return Canonical(
        Query(current.head.substitute(forward),
              tuple(intern_condition(c.substitute(forward)) for c in body)),
        forward)


def _digest(rendered: str) -> str:
    return hashlib.blake2b(rendered.encode("utf-8"),
                           digest_size=16).hexdigest()


def _render_query(query: Query) -> str:
    body = " AND ".join(str(c) for c in query.body)
    return f"{query.head} :- {body}"


def query_key(query: Query) -> str:
    """A stable hash identifying *query* up to renaming and body order."""
    return canonicalize(query).key


def condition_key(condition: Condition) -> str:
    """A stable hash of one condition up to variable renaming."""
    forward = _number_variables(None, [condition])
    return _digest(_condition_str(intern_condition(
        condition.substitute(forward))))


def component_key(component: ComponentQuery) -> str:
    """A stable hash of a graph component query up to renaming."""
    occurrences: list[Variable] = []
    for term in component.head_terms:
        _collect_variables(term, occurrences)
    if component.value is not None:
        _collect_variables(component.value, occurrences)
    body = sorted(component.body, key=_condition_skeleton)
    for condition in body:
        _collect_variables(condition.pattern, occurrences)
    forward_map: dict[Variable, Variable] = {}
    for variable in occurrences:
        if variable not in forward_map:
            forward_map[variable] = Variable(
                f"{CANON_STEM}{len(forward_map)}")
    forward = Substitution(forward_map)
    heads = ",".join(str(forward.apply(t)) for t in component.head_terms)
    value = component.value
    if isinstance(value, Term):
        value = forward.apply(value)
    rendered_body = " AND ".join(
        sorted(str(c.substitute(forward)) for c in body))
    return _digest(f"{component.kind}({heads})={value} :- {rendered_body}")


def program_key(rules: Iterable[Query]) -> str:
    """A stable hash of a union of rules, order-independent."""
    return _digest("|".join(sorted(query_key(rule) for rule in rules)))


# --------------------------------------------------------------------------
# Rebasing memoized results between alpha-equivalent variable spaces
# --------------------------------------------------------------------------

def rebase(result: Query, stored: Canonical, probe: Canonical) -> Query:
    """Translate *result* from *stored*'s variable space into *probe*'s.

    ``stored`` and ``probe`` must have equal canonical queries (the memo
    key matched).  Variables of *result* in ``stored.forward``'s domain
    are mapped through the canonical form into *probe*'s names; variables
    the pipeline introduced afterwards (e.g. the chase's fresh ``W_n``)
    are kept when they cannot collide with a probe variable and renamed
    to fresh ones otherwise.
    """
    inverse_probe = {canon: orig for orig, canon in probe.forward.items()}
    renaming: dict[Variable, Variable] = {}
    for orig, canon in stored.forward.items():
        renaming[orig] = inverse_probe[canon]
    taken = set(inverse_probe.values())
    counter = 0
    extras = sorted(
        (v for v in result.all_variables() if v not in renaming),
        key=lambda v: v.name)
    for variable in extras:
        if variable not in taken:
            renaming[variable] = variable
            taken.add(variable)
            continue
        while True:
            counter += 1
            candidate = Variable(f"W_r{counter}")
            if candidate not in taken:
                renaming[variable] = candidate
                taken.add(candidate)
                break
    return result.substitute(Substitution(renaming))
