"""Structural constraints from DTDs (Section 3.3).

Semistructured data are often accompanied by constraints that partially
define the structure of objects -- a DTD, a DataGuide, or an XML-Data
schema.  From a DTD the paper derives two kinds of information:

* **label inference** -- given a path expression ``a . ? . c``, if the
  only subobject of an ``a`` object that can have a ``c`` subobject is a
  ``b`` subobject, then ``? = b``;
* **functional dependencies** -- if ``a`` objects have at most one ``b``
  subobject, the labeled FD ``X_a -> Y_b`` holds and the regular chase
  rule applies.

Since OEM does not support order, the order in content models is ignored,
as are multiplicities beyond "at most one" vs "many".
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from ..errors import ConstraintError
from ..logic.terms import Atom

ATOMIC_CONTENT = ("CDATA", "#PCDATA", "EMPTY", "ANY")

_ELEMENT_RE = re.compile(
    r"<!ELEMENT\s+([\w.-]+)\s+(\(.*?\)|[\w#]+)\s*>", re.DOTALL)


@dataclass(frozen=True, slots=True)
class ChildSpec:
    """One child in a content model: its element name and multiplicity."""

    name: str
    multiplicity: str  # one of "1", "?", "*", "+"

    @property
    def at_most_one(self) -> bool:
        return self.multiplicity in ("1", "?")


@dataclass
class Dtd:
    """A parsed DTD, restricted to the fragment the paper uses.

    ``elements`` maps an element name either to a tuple of
    :class:`ChildSpec` (set content) or to None (atomic content).
    """

    elements: dict[str, tuple[ChildSpec, ...] | None] = field(
        default_factory=dict)
    source: str = "db"

    # -- construction --------------------------------------------------------

    def declare_atomic(self, name: str) -> "Dtd":
        self.elements[name] = None
        return self

    def declare(self, name: str, children: list[ChildSpec]) -> "Dtd":
        self.elements[name] = tuple(children)
        return self

    # -- queries used by the chase and label inference -----------------------

    def is_atomic(self, name: Atom) -> bool:
        return self.elements.get(str(name), ()) is None

    def children_of(self, name: Atom) -> tuple[ChildSpec, ...]:
        spec = self.elements.get(str(name))
        return spec or ()

    def can_contain(self, parent: Atom, child: Atom) -> bool:
        return any(spec.name == str(child) for spec in self.children_of(parent))

    def infer_middle_label(self, parent: Atom, child: Atom) -> Atom | None:
        """The unique ``b`` with ``parent/b`` and ``b/child``, if any."""
        candidates = [spec.name for spec in self.children_of(parent)
                      if self.can_contain(spec.name, child)]
        if len(candidates) == 1:
            return candidates[0]
        return None

    def only_child_label(self, parent: Atom) -> Atom | None:
        """The unique possible child label of *parent*, if any."""
        children = self.children_of(parent)
        if len(children) == 1:
            return children[0].name
        return None

    def functional_child(self, parent: Atom, child: Atom) -> bool:
        """True when *parent* objects have at most one *child* subobject."""
        for spec in self.children_of(parent):
            if spec.name == str(child):
                return spec.at_most_one
        return False

    def known_labels(self) -> set[str]:
        out = set(self.elements)
        for spec in self.elements.values():
            for child in spec or ():
                out.add(child.name)
        return out


def parse_dtd(text: str, source: str = "db") -> Dtd:
    """Parse ``<!ELEMENT name (child, child*, child?)>`` declarations.

    The paper's Section 3.3 DTD parses verbatim.  Content models are
    either an atomic keyword (``CDATA``, ``#PCDATA``, ``EMPTY``, ``ANY``)
    or a comma-separated list of child names with optional ``? * +``
    multiplicity suffixes.  Choice (``|``) groups are accepted and treated
    as optional children (each alternative may appear at most once).
    """
    dtd = Dtd(source=source)
    matched_any = False
    for match in _ELEMENT_RE.finditer(text):
        matched_any = True
        name, content = match.group(1), match.group(2).strip()
        if content.upper() in ATOMIC_CONTENT:
            dtd.declare_atomic(name)
            continue
        if not (content.startswith("(") and content.endswith(")")):
            raise ConstraintError(
                f"element {name}: unsupported content model {content!r}")
        inner = content[1:-1].strip()
        if inner.upper() in ("#PCDATA",):
            dtd.declare_atomic(name)
            continue
        children: list[ChildSpec] = []
        is_choice = "|" in inner
        for piece in re.split(r"[|,]", inner):
            piece = piece.strip()
            if not piece:
                continue
            multiplicity = "1"
            if piece[-1] in "?*+":
                multiplicity = piece[-1]
                piece = piece[:-1].strip()
            if not re.fullmatch(r"[\w.-]+", piece):
                raise ConstraintError(
                    f"element {name}: unsupported particle {piece!r}")
            if is_choice and multiplicity == "1":
                multiplicity = "?"
            children.append(ChildSpec(piece, multiplicity))
        dtd.declare(name, children)
    if not matched_any and text.strip():
        raise ConstraintError("no <!ELEMENT ...> declarations found")
    return dtd


_ELEMENT_TYPE_RE = re.compile(
    r"<elementType\s+id=\"([\w.-]+)\"\s*>(.*?)</elementType>", re.DOTALL)
_ELEMENT_REF_RE = re.compile(
    r"<element\s+type=\"#([\w.-]+)\"(?:\s+occurs=\"(\w+)\")?\s*/>")
_STRING_RE = re.compile(r"<string\s*/>")

_XML_DATA_OCCURS = {
    "REQUIRED": "1",
    "OPTIONAL": "?",
    "ONEORMORE": "+",
    "ZEROORMORE": "*",
    None: "1",
}


def parse_xml_data(text: str, source: str = "db") -> Dtd:
    """Parse an XML-Data "schema" (Section 3.3 names it next to DTDs).

    Supports the core of the 1998 W3C note::

        <elementType id="p">
            <element type="#name" occurs="REQUIRED"/>
            <element type="#address" occurs="ZEROORMORE"/>
        </elementType>
        <elementType id="phone"><string/></elementType>

    ``occurs`` defaults to REQUIRED.  The result is the same
    :class:`Dtd` structure, so label inference and the labeled-FD chase
    apply unchanged.
    """
    dtd = Dtd(source=source)
    matched_any = False
    for match in _ELEMENT_TYPE_RE.finditer(text):
        matched_any = True
        name, body = match.group(1), match.group(2)
        if _STRING_RE.search(body) and not _ELEMENT_REF_RE.search(body):
            dtd.declare_atomic(name)
            continue
        children = [
            ChildSpec(ref.group(1), _XML_DATA_OCCURS[ref.group(2)])
            for ref in _ELEMENT_REF_RE.finditer(body)]
        dtd.declare(name, children)
    if not matched_any and text.strip():
        raise ConstraintError("no <elementType ...> declarations found")
    return dtd


PAPER_DTD = """
<!ELEMENT p (name, phone, address*)>
<!ELEMENT name (last, first, middle?, alias?)>
<!ELEMENT alias (last, first)>
<!ELEMENT address CDATA>
<!ELEMENT phone CDATA>
<!ELEMENT last CDATA>
<!ELEMENT first CDATA>
<!ELEMENT middle CDATA>
"""


def paper_dtd(source: str = "db") -> Dtd:
    """The DTD of Section 3.3, used by Example 3.5 and the tests."""
    return parse_dtd(PAPER_DTD, source=source)
