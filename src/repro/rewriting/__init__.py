"""The paper's primary contribution: rewriting TSL queries using views."""

from .index import IndexStats, PathIndex, statically_compatible
from .mappings import (Mapping, body_mappings, component_mapping, coverage,
                       find_mappings, map_path_into,
                       most_constrained_order, query_maps_into)
from .canon import (Canonical, canonicalize, component_key, condition_key,
                    intern_condition, intern_term, program_key, query_key)
from .chase import StructuralConstraints, chase
from .session import (DEFAULT_MEMO_SIZE, MemoTable, RewriteSession,
                      ViewPlan)
from .composition import compose
from .equivalence import (equivalence_obstacle, equivalent, minimize,
                          prepare_program, programs_equivalent)
from .explain import CandidateEvent, Explanation, MappingEvent
from .rewriter import (CandidateAtom, RewriteResult, RewriteStats, Rewriting,
                       find_all_rewritings, is_rewriting, rewrite,
                       rewrite_single_path, view_instantiations)
from .contained import (ContainedResult, ContainedRewriting, contained_in,
                        maximally_contained_rewritings, programs_contained)
from .constraints import (ChildSpec, Dtd, paper_dtd, parse_dtd,
                          parse_xml_data)
from .dataguide import DataGuide, build_dataguide, dtd_from_dataguide

__all__ = [
    "Mapping", "find_mappings", "body_mappings", "map_path_into",
    "coverage", "component_mapping", "query_maps_into",
    "most_constrained_order",
    "PathIndex", "IndexStats", "statically_compatible",
    "chase", "StructuralConstraints",
    "compose",
    "equivalent", "programs_equivalent", "minimize", "prepare_program",
    "equivalence_obstacle",
    "Explanation", "MappingEvent", "CandidateEvent",
    "rewrite", "rewrite_single_path", "find_all_rewritings", "is_rewriting",
    "Rewriting", "RewriteResult", "RewriteStats", "CandidateAtom",
    "view_instantiations",
    "Canonical", "canonicalize", "query_key", "condition_key",
    "component_key", "program_key", "intern_term", "intern_condition",
    "RewriteSession", "MemoTable", "DEFAULT_MEMO_SIZE", "ViewPlan",
    "maximally_contained_rewritings", "programs_contained", "contained_in",
    "ContainedRewriting", "ContainedResult",
    "Dtd", "ChildSpec", "parse_dtd", "paper_dtd", "parse_xml_data",
    "DataGuide", "build_dataguide", "dtd_from_dataguide",
]
