"""Query-view composition via resolution and unification (Step 2A, §3.1).

Given a candidate rewriting query ``Q'`` whose body references views, the
composition ``Q'(V1..Vn)`` is the query over the base sources that
computes the same result.  It is the correctness oracle of the rewriting
algorithm: ``Q'`` is a rewriting of ``Q`` iff the composition is
equivalent to ``Q``.

Composition is subtle because of TSL's *fusion* semantics: two different
assignments of a view body can contribute different parts of the same
answer object (they "fuse" when their head oid terms coincide).  A single
condition chain over the view may therefore be witnessed by *several*
assignments, one per answer-graph component it touches.  We exploit the
graph-component decomposition of Section 4: a condition path is the
conjunction of one *top* goal, one *member* goal per step, and one
*object* goal per step; each goal resolves against the matching component
rule of the view with a **fresh copy of the view body**, and the copies
are joined by unifying the head oid terms (``f(X..) = f(Y..)`` forces
pointwise equality -- the object-id key dependency).

Two extra resolution rules handle TSL's copy semantics:

* a member goal may be absorbed by a head pattern whose value is a
  variable ``w`` (a *hanging source subgraph*): the rest of the condition
  chain binds into ``w`` as a set pattern;
* a ``{}`` condition leaf against a term-valued head position binds the
  view's value variable to ``{}`` (asserting "is a set object" on the
  source).

The result is a **union of rules** (one per combination of resolution
choices), worst-case exponential in the query size (Section 5.1).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterator, Mapping

from ..errors import CompositionError
from ..logic.subst import Substitution
from ..obs import NULL_TRACER
from ..logic.terms import Term, Variable
from ..logic.unify import unify
from ..tsl.ast import Condition, Query, SetPattern, SetPatternTerm
from ..tsl.normalize import (Path, normalize, path_pattern, query_paths)

Views = Mapping[str, Query]


@dataclass(frozen=True, slots=True)
class _ViewParts:
    """Pre-split pieces of a (renamed) view head used during resolution."""

    top_oid: Term
    member_edges: tuple[tuple[Term, Term], ...]        # (parent, child) oids
    object_rules: tuple[tuple[Term, Term, object], ...]  # (oid, label, value)
    hanging: tuple[tuple[Term, Variable], ...]         # (oid, value var)
    body: tuple[Condition, ...]


def _view_parts(view: Query) -> _ViewParts:
    member_edges = []
    object_rules = []
    hanging = []
    for pattern in view.head.nested_patterns():
        object_rules.append((pattern.oid, pattern.label, pattern.value))
        if isinstance(pattern.value, SetPattern):
            for child in pattern.value.patterns:
                member_edges.append((pattern.oid, child.oid))
        elif isinstance(pattern.value, Variable):
            hanging.append((pattern.oid, pattern.value))
    return _ViewParts(view.head.oid, tuple(member_edges),
                      tuple(object_rules), tuple(hanging), view.body)


_COPY_SUFFIX = re.compile(r"~(\d+)$")


def _copy_counter_start(candidate: Query, views: Views) -> int:
    """Lowest safe start for the rename-apart counter.

    A candidate that is itself the output of an earlier composition
    carries ``~N``-suffixed variables; fresh view copies must begin
    numbering above every suffix already in play, or a copy collides
    with a candidate variable and resolution dies on the occurs check.
    """
    names = {v.name for v in candidate.head_variables()
             | candidate.body_variables()}
    for view in views.values():
        names |= {v.name for v in view.head_variables()
                  | view.body_variables()}
    start = 0
    for name in names:
        suffix = _COPY_SUFFIX.search(name)
        if suffix:
            start = max(start, int(suffix.group(1)))
    return start


class _Resolver:
    """Backtracking resolution of view-condition paths against view parts."""

    def __init__(self, views: Views, start: int = 0,
                 budget=None) -> None:
        self._views = {name: normalize(view) for name, view in views.items()}
        self._copies = start
        self._budget = budget

    def _fresh_parts(self, source: str) -> _ViewParts:
        if self._budget is not None:
            self._budget.tick()
        self._copies += 1
        view = self._views[source].rename_apart(f"~{self._copies}")
        return _view_parts(view)

    def resolve_paths(self, paths: list[Path], subst: Substitution,
                      body: tuple[Condition, ...]
                      ) -> Iterator[tuple[Substitution,
                                          tuple[Condition, ...]]]:
        if not paths:
            yield subst, body
            return
        first, rest = paths[0], paths[1:]
        for new_subst, new_body in self._resolve_step(first, 0, subst, body,
                                                      is_top=True):
            yield from self.resolve_paths(rest, new_subst, new_body)

    # -- per-path resolution -------------------------------------------------

    def _resolve_step(self, path: Path, depth: int, subst: Substitution,
                      body: tuple[Condition, ...], is_top: bool
                      ) -> Iterator[tuple[Substitution,
                                          tuple[Condition, ...]]]:
        """Resolve the goals of *path* from step *depth* downward."""
        oid, label = path.steps[depth]
        last = depth == len(path.steps) - 1
        leaf = path.leaf if last else None
        for after_object, object_body in self._object_goal(
                path.source, oid, label, leaf, last, subst):
            body_1 = body + object_body
            if is_top:
                pair = self._top_goal(path.source, oid, after_object)
                if pair is None:
                    continue
                after_top, top_body = pair
                body_2 = body_1 + top_body
            else:
                after_top, body_2 = after_object, body_1
            if last:
                yield after_top, body_2
                continue
            yield from self._member_goal(path, depth, after_top, body_2)

    def _top_goal(self, source: str, oid: Term, subst: Substitution
                  ) -> tuple[Substitution, tuple[Condition, ...]] | None:
        parts = self._fresh_parts(source)
        unified = unify(oid, parts.top_oid, subst)
        if unified is None:
            return None
        return unified, parts.body

    def _object_goal(self, source: str, oid: Term, label: Term,
                     leaf: object, last: bool, subst: Substitution
                     ) -> Iterator[tuple[Substitution,
                                         tuple[Condition, ...]]]:
        parts = self._fresh_parts(source)
        for rule_oid, rule_label, rule_value in parts.object_rules:
            unified = unify(oid, rule_oid, subst)
            if unified is None:
                continue
            unified = unify(label, rule_label, unified)
            if unified is None:
                continue
            if last:
                unified = self._unify_leaf(leaf, rule_value, unified)
                if unified is None:
                    continue
            yield unified, parts.body

    def _unify_leaf(self, leaf: object, rule_value: object,
                    subst: Substitution) -> Substitution | None:
        if isinstance(leaf, SetPattern):
            if isinstance(rule_value, SetPattern):
                return subst
            if isinstance(rule_value, Variable):
                # "{}" asserts the source value is a set object.
                return unify(rule_value, SetPatternTerm(SetPattern(())),
                             subst)
            return None  # constant: atomic object, never a set
        if isinstance(rule_value, SetPattern):
            bound = subst.apply(leaf)
            if isinstance(bound, Variable):
                raise CompositionError(
                    "a condition binds a variable to the value of a "
                    "set-constructed view object; this is not expressible "
                    "as a source query (rejecting candidate)")
            return None
        return unify(leaf, rule_value, subst)

    def _member_goal(self, path: Path, depth: int, subst: Substitution,
                     body: tuple[Condition, ...]
                     ) -> Iterator[tuple[Substitution,
                                         tuple[Condition, ...]]]:
        parent_oid = path.steps[depth][0]
        child_oid = path.steps[depth + 1][0]
        # Option A: a member rule of the view head.
        parts = self._fresh_parts(path.source)
        for rule_parent, rule_child in parts.member_edges:
            unified = unify(parent_oid, rule_parent, subst)
            if unified is None:
                continue
            unified = unify(child_oid, rule_child, unified)
            if unified is None:
                continue
            yield from self._resolve_step(path, depth + 1, unified,
                                          body + parts.body, is_top=False)
        # Option B: a hanging source subgraph -- the head pattern's value
        # variable absorbs the rest of the condition chain.
        parts_b = self._fresh_parts(path.source)
        for rule_oid, value_var in parts_b.hanging:
            unified = unify(parent_oid, rule_oid, subst)
            if unified is None:
                continue
            suffix = path_pattern(path.steps[depth + 1:], path.leaf)
            absorbed = unify(value_var,
                             SetPatternTerm(SetPattern((suffix,))), unified)
            if absorbed is None:
                continue
            yield absorbed, body + parts_b.body


def compose(candidate: Query, views: Views,
            max_depth: int = 8, *,
            tracer=None, budget=None) -> list[Query]:
    """Compute the composition of *candidate* with *views*.

    Conditions over sources not in *views* pass through unchanged.
    Views may be defined over other views; unfolding repeats (up to
    *max_depth* levels) until only base sources remain.  Returns a union
    of rules over the base sources; an empty list means the candidate is
    unsatisfiable against the view definitions.

    *tracer* records a ``compose`` span counting produced rules and view
    copies; *budget* is ticked once per fresh view copy and may raise
    :class:`~repro.errors.BudgetExceededError`.

    Raises :class:`CompositionError` in the one corner TSL cannot
    express (binding a variable to a set-*constructed* view value), or
    when view definitions are cyclic beyond *max_depth*.
    """
    tracer = tracer or NULL_TRACER
    with tracer.span("compose") as span:
        pending = [normalize(candidate)]
        rules: list[Query] = []
        emitted: set[Query] = set()
        # One resolver (one rename-apart counter) across all levels: a fresh
        # counter per level would reuse ~N suffixes already present in the
        # partially-unfolded rules, and the colliding copies fail the occurs
        # check, silently dropping every deeper resolution.
        counter_start = _copy_counter_start(pending[0], views)
        resolver = _Resolver(views, start=counter_start, budget=budget)
        for _ in range(max_depth):
            if not pending:
                span.add("rules", len(rules))
                span.add("view_copies", resolver._copies - counter_start)
                return rules
            next_pending: list[Query] = []
            for rule in pending:
                for unfolded in _compose_once(rule, views, resolver):
                    if unfolded.sources() & set(views):
                        next_pending.append(unfolded)
                    elif unfolded not in emitted:
                        emitted.add(unfolded)
                        rules.append(unfolded)
            pending = next_pending
        if pending:
            raise CompositionError(
                f"view definitions did not unfold within {max_depth} "
                "levels (cyclic views?)")
        span.add("rules", len(rules))
        span.add("view_copies", resolver._copies - counter_start)
        return rules


def _compose_once(candidate: Query, views: Views,
                  resolver: _Resolver | None = None) -> list[Query]:
    """One level of unfolding of every view condition of *candidate*."""
    candidate = normalize(candidate)
    base_conditions = tuple(c for c in candidate.body
                            if c.source not in views)
    view_paths = [p for p in query_paths(candidate) if p.source in views]
    if not view_paths:
        return [candidate]
    if resolver is None:
        resolver = _Resolver(views,
                             start=_copy_counter_start(candidate, views))
    rules: list[Query] = []
    seen: set[Query] = set()
    for subst, body in resolver.resolve_paths(view_paths, Substitution(),
                                              ()):
        # Apply the final substitution once, to everything: bindings made
        # by later goals must reach view-body copies added earlier.
        full_body = tuple(c.substitute(subst)
                          for c in base_conditions + body)
        rule = normalize(Query(candidate.head.substitute(subst),
                               full_body, name=candidate.name))
        if rule not in seen:
            seen.add(rule)
            rules.append(rule)
    return rules
