"""DataGuides (Goldman & Widom [16]) as a source of structural constraints.

A (strong) DataGuide is a concise structure summary of an OEM database:
every label path of the database occurs exactly once in the guide.  It is
computed by the usual powerset ("NFA determinization") construction over
label paths.

Unlike a DTD, a DataGuide is extracted from an *instance*, so the
constraints it yields (label inference, child-label sets) hold for that
instance; it cannot certify "at most one subobject" cardinalities, so
:meth:`DataGuide.functional_child` is always False and only label
inference benefits.  The module also offers :func:`dtd_from_dataguide`,
which additionally scans the instance for cardinalities to produce a
full :class:`~repro.rewriting.constraints.Dtd`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..logic.terms import Atom
from ..oem.model import OemDatabase, Oid
from .constraints import ChildSpec, Dtd


@dataclass
class DataGuide:
    """A strong DataGuide: a deterministic label-path summary.

    Nodes are integers; node 0 is the synthetic super-root whose children
    are the root labels.  ``extent`` maps each guide node to the set of
    database objects reachable by its label path (the "target set").
    """

    source: str = "db"
    children: dict[int, dict[Atom, int]] = field(default_factory=dict)
    extent: dict[int, frozenset[Oid]] = field(default_factory=dict)
    labels: dict[int, Atom] = field(default_factory=dict)

    # -- structural-constraints protocol -------------------------------------

    def infer_middle_label(self, parent: Atom, child: Atom) -> Atom | None:
        """The unique ``b`` on any instance path ``parent . b . child``."""
        candidates: set[Atom] = set()
        for node in self._nodes_labeled(parent):
            for mid_label, mid_node in self.children.get(node, {}).items():
                if child in self.children.get(mid_node, {}):
                    candidates.add(mid_label)
        if len(candidates) == 1:
            return next(iter(candidates))
        return None

    def only_child_label(self, parent: Atom) -> Atom | None:
        """The unique child label under every *parent* node, if any."""
        labels: set[Atom] = set()
        for node in self._nodes_labeled(parent):
            labels.update(self.children.get(node, {}))
        if len(labels) == 1:
            return next(iter(labels))
        return None

    def functional_child(self, parent: Atom, child: Atom) -> bool:
        """DataGuides summarize existence, not counts -- never certain."""
        return False

    def _nodes_labeled(self, label: Atom) -> list[int]:
        return [node for node, node_label in self.labels.items()
                if node_label == label]

    def node_count(self) -> int:
        return len(self.extent)

    def label_paths(self) -> list[tuple[Atom, ...]]:
        """Every label path of the summarized database, root-down."""
        paths: list[tuple[Atom, ...]] = []

        def walk(node: int, prefix: tuple[Atom, ...]) -> None:
            for label, child in sorted(self.children.get(node, {}).items(),
                                       key=lambda kv: str(kv[0])):
                extended = prefix + (label,)
                paths.append(extended)
                walk(child, extended)

        walk(0, ())
        return paths


def build_dataguide(db: OemDatabase) -> DataGuide:
    """Build the strong DataGuide of *db* by powerset construction."""
    guide = DataGuide(source=db.name)
    guide.children[0] = {}
    guide.extent[0] = frozenset()

    state_ids: dict[frozenset[Oid], int] = {}

    def state_for(oids: frozenset[Oid], label: Atom) -> tuple[int, bool]:
        if oids in state_ids:
            return state_ids[oids], False
        node = len(state_ids) + 1
        state_ids[oids] = node
        guide.extent[node] = oids
        guide.labels[node] = label
        guide.children[node] = {}
        return node, True

    def targets(oids: frozenset[Oid]) -> dict[Atom, frozenset[Oid]]:
        by_label: dict[Atom, set[Oid]] = {}
        for oid in oids:
            for child in db.children(oid):
                by_label.setdefault(db.label(child), set()).add(child)
        return {label: frozenset(kids) for label, kids in by_label.items()}

    root_by_label: dict[Atom, set[Oid]] = {}
    for root in db.roots:
        root_by_label.setdefault(db.label(root), set()).add(root)

    worklist: list[int] = []
    for label, oids in sorted(root_by_label.items(), key=lambda kv: str(kv[0])):
        node, fresh = state_for(frozenset(oids), label)
        guide.children[0][label] = node
        if fresh:
            worklist.append(node)
    while worklist:
        node = worklist.pop()
        for label, oids in sorted(targets(guide.extent[node]).items(),
                                  key=lambda kv: str(kv[0])):
            child, fresh = state_for(oids, label)
            guide.children[node][label] = child
            if fresh:
                worklist.append(child)
    return guide


def dtd_from_dataguide(db: OemDatabase) -> Dtd:
    """Derive instance-level DTD-style constraints, with cardinalities.

    For every label pair (a, b): if every ``a``-labeled object of *db* has
    at most one ``b`` child, record multiplicity "?" (or "1" when always
    exactly one); otherwise "*".  Labels whose objects are all atomic are
    declared atomic.  The result is valid for this instance only.
    """
    child_counts: dict[Atom, dict[Atom, list[int]]] = {}
    atomic_labels: dict[Atom, bool] = {}
    objects_by_label: dict[Atom, int] = {}
    for oid in db.reachable_oids():
        label = db.label(oid)
        objects_by_label[label] = objects_by_label.get(label, 0) + 1
        atomic_labels.setdefault(label, True)
        if db.is_atomic(oid):
            continue
        atomic_labels[label] = False
        per_child: dict[Atom, int] = {}
        for child in db.children(oid):
            child_label = db.label(child)
            per_child[child_label] = per_child.get(child_label, 0) + 1
        for child_label, count in per_child.items():
            child_counts.setdefault(label, {}).setdefault(
                child_label, []).append(count)

    dtd = Dtd(source=db.name)
    for label, is_atomic in sorted(atomic_labels.items(),
                                   key=lambda kv: str(kv[0])):
        if is_atomic:
            dtd.declare_atomic(str(label))
            continue
        specs = []
        for child_label, counts in sorted(
                child_counts.get(label, {}).items(),
                key=lambda kv: str(kv[0])):
            occurrences = len(counts)
            always_present = occurrences == objects_by_label[label]
            at_most_one = max(counts) <= 1
            if at_most_one:
                multiplicity = "1" if always_present else "?"
            else:
                multiplicity = "+" if always_present else "*"
            specs.append(ChildSpec(str(child_label), multiplicity))
        dtd.declare(str(label), specs)
    return dtd
