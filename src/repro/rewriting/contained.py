"""Maximally contained rewritings (Section 7 future work; cf. [10, 9]).

When no *equivalent* rewriting exists -- e.g. the views simply do not
retain enough information -- the next best thing is a rewriting whose
result is **contained** in the query's on every database, and maximal
among such rewritings.  This is the information-integration notion of
[10]: the best obtainable answer given the sources.

The machinery is the same as the equivalence-based algorithm's, with
Step 2 relaxed to a one-directional test: the composition must be
contained in the query (soundness of every returned object), and among
the accepted candidates only the containment-maximal ones are kept.

Containment of unions is decided component-wise, exactly like Theorem
4.2's halves: ``left ⊆ right`` iff every component of ``left`` has a
mapping from some component of ``right``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations
from typing import Iterable, Mapping, Sequence, Union

from ..errors import (BudgetExceededError, ChaseContradictionError,
                      CompositionError)
from ..obs import NULL_TRACER
from ..tsl.ast import Query
from ..tsl.decompose import decompose_program
from ..tsl.normalize import path_to_condition, query_paths
from ..tsl.validate import is_safe
from .chase import StructuralConstraints, chase
from .composition import compose
from ..logic.subst import Substitution
from ..tsl.ast import Condition, fresh_variable_factory
from .equivalence import components_subsumed, prepare_program
from .mappings import body_mappings
from .rewriter import CandidateAtom, _as_view_dict


def programs_contained(left: Iterable[Query], right: Iterable[Query],
                       constraints: StructuralConstraints | None = None
                       ) -> bool:
    """Decide ``left ⊆ right`` (results contained on every database)."""
    left_rules = prepare_program(left, constraints)
    right_rules = prepare_program(right, constraints)
    return components_subsumed(decompose_program(left_rules),
                               decompose_program(right_rules))


def contained_in(candidate: Query, query: Query,
                 constraints: StructuralConstraints | None = None) -> bool:
    """Containment of single rules."""
    return programs_contained([candidate], [query], constraints)


def partial_view_instantiations(
        target: Query, views: Mapping[str, Query],
        constraints: StructuralConstraints | None = None, *,
        budget=None) -> list[CandidateAtom]:
    """Candidate view accesses for *contained* rewritings.

    Unlike the equivalence case (Lemma 5.1), a view is relevant whenever
    any non-empty *subset* of its body maps into the query body -- the
    unmapped conditions only narrow the composition, which containment
    tolerates.  Unmapped view variables are renamed fresh so they cannot
    accidentally join with the query's variables.
    """
    atoms: list[CandidateAtom] = []
    seen: set[Condition] = set()
    taken = set(target.all_variables())
    fresh = fresh_variable_factory(taken, stem="U")
    for name in sorted(views):
        view = chase(views[name], constraints, budget=budget)
        view_paths = query_paths(view)
        indices = range(len(view_paths))
        for size in range(1, len(view_paths) + 1):
            for subset in combinations(indices, size):
                chosen = [view_paths[i] for i in subset]
                for subst in body_mappings(chosen, query_paths(target),
                                           budget=budget):
                    unmapped = {
                        v: fresh() for v in view.all_variables()
                        if v not in subst}
                    full = subst.compose(Substitution(unmapped))
                    condition = Condition(view.head.substitute(full), name)
                    if condition not in seen:
                        seen.add(condition)
                        atoms.append(CandidateAtom(
                            condition, frozenset(), name))
    return atoms


@dataclass
class ContainedRewriting:
    """A rewriting whose composition is contained in the query."""

    query: Query
    composition: list[Query]
    views_used: frozenset[str]
    is_equivalent: bool

    def __str__(self) -> str:
        flavor = "equivalent" if self.is_equivalent else "contained"
        return f"[{flavor}] {self.query}"


@dataclass
class ContainedResult:
    """Outcome of :func:`maximally_contained_rewritings`."""

    rewritings: list[ContainedRewriting] = field(default_factory=list)
    candidates_tested: int = 0
    truncated: bool = False
    stop_reason: str | None = None

    def __len__(self) -> int:
        return len(self.rewritings)

    def __iter__(self):
        return iter(self.rewritings)


def maximally_contained_rewritings(
        query: Query,
        views: Union[Mapping[str, Query], Sequence[Query]],
        constraints: StructuralConstraints | None = None,
        total_only: bool = True, *,
        tracer=None, budget=None) -> ContainedResult:
    """Find the maximally contained rewritings of *query* using *views*.

    Every returned rewriting is sound (its composition is contained in
    the query); none is strictly contained in another returned one.  When
    an equivalent rewriting exists it is returned (it dominates), flagged
    ``is_equivalent``.  A *budget* expiry stops the search; the
    rewritings accepted so far go through the maximality filter and are
    returned with ``truncated=True``.
    """
    tracer = tracer or NULL_TRACER
    views = _as_view_dict(views)
    result = ContainedResult()
    accepted: list[tuple[ContainedRewriting, list[Query]]] = []
    with tracer.span("contained_rewrite",
                     query=query.name or str(query.head)) as span:
        try:
            _contained_search(query, views, constraints, total_only,
                              result, accepted, tracer, budget)
        except BudgetExceededError as exc:
            result.truncated = True
            result.stop_reason = exc.reason or "budget"
            span.set("truncated", result.stop_reason)
        with tracer.span("keep_maximal"):
            result.rewritings = _keep_maximal(accepted, constraints)
        span.add("candidates_tested", result.candidates_tested)
        span.add("rewritings", len(result.rewritings))
    return result


def _contained_search(query: Query, views: Mapping[str, Query],
                      constraints: StructuralConstraints | None,
                      total_only: bool, result: ContainedResult,
                      accepted: list, tracer, budget) -> None:
    """The relaxed Step-2 search loop, accumulating into *accepted*."""
    prepared = prepare_program([query], constraints, budget=budget)
    if not prepared:
        return  # contradictory query: the empty answer is maximal
    target = prepared[0]
    target_paths = query_paths(target)
    k = len(target_paths)

    with tracer.span("enumerate_mappings"):
        atoms = partial_view_instantiations(target, views, constraints,
                                            budget=budget)
    if not total_only:
        atoms.extend(
            CandidateAtom(path_to_condition(path), frozenset([i]), None)
            for i, path in enumerate(target_paths))

    for size in range(1, k + 1):
        for combo in combinations(range(len(atoms)), size):
            if budget is not None:
                budget.tick()
            chosen = [atoms[i] for i in combo]
            if not any(atom.is_view for atom in chosen):
                continue
            body = tuple(atom.condition for atom in chosen)
            candidate = Query(target.head, body, name=query.name)
            if not is_safe(candidate):
                continue
            result.candidates_tested += 1
            with tracer.span("candidate",
                             index=result.candidates_tested - 1):
                try:
                    candidate = chase(candidate, constraints,
                                      tracer=tracer, budget=budget)
                    composed = compose(candidate, views, tracer=tracer,
                                       budget=budget)
                except (ChaseContradictionError, CompositionError):
                    continue
                composed = prepare_program(composed, constraints,
                                           minimize_rules=True,
                                           budget=budget)
                if not composed:
                    continue  # empty composition: contributes nothing
                if not programs_contained(composed, [target], constraints):
                    continue
                equivalent = programs_contained([target], composed,
                                                constraints)
            accepted.append((ContainedRewriting(
                candidate, composed, frozenset(
                    c.source for c in candidate.body if c.source in views),
                equivalent), composed))


def _keep_maximal(accepted, constraints) -> list[ContainedRewriting]:
    """Drop rewritings strictly contained in another accepted one."""
    maximal: list[ContainedRewriting] = []
    for index, (rewriting, composed) in enumerate(accepted):
        dominated = False
        for other_index, (unused_other, other_composed) in \
                enumerate(accepted):
            if index == other_index:
                continue
            covers = programs_contained(composed, other_composed,
                                        constraints)
            covered_back = programs_contained(other_composed, composed,
                                              constraints)
            if covers and not covered_back:
                dominated = True  # strictly smaller than the other
                break
            if covers and covered_back and other_index < index:
                dominated = True  # equal: keep the first representative
                break
        if not dominated:
            maximal.append(rewriting)
    return maximal
