"""The chase, extended for set variables (Section 3.2).

Object identity induces a key dependency in OEM: the object id determines
the label and the value.  The rewriting algorithm chases queries with this
dependency so that, e.g., (Q11) -- whose second condition binds a *set
variable* ``V`` -- is transformed into (Q10), where ``V`` has become the
set pattern ``{<X Y Z>}`` with fresh variables (Example 3.4).

The implementation works on normal-form queries and applies, to a
fixpoint, the six rules of Section 3.2 plus the "regular" chase for
labeled functional dependencies inferred from structural constraints
(Section 3.3), and label inference.

Chasing can fail: equating two distinct constants means the query has an
empty result on every database satisfying the key dependency
(:class:`ChaseContradictionError`).

Termination relies on the absence of cyclic object patterns (validated by
:mod:`repro.tsl.validate`): each oid term can trigger the set-variable
expansion at most once, and every other rule eliminates a variable or a
path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

from ..errors import ChaseContradictionError
from ..logic.subst import Substitution
from ..logic.terms import Atom, Constant, Term, Variable
from ..logic.unify import unify
from ..obs import NULL_TRACER
from ..tsl.ast import (Query, SetPattern, SetPatternTerm,
                       fresh_variable_factory)
from ..tsl.normalize import Path, normalize, path_to_condition, query_paths


class StructuralConstraints(Protocol):
    """What the chase needs to know from a structural description (§3.3).

    Implementations: :class:`repro.rewriting.constraints.Dtd` and
    :class:`repro.rewriting.dataguide.DataGuide`.
    """

    source: str

    def infer_middle_label(self, parent: Atom, child: Atom) -> Atom | None:
        """Label inference for ``parent . ? . child`` -- the unique middle."""

    def only_child_label(self, parent: Atom) -> Atom | None:
        """The unique possible child label of *parent*, if any."""

    def functional_child(self, parent: Atom, child: Atom) -> bool:
        """True when a *parent* object has at most one *child* subobject."""


@dataclass(frozen=True, slots=True)
class _Occurrence:
    """One object-pattern occurrence inside a path."""

    path_index: int
    depth: int                 # 0-based step index
    oid: Term
    label: Term
    has_child: bool            # a nested pattern follows in this path
    leaf: object | None        # PatternValue when this is the last step


def _occurrences(paths: list[Path]) -> list[_Occurrence]:
    out: list[_Occurrence] = []
    for index, path in enumerate(paths):
        last = len(path.steps) - 1
        for depth, (oid, label) in enumerate(path.steps):
            if depth < last:
                out.append(_Occurrence(index, depth, oid, label, True, None))
            else:
                out.append(_Occurrence(index, depth, oid, label, False,
                                       path.leaf))
    return out


def _unify_or_fail(left: Term, right: Term, what: str) -> Substitution | None:
    """Unify two field terms; None if already equal; raise on clash."""
    if left == right:
        return None
    result = unify(left, right)
    if result is None:
        raise ChaseContradictionError(
            f"chase equated conflicting {what}: {left} vs {right}")
    return result


def _rebuild(query: Query, paths: list[Path]) -> Query:
    return Query(query.head, tuple(path_to_condition(p) for p in paths),
                 name=query.name)


def _key_dependency_step(query: Query,
                         paths: list[Path]) -> Query | None:
    """One application of the oid key-dependency rules; None at fixpoint."""
    occurrences = _occurrences(paths)
    groups: dict[Term, list[_Occurrence]] = {}
    for occ in occurrences:
        groups.setdefault(occ.oid, []).append(occ)

    fresh = fresh_variable_factory(query.all_variables())
    for oid, group in groups.items():
        if len(group) < 2:
            continue
        first = group[0]
        # Rule: labels must agree (bind variables, reject constant clashes).
        for other in group[1:]:
            subst = _unify_or_fail(first.label, other.label,
                                   f"labels of oid {oid}")
            if subst is not None:
                return normalize(query.substitute(subst))
        # Rule: values must agree.
        set_evidence = any(occ.has_child for occ in group)
        empty_evidence = any(
            not occ.has_child and isinstance(occ.leaf, SetPattern)
            for occ in group)
        leaf_terms = [occ.leaf for occ in group
                      if not occ.has_child and isinstance(occ.leaf, Term)]
        for leaf in leaf_terms:
            if isinstance(leaf, Constant) and (set_evidence or empty_evidence):
                raise ChaseContradictionError(
                    f"object {oid} is both atomic ({leaf}) and a set")
        if set_evidence:
            # Set-variable extension: a value variable on an oid known to
            # have a subobject becomes the pattern {<X Y Z>}, X, Y, Z fresh.
            for leaf in leaf_terms:
                if isinstance(leaf, Variable):
                    replacement = SetPatternTerm(SetPattern((
                        _fresh_pattern(fresh),)))
                    subst = Substitution({leaf: replacement})
                    return normalize(query.substitute(subst))
        # Rule: two term-valued occurrences unify.
        for other_leaf in leaf_terms[1:]:
            subst = _unify_or_fail(leaf_terms[0], other_leaf,
                                   f"values of oid {oid}")
            if subst is not None:
                return normalize(query.substitute(subst))
    return None


def _fresh_pattern(fresh) -> "object":
    from ..tsl.ast import ObjectPattern
    return ObjectPattern(fresh(), fresh(), fresh())


def _saturate_unions(paths: list[Path]) -> list[Path]:
    """Rule 3 of Section 3.2 under normal form: union shared set values.

    When the same oid term occurs in two paths, the object's set value is
    the union of what both paths assert below it; in normal form this
    materializes as *grafting* each path's continuation onto every prefix
    that reaches the shared oid.  Without this, the path-into-path mapping
    test cannot recombine facts contributed through different prefixes
    (the fusion-spread bodies that compositions produce).

    Incremental worklist: each path registers, per shared-oid key, its
    prefixes and continuations; a *new* prefix grafts every continuation
    already at that key and a *new* continuation grafts onto every
    prefix, so no pair is re-examined once processed (the legacy
    :func:`_saturate_unions_legacy` recomputed all occurrences from
    scratch every sweep).  Grafted paths join the worklist, so the
    result is the same closure; output order is insertion order, which
    -- unlike the legacy set-iteration -- is deterministic across
    processes.

    Terminates because paths are acyclic over a finite step alphabet.
    """
    seen = set(paths)
    ordered = list(paths)
    # (source, oid term) -> insertion-ordered prefix / continuation sets.
    prefixes: dict[tuple[str, Term], dict[tuple, None]] = {}
    suffixes: dict[tuple[str, Term], dict[tuple, None]] = {}
    position = 0
    while position < len(ordered):
        path = ordered[position]
        position += 1
        steps = path.steps
        last = len(steps) - 1
        for depth in range(len(steps)):
            key = (path.source, steps[depth][0])
            key_prefixes = prefixes.setdefault(key, {})
            key_suffixes = suffixes.setdefault(key, {})
            grafts: list[Path] = []
            prefix = steps[:depth + 1]
            if prefix not in key_prefixes:
                key_prefixes[prefix] = None
                for suffix_steps, leaf in key_suffixes:
                    grafts.append(Path(prefix + suffix_steps, leaf,
                                       path.source))
            if depth < last:
                suffix = (steps[depth + 1:], path.leaf)
                if suffix not in key_suffixes:
                    key_suffixes[suffix] = None
                    for existing in key_prefixes:
                        grafts.append(Path(existing + suffix[0],
                                           path.leaf, path.source))
            for grafted in grafts:
                if grafted not in seen:
                    seen.add(grafted)
                    ordered.append(grafted)
    return ordered


def _saturate_unions_legacy(paths: list[Path]) -> list[Path]:
    """Sweep-until-stable reference implementation (same closure)."""
    seen = set(paths)
    ordered = list(paths)
    changed = True
    while changed:
        changed = False
        occurrences: list[tuple[Path, int]] = [
            (path, depth)
            for path in ordered
            for depth in range(len(path.steps))]
        by_oid: dict[tuple[str, Term], list[tuple[Path, int]]] = {}
        for path, depth in occurrences:
            key = (path.source, path.steps[depth][0])
            by_oid.setdefault(key, []).append((path, depth))
        for group in by_oid.values():
            if len(group) < 2:
                continue
            # Graft every continuation below the shared oid onto every
            # prefix reaching it.
            prefixes = {path.steps[:depth + 1] for path, depth in group}
            for path, depth in group:
                if depth == len(path.steps) - 1:
                    continue  # leaf occurrence: nothing to graft
                suffix = path.steps[depth + 1:]
                for prefix in prefixes:
                    grafted = Path(prefix + suffix, path.leaf, path.source)
                    if grafted not in seen:
                        seen.add(grafted)
                        ordered.append(grafted)
                        changed = True
    return ordered


def _drop_subsumed_empty_paths(paths: list[Path]) -> list[Path]:
    """Drop a ``{}``-leaf path whose steps are a prefix of a longer path.

    This realizes rule 3 (set-value union) under normal form: the union of
    ``{}`` with a non-empty set pattern is the non-empty one.  One pass
    collects every proper step-prefix; membership replaces the legacy
    all-pairs scan.
    """
    proper_prefixes: set[tuple[str, tuple]] = set()
    for path in paths:
        for depth in range(1, len(path.steps)):
            proper_prefixes.add((path.source, path.steps[:depth]))
    return [path for path in paths
            if not (isinstance(path.leaf, SetPattern)
                    and (path.source, path.steps) in proper_prefixes)]


def _drop_subsumed_empty_paths_legacy(paths: list[Path]) -> list[Path]:
    """All-pairs reference implementation (same kept set)."""
    kept: list[Path] = []
    for path in paths:
        if isinstance(path.leaf, SetPattern):
            subsumed = any(
                other is not path
                and other.source == path.source
                and len(other.steps) > len(path.steps)
                and other.steps[:len(path.steps)] == path.steps
                for other in paths)
            if subsumed:
                continue
        kept.append(path)
    return kept


def _label_inference_step(query: Query, paths: list[Path],
                          constraints: StructuralConstraints) -> Query | None:
    """Bind every inferable variable label in one batch (Section 3.3).

    Produces the same binding *sequence* as the one-at-a-time legacy
    rule -- scan from the top, fire the first inferable position, rescan
    -- but tracks fired bindings in a local map instead of substituting
    and re-normalizing the whole query per binding, then applies them
    with a single substitute/normalize.  Sound to batch: the chase only
    reaches label inference with the key dependency at fixpoint, and
    binding a label variable to a constant cannot wake the key rules
    (labels of a shared oid are already unified, values are untouched).
    """
    bindings: dict[Variable, Constant] = {}

    def resolve(term: Term) -> Term:
        return bindings.get(term, term) if isinstance(term, Variable) \
            else term

    changed = True
    while changed:
        changed = False
        for path in paths:
            if path.source != constraints.source:
                continue
            steps = path.steps
            for depth in range(len(steps)):
                label = resolve(steps[depth][1])
                if not isinstance(label, Variable):
                    continue
                inferred = None
                if depth > 0:
                    parent_label = resolve(steps[depth - 1][1])
                    if isinstance(parent_label, Constant):
                        if depth + 1 < len(steps):
                            child_label = resolve(steps[depth + 1][1])
                            if isinstance(child_label, Constant):
                                inferred = constraints.infer_middle_label(
                                    parent_label.value, child_label.value)
                        if inferred is None:
                            inferred = constraints.only_child_label(
                                parent_label.value)
                if inferred is not None:
                    bindings[label] = Constant(inferred)
                    changed = True
                    break
            if changed:
                break
    if not bindings:
        return None
    return normalize(query.substitute(Substitution(bindings)))


def _label_inference_step_legacy(query: Query, paths: list[Path],
                                 constraints: StructuralConstraints
                                 ) -> Query | None:
    """Bind one inferable variable label (Section 3.3); None at fixpoint."""
    for path in paths:
        if path.source != constraints.source:
            continue
        for depth, (unused_oid, label) in enumerate(path.steps):
            if not isinstance(label, Variable):
                continue
            inferred = None
            if depth > 0:
                parent_label = path.steps[depth - 1][1]
                if isinstance(parent_label, Constant):
                    if depth + 1 < len(path.steps):
                        child_label = path.steps[depth + 1][1]
                        if isinstance(child_label, Constant):
                            inferred = constraints.infer_middle_label(
                                parent_label.value, child_label.value)
                    if inferred is None:
                        inferred = constraints.only_child_label(
                            parent_label.value)
            if inferred is not None:
                subst = Substitution({label: Constant(inferred)})
                return normalize(query.substitute(subst))
    return None


def _labeled_fd_step(query: Query, paths: list[Path],
                     constraints: StructuralConstraints) -> Query | None:
    """One application of the regular chase on labeled FDs; None at fixpoint.

    When objects labeled ``a`` have at most one subobject labeled ``b``,
    the functional dependency ``X_a -> Y_b`` holds: two ``b``-children of
    the same ``a``-parent occurrence must be the same object.
    """
    children: dict[tuple[Term, Atom], Term] = {}
    for path in paths:
        if path.source != constraints.source:
            continue
        for depth in range(len(path.steps) - 1):
            parent_oid, parent_label = path.steps[depth]
            child_oid, child_label = path.steps[depth + 1]
            if not (isinstance(parent_label, Constant)
                    and isinstance(child_label, Constant)):
                continue
            if not constraints.functional_child(parent_label.value,
                                                child_label.value):
                continue
            key = (parent_oid, child_label.value)
            existing = children.setdefault(key, child_oid)
            if existing != child_oid:
                subst = _unify_or_fail(existing, child_oid,
                                       f"oids under FD {parent_label}->"
                                       f"{child_label}")
                if subst is not None:
                    return normalize(query.substitute(subst))
    return None


def chase(query: Query,
          constraints: StructuralConstraints | None = None,
          max_steps: int = 10_000, *,
          tracer=None, budget=None, legacy: bool = False) -> Query:
    """Chase *query* to a fixpoint; raises on contradiction.

    Applies, interleaved until none fires: the oid key-dependency rules
    (including the set-variable extension), label inference, and the
    labeled-FD chase from *constraints* when given.  *tracer* records a
    ``chase`` span with an iteration counter; *budget* is ticked once
    per fixpoint iteration and may raise
    :class:`~repro.errors.BudgetExceededError`.

    ``legacy=True`` selects the one-binding-per-iteration /
    sweep-until-stable reference implementations of label inference and
    union saturation -- same fixpoint, quadratically more rebuild work;
    kept for differential benchmarking (``bench_chase``) and as the
    provenance of the fast kernels.
    """
    tracer = tracer or NULL_TRACER
    with tracer.span("chase") as span:
        current = normalize(query)
        for iteration in range(max_steps):
            if budget is not None:
                budget.tick()
            paths = query_paths(current)
            stepped = _key_dependency_step(current, paths)
            if stepped is None and constraints is not None:
                if legacy:
                    stepped = _label_inference_step_legacy(
                        current, paths, constraints)
                else:
                    stepped = _label_inference_step(
                        current, paths, constraints)
                if stepped is None:
                    stepped = _labeled_fd_step(current, paths, constraints)
            if stepped is None:
                if legacy:
                    saturated = _saturate_unions_legacy(paths)
                    reduced = _drop_subsumed_empty_paths_legacy(saturated)
                else:
                    saturated = _saturate_unions(paths)
                    reduced = _drop_subsumed_empty_paths(saturated)
                if set(reduced) != set(paths):
                    current = _rebuild(current, reduced)
                    continue
                span.add("iterations", iteration + 1)
                return current
            current = stepped
        raise ChaseContradictionError(
            f"chase did not terminate within {max_steps} steps "
            "(is the query acyclic?)")
