"""EXPLAIN provenance for the rewriting search: *why* each decision.

The stats counters of :class:`~repro.rewriting.rewriter.RewriteStats`
say *that* candidates were pruned; production deployments (and the
paper's own worked examples -- 3.3 and 3.5 turn on whether a structural
constraint makes a rewriting exist) need to know *why this one*.  An
:class:`Explanation` is a structured decision log the rewriter fills in
when asked (``rewrite(..., explain=Explanation())``):

* per view, every containment mapping **found** (substitution + covered
  conditions) or the **refutation obstacle** (the first failing
  condition/label) when none exists;
* the candidate atoms that survive duplicate merging;
* per enumerated candidate, its conjunction and a machine-readable
  **verdict**: ``accepted``, a prune reason (``pruned-heuristic`` /
  ``pruned-unsafe`` / ``pruned-subsumed`` / ``skipped-max-candidates``),
  or the chase -> compose -> equivalence failure including the graph
  component (top / member / object rule) on which equivalence failed.

Explanations render as text (:meth:`Explanation.render_text`) and JSON
(:meth:`Explanation.to_json`); ``python -m repro explain`` exposes both.
:class:`~repro.rewriting.session.RewriteSession` memoizes explanations
alongside results, so a warm-session run replays the cached decision log
byte-for-byte (tagged ``memo="hit"`` outside the JSON payload, which
keeps memoized and unmemoized JSON identical).

Recording is strictly opt-in: with ``explain=None`` (the default) the
rewriter takes the pre-existing code path and builds none of this.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Explanation", "MappingEvent", "CandidateEvent", "VERDICTS",
           "EXPLAIN_SCHEMA_VERSION"]

#: Bumped when the JSON layout changes incompatibly.
EXPLAIN_SCHEMA_VERSION = 1

#: Every verdict a candidate can receive.  ``pruned-signature`` is a
#: Step 1A verdict (a whole view skipped by the label-signature
#: pre-filter before mapping enumeration); the rest are per-candidate.
VERDICTS = ("accepted", "pruned-heuristic", "pruned-unsafe",
            "pruned-subsumed", "skipped-max-candidates", "failed-chase",
            "failed-composition", "failed-equivalence",
            "pruned-signature")


@dataclass(frozen=True, slots=True)
class MappingEvent:
    """One Step 1A outcome: a containment mapping found, or the refutation.

    ``found`` events carry the substitution and the covered target-path
    indices; refutations carry ``obstacle`` -- the first failing
    condition/label of the mapping search.  A view the label-signature
    pre-filter skipped *without* enumerating anything carries
    ``verdict="pruned-signature"`` (serialized only when set, so logs
    from runs without the pre-filter are byte-identical to before).
    """

    view: str
    found: bool
    substitution: str | None = None
    covers: tuple[int, ...] | None = None
    obstacle: str | None = None
    verdict: str | None = None

    def to_json(self) -> dict:
        payload: dict = {"view": self.view, "found": self.found}
        if self.found:
            payload["substitution"] = self.substitution
            payload["covers"] = list(self.covers or ())
        else:
            payload["obstacle"] = self.obstacle
        if self.verdict is not None:
            payload["verdict"] = self.verdict
        return payload


@dataclass(frozen=True, slots=True)
class CandidateEvent:
    """One enumerated candidate and the decision the search made on it."""

    index: int                      # enumeration order (0-based)
    conditions: tuple[str, ...]     # the conjunction, printable
    views: tuple[str, ...]          # views the conjunction instantiates
    verdict: str                    # one of VERDICTS
    reason: str | None = None       # human-readable detail
    detail: tuple[tuple[str, str], ...] = ()   # machine-readable extras

    def to_json(self) -> dict:
        return {"index": self.index,
                "conditions": list(self.conditions),
                "views": list(self.views),
                "verdict": self.verdict,
                "reason": self.reason,
                "detail": dict(self.detail)}


@dataclass
class Explanation:
    """The full decision log of one ``rewrite()`` run.

    Create one empty and pass it as ``rewrite(..., explain=...)``; the
    rewriter populates it in place.  ``memo`` is ``"hit"`` when the log
    was replayed from a session memo; it is deliberately *not* part of
    :meth:`to_json`, so memoized and unmemoized runs produce identical
    JSON.
    """

    query: str = ""
    views: dict = field(default_factory=dict)
    constraints: str | None = None
    flags: dict = field(default_factory=dict)
    mappings: list = field(default_factory=list)
    atoms: list = field(default_factory=list)
    candidates: list = field(default_factory=list)
    rewritings: list = field(default_factory=list)
    truncated: bool = False
    stop_reason: str | None = None
    memo: str | None = None

    # -- recording hooks (called by the rewriter) ---------------------------

    def begin(self, query, views, constraints, flags: dict) -> None:
        from ..tsl.printer import print_query
        self.query = print_query(query)
        self.views = {name: print_query(view)
                      for name, view in sorted(views.items())}
        self.constraints = getattr(constraints, "source", None) \
            if constraints is not None else None
        self.flags = dict(flags)

    def mapping_found(self, view: str, substitution, covers) -> None:
        self.mappings.append(MappingEvent(
            view=view, found=True, substitution=str(substitution),
            covers=tuple(sorted(covers))))

    def mapping_refuted(self, view: str, obstacle: str) -> None:
        self.mappings.append(MappingEvent(
            view=view, found=False, obstacle=obstacle))

    def view_pruned(self, view: str, obstacle: str) -> None:
        """The signature pre-filter skipped *view* before Step 1A."""
        self.mappings.append(MappingEvent(
            view=view, found=False, obstacle=obstacle,
            verdict="pruned-signature"))

    def atom(self, condition, view: str | None, covers,
             merged_from: int = 1) -> None:
        self.atoms.append({"condition": str(condition), "view": view,
                           "covers": sorted(covers),
                           "merged_mappings": merged_from})

    def candidate(self, index: int, conditions, views, verdict: str,
                  reason: str | None = None,
                  detail: dict | None = None) -> None:
        assert verdict in VERDICTS, verdict
        self.candidates.append(CandidateEvent(
            index=index,
            conditions=tuple(str(c) for c in conditions),
            views=tuple(views),
            verdict=verdict,
            reason=reason,
            detail=tuple(sorted((detail or {}).items()))))

    def finish(self, result) -> None:
        from ..tsl.printer import print_query
        self.rewritings = [print_query(r.query) for r in result.rewritings]
        self.truncated = result.stats.truncated
        self.stop_reason = result.stats.stop_reason

    # -- memo plumbing ------------------------------------------------------

    def snapshot(self) -> "Explanation":
        """An independent copy safe to keep in a memo table."""
        copy = Explanation(
            query=self.query, views=dict(self.views),
            constraints=self.constraints, flags=dict(self.flags),
            mappings=list(self.mappings),
            atoms=[dict(a) for a in self.atoms],
            candidates=list(self.candidates),
            rewritings=list(self.rewritings),
            truncated=self.truncated, stop_reason=self.stop_reason)
        return copy

    def replay(self, stored: "Explanation") -> None:
        """Overwrite this log with a memoized one, tagged ``memo="hit"``."""
        restored = stored.snapshot()
        self.query = restored.query
        self.views = restored.views
        self.constraints = restored.constraints
        self.flags = restored.flags
        self.mappings = restored.mappings
        self.atoms = restored.atoms
        self.candidates = restored.candidates
        self.rewritings = restored.rewritings
        self.truncated = restored.truncated
        self.stop_reason = restored.stop_reason
        self.memo = "hit"

    # -- renderers ----------------------------------------------------------

    def verdict_counts(self) -> dict:
        counts: dict[str, int] = {}
        for event in self.candidates:
            counts[event.verdict] = counts.get(event.verdict, 0) + 1
        return counts

    def to_json(self) -> dict:
        """Machine-readable form (identical for memoized replays)."""
        return {
            "schema_version": EXPLAIN_SCHEMA_VERSION,
            "query": self.query,
            "views": dict(self.views),
            "constraints": self.constraints,
            "flags": dict(self.flags),
            "mappings": [m.to_json() for m in self.mappings],
            "atoms": [dict(a) for a in self.atoms],
            "candidates": [c.to_json() for c in self.candidates],
            "rewritings": list(self.rewritings),
            "truncated": self.truncated,
            "stop_reason": self.stop_reason,
        }

    def render_text(self) -> str:
        """The terminal-friendly report (``repro explain`` default)."""
        lines: list[str] = []
        lines.append(f"query: {self.query}")
        for name, view in self.views.items():
            lines.append(f"view {name}: {view}")
        if self.constraints is not None:
            lines.append(f"constraints: structural constraints over "
                         f"source {self.constraints!r}")
        if self.memo is not None:
            lines.append(f"memo: {self.memo} (explanation replayed from "
                         "the session cache)")
        lines.append("")
        lines.append("step 1A -- containment mappings:")
        if not self.mappings:
            lines.append("  (none recorded)")
        for event in self.mappings:
            if event.found:
                covers = ", ".join(map(str, event.covers or ()))
                lines.append(f"  {event.view}: mapping {event.substitution}"
                             f" covers condition(s) [{covers}]")
            elif event.verdict == "pruned-signature":
                lines.append(f"  {event.view}: pruned (signature) -- "
                             f"{event.obstacle}")
            else:
                lines.append(f"  {event.view}: refuted -- {event.obstacle}")
        lines.append("")
        lines.append(f"candidate atoms ({len(self.atoms)}):")
        for atom in self.atoms:
            origin = f"view {atom['view']}" if atom["view"] else "original"
            merged = ""
            if atom.get("merged_mappings", 1) > 1:
                merged = (f" (merged from {atom['merged_mappings']} "
                          "mappings)")
            lines.append(f"  {atom['condition']}  [{origin}, covers "
                         f"{atom['covers']}{merged}]")
        lines.append("")
        counts = self.verdict_counts()
        summary = ", ".join(f"{v}={n}" for v, n in sorted(counts.items()))
        lines.append(f"candidates ({len(self.candidates)}; {summary}):")
        for event in self.candidates:
            conjunction = " AND ".join(event.conditions)
            lines.append(f"  #{event.index} {{{conjunction}}}")
            if event.reason:
                lines.append(f"      -> {event.verdict}: {event.reason}")
            else:
                lines.append(f"      -> {event.verdict}")
        lines.append("")
        if self.truncated:
            lines.append(f"search truncated ({self.stop_reason}); the "
                         "decisions above cover the explored prefix")
        lines.append(f"rewritings ({len(self.rewritings)}):")
        for rewriting in self.rewritings:
            lines.append(f"  {rewriting}")
        return "\n".join(lines)
