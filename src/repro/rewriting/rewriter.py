"""The general query rewriting algorithm (Section 3.4).

Given a TSL query ``Q`` with ``k`` single-path conditions and TSL views
``V = {V1..Vn}``:

* **Step 1A** -- find every containment mapping from each view body into
  the body of ``Q`` (:mod:`repro.rewriting.mappings`).
* **Step 1B** -- construct candidate rewriting queries: ``head(Q)`` plus
  any safe conjunction of at most ``k`` conditions, each either a view
  instantiation ``θ(head(Vi))`` or an original condition of ``Q``, with
  at least one view.
* **Step 1C** -- label inference and chase on each candidate.
* **Step 2** -- compose each candidate with the views, chase the
  composition, and keep the candidate iff the composition is equivalent
  to ``Q`` (Section 4).

The covering heuristic ("only construct candidates whose views and
conditions cover all the conditions of Q") prunes the exponential
candidate space without losing rewritings; it is on by default and can be
disabled to measure its effect (benchmark E6).

The algorithm is sound (Step 2 is a correctness test) and complete for
TSL without structural constraints (Theorem 5.5); with constraints it
remains sound.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from itertools import combinations
from typing import Mapping, Sequence, Union

from ..errors import (BudgetExceededError, ChaseContradictionError,
                      CompositionError, RewritingError)
from ..obs import NULL_TRACER
from ..obs.metrics import PHASE_SECONDS
from ..tsl.ast import Condition, Query
from ..tsl.normalize import normalize, path_to_condition, query_paths
from ..tsl.validate import is_safe
from .canon import program_key
from .chase import StructuralConstraints, chase
from .composition import compose
from .equivalence import (equivalence_obstacle, minimize, prepare_program,
                          programs_equivalent)
from .index import IndexStats, PathIndex
from .mappings import Mapping as ContainmentMapping
from .mappings import find_mappings, mapping_obstacle

class _PhaseTimer:
    """Times a pipeline phase into ``phase.seconds{phase=...}``.

    Constructed only when a metrics registry is in play, so the default
    (``metrics=None``) path never allocates or reads the clock.
    Observes on exit even when the phase raises (budget expiry,
    chase contradictions): a truncated phase still spent its time.
    """

    __slots__ = ("_metrics", "_phase", "_start")

    def __init__(self, metrics, phase: str) -> None:
        self._metrics = metrics
        self._phase = phase

    def __enter__(self) -> "_PhaseTimer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._metrics.observe(PHASE_SECONDS,
                              time.perf_counter() - self._start,
                              labels={"phase": self._phase})
        return False


class _NullTimer:
    __slots__ = ()

    def __enter__(self) -> "_NullTimer":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_TIMER = _NullTimer()


def _phase(metrics, phase: str):
    return _NULL_TIMER if metrics is None else _PhaseTimer(metrics, phase)


@dataclass(frozen=True, slots=True)
class CandidateAtom:
    """One buildable condition: a view instantiation or an original one."""

    condition: Condition
    covers: frozenset[int]
    view: str | None  # view name, or None for an original condition

    @property
    def is_view(self) -> bool:
        return self.view is not None


@dataclass
class Rewriting:
    """An accepted rewriting query and its correctness evidence."""

    query: Query
    composition: list[Query]
    views_used: frozenset[str]

    def __str__(self) -> str:
        return str(self.query)


@dataclass
class RewriteStats:
    """Counters describing one rewriter run (feeds the benchmarks).

    ``truncated`` is True when the search stopped before exhausting the
    candidate space -- via ``max_candidates``, a wall-clock deadline, or
    a step budget -- in which case ``stop_reason`` names the cause
    (``"max_candidates"``, ``"deadline"``, or ``"steps"``) and the
    accumulated rewritings are a sound but possibly incomplete set.
    """

    mappings: int = 0
    views_pruned_signature: int = 0
    index_hits: int = 0
    index_skips: int = 0
    candidates_enumerated: int = 0
    candidates_tested: int = 0
    candidates_pruned_by_heuristic: int = 0
    candidates_pruned_unsafe: int = 0
    candidates_pruned_subsumed: int = 0
    candidates_pruned_duplicate: int = 0
    candidates_failed_chase: int = 0
    candidates_failed_composition: int = 0
    composition_rules: int = 0
    rewritings: int = 0
    truncated: bool = False
    stop_reason: str | None = None

    def to_json(self) -> dict:
        return {f.name: getattr(self, f.name)
                for f in self.__dataclass_fields__.values()}


@dataclass
class RewriteResult:
    """Everything a rewriter run produced."""

    rewritings: list[Rewriting] = field(default_factory=list)
    stats: RewriteStats = field(default_factory=RewriteStats)

    @property
    def queries(self) -> list[Query]:
        return [r.query for r in self.rewritings]

    @property
    def truncated(self) -> bool:
        """True when the search stopped early (results may be incomplete)."""
        return self.stats.truncated

    def __iter__(self):
        return iter(self.rewritings)

    def __len__(self) -> int:
        return len(self.rewritings)


def _as_view_dict(views: Union[Mapping[str, Query], Sequence[Query]]
                  ) -> dict[str, Query]:
    if isinstance(views, Mapping):
        return dict(views)
    out: dict[str, Query] = {}
    for index, view in enumerate(views):
        name = view.name or f"V{index + 1}"
        if name in out:
            raise RewritingError(f"duplicate view name {name!r}")
        out[name] = view
    return out


def view_instantiations(query: Query, views: Mapping[str, Query],
                        constraints: StructuralConstraints | None = None,
                        *, tracer=None, budget=None,
                        session=None, explain=None,
                        signature_index=None,
                        signature_prefilter: bool = False,
                        path_index: bool = True,
                        stats: "RewriteStats | None" = None
                        ) -> list[CandidateAtom]:
    """Step 1A: mappings from each view body into body(Q), as atoms.

    Each mapping ``θ`` yields the condition ``θ(head(Vi))@Vi`` together
    with the set of Q-conditions it covers.  With a
    :class:`~repro.rewriting.session.RewriteSession` the per-view chase
    (and its derived plan artifacts) is done once per session, not once
    per call.  An :class:`~repro.rewriting.explain.Explanation` receives
    one event per mapping found, or the refutation obstacle for views
    with none.

    The label-signature pre-filter (a sound necessary condition, see
    :mod:`repro.analysis.viewset.signature`) skips views that provably
    have no containment mapping into *query*: with *signature_index* (a
    precomputed :class:`~repro.analysis.viewset.LabelSignatureIndex`)
    the skip happens before the view is even chased; with bare
    ``signature_prefilter=True`` each view's signature is computed from
    its chased body, saving only the mapping enumeration.  Skips are
    counted on ``stats.views_pruned_signature`` and recorded as
    ``pruned-signature`` events on *explain*.  *query* must already be
    chased (as in ``_search``) for the profile to be sound.

    With *path_index* (default) one
    :class:`~repro.rewriting.index.PathIndex` over the query's body is
    built here and shared by every per-view mapping search; target
    pairs the index lets through / proves impossible are tallied on
    ``stats.index_hits`` / ``stats.index_skips``.
    """
    tracer = tracer or NULL_TRACER
    atoms: list[CandidateAtom] = []
    profile = None
    if signature_index is not None or signature_prefilter:
        from ..analysis.viewset.signature import (query_profile,
                                                  view_signature)
        profile = query_profile(query)
    target_index = PathIndex(query_paths(query)) if path_index else None
    index_stats = IndexStats() if path_index else None
    for name in sorted(views):
        if signature_index is not None:
            signature = signature_index.signature(name)
            if signature is not None \
                    and not signature.admissible_for(profile):
                if stats is not None:
                    stats.views_pruned_signature += 1
                if explain is not None:
                    explain.view_pruned(name,
                                        signature.missing_from(profile))
                continue
        with tracer.span("enumerate_mappings", view=name) as span:
            if session is not None:
                view = session.view_plan(name, tracer=tracer,
                                         budget=budget).query
            else:
                view = chase(views[name], constraints, tracer=tracer,
                             budget=budget)
            if signature_index is None and signature_prefilter:
                signature = view_signature(view)
                if not signature.admissible_for(profile):
                    if stats is not None:
                        stats.views_pruned_signature += 1
                    if explain is not None:
                        explain.view_pruned(
                            name, signature.missing_from(profile))
                    span.set("pruned", "signature")
                    continue
            found = 0
            mapping: ContainmentMapping
            for mapping in find_mappings(view, query, budget=budget,
                                         index=target_index,
                                         use_index=path_index,
                                         index_stats=index_stats):
                instantiated = view.head.substitute(mapping.subst)
                atoms.append(CandidateAtom(Condition(instantiated, name),
                                           mapping.covers, name))
                span.add("mappings")
                found += 1
                if explain is not None:
                    explain.mapping_found(name, mapping.subst,
                                          mapping.covers)
            if explain is not None and not found:
                obstacle = mapping_obstacle(query_paths(view),
                                            query_paths(query))
                explain.mapping_refuted(name, obstacle)
                span.set("refuted", True)
    if stats is not None and index_stats is not None:
        stats.index_hits += index_stats.hits
        stats.index_skips += index_stats.skips
    return atoms


def rewrite(query: Query,
            views: Union[Mapping[str, Query], Sequence[Query]],
            constraints: StructuralConstraints | None = None,
            *,
            heuristic: bool = True,
            total_only: bool = False,
            prune_subsumed: bool = True,
            first_only: bool = False,
            max_candidates: int | None = None,
            signature_prefilter: bool = True,
            path_index: bool = True,
            tracer=None,
            budget=None,
            metrics=None,
            session=None,
            explain=None) -> RewriteResult:
    """Find rewriting queries of *query* using *views* (Section 3.4).

    Parameters
    ----------
    query, views:
        The TSL query and the views (a name->query mapping, or a sequence
        of named queries).
    constraints:
        Optional structural constraints (a DTD or DataGuide); enables
        label inference and labeled-FD chasing (Section 3.3).
    heuristic:
        Apply the covering heuristic (default True).
    total_only:
        Only consider candidates that access views exclusively ("total
        rewriting queries").
    prune_subsumed:
        Skip candidates whose body strictly extends an accepted
        rewriting's body (the "trivial rewriting" pruning of Section 1).
    first_only:
        Stop after the first rewriting found.
    max_candidates:
        Safety cap on the number of candidates tested.  Hitting it sets
        ``stats.truncated`` with ``stop_reason="max_candidates"``.
    signature_prefilter:
        Skip views whose label signature cannot embed into the query
        (default True).  The check is a *sound* necessary condition for
        a containment mapping to exist (see
        :mod:`repro.analysis.viewset.signature`), so the rewriting set
        is unchanged -- only Step 1A work is saved; skipped views are
        counted in ``stats.views_pruned_signature``.  Deliberately not
        part of the session memo key: on or off, the memoized result is
        the same.
    path_index:
        Use the label/source/depth path index
        (:mod:`repro.rewriting.index`) to restrict every mapping search
        to statically compatible target conditions (default True).  The
        pruning is sound, so -- like the signature pre-filter -- the
        rewriting set and the mapping enumeration order are unchanged
        and the flag is not part of the session memo key; tallies land
        in ``stats.index_hits`` / ``stats.index_skips``.  ``False``
        (the ``--no-path-index`` escape hatch) restores the exhaustive
        scan.
    tracer:
        Optional :class:`repro.obs.Tracer`; records the span tree
        ``rewrite`` > ``prepare``/``enumerate_mappings``/``candidate`` >
        ``chase``/``compose``/``equivalence``.
    budget:
        Optional :class:`repro.obs.Budget`.  Expiry anywhere in the
        pipeline stops the search; the rewritings found so far are
        returned with ``stats.truncated=True`` and ``stop_reason`` set.
    metrics:
        Optional :class:`repro.obs.MetricsRegistry`; the run's counters
        are recorded under ``rewrite.*`` when it finishes, and the
        rewrite / chase / compose / equivalence phases feed the
        ``phase.seconds{phase=...}`` latency histogram.
    explain:
        Optional :class:`~repro.rewriting.explain.Explanation`; the
        search fills it with per-mapping and per-candidate decisions
        (EXPLAIN provenance).  Session memo hits replay the cached
        explanation, tagged ``memo="hit"``; a memoized result stored
        *without* an explanation is recomputed when one is requested.
    session:
        Optional :class:`repro.rewriting.session.RewriteSession` created
        for these *views* and *constraints*.  The search then reuses the
        session's prepared views and memo tables; complete results are
        memoized per (canonical query, flags) and served on repeat
        calls.  Prefer :meth:`RewriteSession.rewrite`, which supplies
        the matching views/constraints automatically.
    """
    tracer = tracer or NULL_TRACER
    views = _as_view_dict(views)
    flags = (heuristic, total_only, prune_subsumed, first_only,
             max_candidates)
    with _phase(metrics, "rewrite"):
        if session is not None:
            memoized = session.lookup_result(
                query, flags, need_explanation=explain is not None)
            if memoized is not None:
                memo_result, memo_explanation = memoized
                with tracer.span("rewrite",
                                 query=query.name or str(query.head),
                                 views=",".join(sorted(views))) as span:
                    span.set("memo", "hit")
                    span.add("rewritings", memo_result.stats.rewritings)
                result = RewriteResult(list(memo_result.rewritings),
                                       replace(memo_result.stats))
                if explain is not None:
                    explain.replay(memo_explanation)
                if metrics is not None:
                    _record_metrics(metrics, result.stats)
                return result
        if explain is not None:
            explain.begin(query, views, constraints,
                          {"heuristic": heuristic,
                           "total_only": total_only,
                           "prune_subsumed": prune_subsumed,
                           "first_only": first_only,
                           "max_candidates": max_candidates})
        result = RewriteResult()
        with tracer.span("rewrite", query=query.name or str(query.head),
                         views=",".join(sorted(views))) as span:
            try:
                _search(query, views, constraints, heuristic, total_only,
                        prune_subsumed, first_only, max_candidates,
                        signature_prefilter, path_index, result,
                        tracer, budget, session, metrics, explain)
            except BudgetExceededError as exc:
                result.stats.truncated = True
                result.stats.stop_reason = exc.reason or "budget"
            if result.stats.truncated:
                span.set("truncated", result.stats.stop_reason)
            span.add("candidates_tested", result.stats.candidates_tested)
            span.add("rewritings", result.stats.rewritings)
        if explain is not None:
            explain.finish(result)
        if session is not None:
            session.store_result(query, flags, result, explain)
        if metrics is not None:
            _record_metrics(metrics, result.stats)
    return result


def _search(query: Query, views: dict[str, Query],
            constraints: StructuralConstraints | None,
            heuristic: bool, total_only: bool, prune_subsumed: bool,
            first_only: bool, max_candidates: int | None,
            signature_prefilter: bool, path_index: bool,
            result: RewriteResult, tracer, budget,
            session=None, metrics=None, explain=None) -> None:
    """The Section 3.4 search loop, mutating *result* in place.

    Results accumulate on *result* (not a return value) so that a
    :class:`~repro.errors.BudgetExceededError` unwinding from any depth
    leaves the rewritings found so far intact.
    """
    with tracer.span("prepare"):
        prepared = prepare_program([query], constraints, budget=budget,
                                   session=session)
    if not prepared:
        raise ChaseContradictionError(
            "the query body contradicts the object-id key dependency")
    target = prepared[0]
    target_paths = query_paths(target)
    k = len(target_paths)
    all_indices = frozenset(range(k))
    # Every candidate's Step 2 tests equivalence against the same right
    # side ([target]); prepare + decompose it once and share across all
    # candidates (batched equivalence).  Computed exactly the way
    # programs_equivalent would, so the shared components are
    # byte-identical to the per-candidate ones they replace.
    from ..tsl.decompose import decompose_program
    target_key = program_key([target])
    prepared_target = prepare_program([target], constraints,
                                      budget=budget, session=session)
    if session is not None:
        target_components = session.decompose(prepared_target)
    else:
        target_components = decompose_program(prepared_target)

    if explain is not None:
        # Explanations need the per-mapping events, so Step 1A bypasses
        # the session's atom memo (prepared views are still shared; the
        # session's signature index is too).
        index = session.signature_index() \
            if signature_prefilter and session is not None else None
        atoms = view_instantiations(target, views, constraints,
                                    tracer=tracer, budget=budget,
                                    session=session, explain=explain,
                                    signature_index=index,
                                    signature_prefilter=signature_prefilter,
                                    path_index=path_index,
                                    stats=result.stats)
    elif session is not None:
        atoms = session.candidate_atoms(
            target, tracer=tracer, budget=budget,
            signature_prefilter=signature_prefilter,
            path_index=path_index, stats=result.stats)
    else:
        atoms = view_instantiations(target, views, constraints,
                                    tracer=tracer, budget=budget,
                                    signature_prefilter=signature_prefilter,
                                    path_index=path_index,
                                    stats=result.stats)
    result.stats.mappings = len(atoms)
    if not total_only:
        atoms.extend(
            CandidateAtom(path_to_condition(path), frozenset([i]), None)
            for i, path in enumerate(target_paths))
    merge_counts: dict[Condition, int] = {}
    atoms = _merge_duplicate_atoms(atoms, result.stats, merge_counts)
    if explain is not None:
        for atom in atoms:
            explain.atom(atom.condition, atom.view, atom.covers,
                         merge_counts.get(atom.condition, 1))

    def record(chosen, verdict, reason=None, detail=None):
        if explain is not None:
            explain.candidate(
                result.stats.candidates_enumerated - 1,
                [atom.condition for atom in chosen],
                sorted({atom.view for atom in chosen if atom.is_view}),
                verdict, reason, detail)

    accepted_bodies: list[frozenset[Condition]] = []
    for size in range(1, k + 1):
        for combo in combinations(range(len(atoms)), size):
            if budget is not None:
                budget.tick()
            chosen = [atoms[i] for i in combo]
            if not any(atom.is_view for atom in chosen):
                continue
            result.stats.candidates_enumerated += 1
            if heuristic:
                covered = frozenset().union(
                    *(atom.covers for atom in chosen))
                if covered != all_indices:
                    result.stats.candidates_pruned_by_heuristic += 1
                    if explain is not None:
                        uncovered = sorted(all_indices - covered)
                        missing = "; ".join(
                            str(path_to_condition(target_paths[i]))
                            for i in uncovered)
                        record(chosen, "pruned-heuristic",
                               f"covering heuristic: leaves query "
                               f"condition(s) {uncovered} uncovered "
                               f"({missing})",
                               {"uncovered": str(uncovered)})
                    continue
            body = tuple(atom.condition for atom in chosen)
            candidate = Query(target.head, body, name=query.name)
            if not is_safe(candidate):
                result.stats.candidates_pruned_unsafe += 1
                record(chosen, "pruned-unsafe",
                       "candidate is unsafe: a head variable is not "
                       "bound by the body")
                continue
            if prune_subsumed and any(
                    prior <= frozenset(body) for prior in accepted_bodies):
                result.stats.candidates_pruned_subsumed += 1
                record(chosen, "pruned-subsumed",
                       "body extends an already-accepted rewriting "
                       "(trivial rewriting)")
                continue
            if (max_candidates is not None
                    and result.stats.candidates_tested >= max_candidates):
                result.stats.truncated = True
                result.stats.stop_reason = "max_candidates"
                record(chosen, "skipped-max-candidates",
                       f"candidate cap of {max_candidates} reached; "
                       "search stopped")
                return
            result.stats.candidates_tested += 1
            with tracer.span("candidate",
                             index=result.stats.candidates_tested - 1,
                             conditions=len(body)) as span:
                accepted, verdict, reason, detail = _test_candidate(
                    candidate, target, views, constraints, result, tracer,
                    budget, session, metrics, explain is not None,
                    target_key=target_key,
                    target_components=target_components)
                span.set("accepted", accepted is not None)
                if explain is not None:
                    span.set("verdict", verdict)
                    record(chosen, verdict, reason, detail)
            if accepted is not None:
                accepted_bodies.append(frozenset(body))
                result.rewritings.append(accepted)
                result.stats.rewritings += 1
                if first_only:
                    return


def _merge_duplicate_atoms(atoms: list[CandidateAtom],
                           stats: RewriteStats,
                           merge_counts: dict[Condition, int] | None = None
                           ) -> list[CandidateAtom]:
    """Merge atoms with equal conditions, unioning their coverage.

    Two containment mappings can instantiate the same ``θ(head(Vi))``;
    keeping both makes ``combinations`` enumerate duplicate candidate
    bodies, each paying the full chase/compose/equivalence bill.  A
    candidate body is a *set* of conditions, so equal-condition atoms
    are interchangeable; the merged atom covers everything either
    mapping covered, which keeps every previously-reachable body
    reachable (at a smaller combination size).

    *merge_counts*, when given, receives how many source atoms each
    surviving condition absorbed (EXPLAIN provenance).
    """
    merged: dict[Condition, CandidateAtom] = {}
    for atom in atoms:
        existing = merged.get(atom.condition)
        if existing is None:
            merged[atom.condition] = atom
        else:
            merged[atom.condition] = CandidateAtom(
                existing.condition, existing.covers | atom.covers,
                existing.view)
            stats.candidates_pruned_duplicate += 1
        if merge_counts is not None:
            merge_counts[atom.condition] = \
                merge_counts.get(atom.condition, 0) + 1
    return list(merged.values())


def _record_metrics(metrics, stats: RewriteStats) -> None:
    for name, value in stats.to_json().items():
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            continue
        metrics.increment(f"rewrite.{name}", value)
    metrics.increment("rewrite.runs")
    # The ISSUE-facing name for the signature pre-filter's work saved;
    # rewrite.views_pruned_signature above is the raw stats-field dump.
    metrics.increment("rewrite.pruned.signature",
                      stats.views_pruned_signature)
    # Path-index effectiveness, same naming convention.
    metrics.increment("rewrite.index.hits", stats.index_hits)
    metrics.increment("rewrite.index.skips", stats.index_skips)
    if stats.truncated:
        metrics.increment("rewrite.truncated_runs")
    if stats.stop_reason is not None:
        metrics.increment(f"rewrite.stopped.{stats.stop_reason}")


def _test_candidate(candidate: Query, target: Query,
                    views: Mapping[str, Query],
                    constraints: StructuralConstraints | None,
                    result: RewriteResult, tracer=NULL_TRACER,
                    budget=None, session=None, metrics=None,
                    explain_active: bool = False, *,
                    target_key: str | None = None,
                    target_components=None
                    ) -> tuple[Rewriting | None, str, str | None,
                               dict | None]:
    """Steps 1C + 2 for one candidate.

    Returns ``(rewriting_or_None, verdict, reason, detail)``.  The
    verdict/reason strings are cheap to produce; the expensive
    equivalence-failure diagnosis (which graph component has no mapping)
    only runs when *explain_active*.  *target_key* /
    *target_components* are ``_search``'s once-per-run precomputation
    of the right side of the Step 2 test.
    """
    try:
        with _phase(metrics, "chase"):
            if session is not None:
                candidate = session.chase(candidate, tracer=tracer,
                                          budget=budget)
            else:
                candidate = chase(candidate, constraints, tracer=tracer,
                                  budget=budget)
    except ChaseContradictionError as exc:
        result.stats.candidates_failed_chase += 1
        return None, "failed-chase", str(exc), None
    try:
        with _phase(metrics, "compose"):
            composed = compose(candidate, views, tracer=tracer,
                               budget=budget)
    except CompositionError as exc:
        result.stats.candidates_failed_composition += 1
        return None, "failed-composition", str(exc), None
    composed = prepare_program(composed, constraints, minimize_rules=True,
                               budget=budget, session=session)
    result.stats.composition_rules += len(composed)
    with _phase(metrics, "equivalence"):
        if session is not None:
            equivalent_verdict = session.programs_equivalent(
                composed, [target], tracer=tracer, budget=budget,
                right_key=target_key,
                right_components=target_components)
        else:
            equivalent_verdict = programs_equivalent(
                composed, [target], constraints, tracer=tracer,
                budget=budget, right_components=target_components)
    if not equivalent_verdict:
        reason, detail = _equivalence_failure_reason(
            composed, target, constraints, session, budget,
            explain_active)
        return None, "failed-equivalence", reason, detail
    views_used = frozenset(c.source for c in candidate.body
                           if c.source in views)
    rewriting = Rewriting(query=candidate, composition=composed,
                          views_used=views_used)
    return (rewriting, "accepted",
            f"composition is equivalent to the query "
            f"({len(composed)} composition rule(s))" if explain_active
            else None, None)


def _equivalence_failure_reason(composed, target, constraints, session,
                                budget, explain_active
                                ) -> tuple[str | None, dict | None]:
    """Name the graph component on which the Step 2 test failed."""
    if not explain_active:
        return None, None
    if not composed:
        return ("the composition is empty: the candidate is "
                "unsatisfiable against the view definitions", None)
    obstacle = equivalence_obstacle(composed, [target], constraints,
                                    budget=budget, session=session)
    if obstacle is None:  # diagnostic re-run disagreed; report plainly
        return "composition is not equivalent to the query", None
    kind = obstacle["component_kind"]
    component = obstacle["component"]
    if obstacle["unmapped_side"] == "left":
        reason = (f"the composition's {kind}-rule component "
                  f"[{component}] has no containment mapping from any "
                  f"query component (composition ⊄ query)")
    else:
        reason = (f"the query's {kind}-rule component [{component}] has "
                  f"no containment mapping from any composition "
                  f"component (query ⊄ composition)")
    return reason, {"direction": "composition-into-query"
                    if obstacle["unmapped_side"] == "left"
                    else "query-into-composition",
                    "component_kind": kind,
                    "component": component}


def rewrite_single_path(query: Query, view: Query,
                        constraints: StructuralConstraints | None = None
                        ) -> Rewriting | None:
    """The Section 3.1 special case: single-path query, single view.

    Returns the (at most one) total rewriting, or None.  Exercises the
    same machinery as :func:`rewrite`; kept as a faithful, simple entry
    point for the paper's walkthrough examples.
    """
    name = view.name or "V"
    outcome = rewrite(query, {name: view}, constraints,
                      total_only=True, first_only=True)
    return outcome.rewritings[0] if outcome.rewritings else None


def find_all_rewritings(query: Query,
                        views: Union[Mapping[str, Query], Sequence[Query]],
                        constraints: StructuralConstraints | None = None,
                        **kwargs) -> list[Query]:
    """Convenience wrapper returning just the rewriting queries."""
    return rewrite(query, views, constraints, **kwargs).queries


def is_rewriting(candidate: Query, query: Query,
                 views: Union[Mapping[str, Query], Sequence[Query]],
                 constraints: StructuralConstraints | None = None) -> bool:
    """Check one hand-written candidate (Step 2 only)."""
    views = _as_view_dict(views)
    prepared = prepare_program([query], constraints)
    if not prepared:
        return False
    try:
        candidate = chase(candidate, constraints)
        composed = compose(candidate, views)
    except (ChaseContradictionError, CompositionError):
        return False
    composed = prepare_program(composed, constraints, minimize_rules=True)
    return programs_equivalent(composed, prepared, constraints)
