"""The general query rewriting algorithm (Section 3.4).

Given a TSL query ``Q`` with ``k`` single-path conditions and TSL views
``V = {V1..Vn}``:

* **Step 1A** -- find every containment mapping from each view body into
  the body of ``Q`` (:mod:`repro.rewriting.mappings`).
* **Step 1B** -- construct candidate rewriting queries: ``head(Q)`` plus
  any safe conjunction of at most ``k`` conditions, each either a view
  instantiation ``θ(head(Vi))`` or an original condition of ``Q``, with
  at least one view.
* **Step 1C** -- label inference and chase on each candidate.
* **Step 2** -- compose each candidate with the views, chase the
  composition, and keep the candidate iff the composition is equivalent
  to ``Q`` (Section 4).

The covering heuristic ("only construct candidates whose views and
conditions cover all the conditions of Q") prunes the exponential
candidate space without losing rewritings; it is on by default and can be
disabled to measure its effect (benchmark E6).

The algorithm is sound (Step 2 is a correctness test) and complete for
TSL without structural constraints (Theorem 5.5); with constraints it
remains sound.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from itertools import combinations
from typing import Mapping, Sequence, Union

from ..errors import (BudgetExceededError, ChaseContradictionError,
                      CompositionError, RewritingError)
from ..obs import NULL_TRACER
from ..tsl.ast import Condition, Query
from ..tsl.normalize import normalize, path_to_condition, query_paths
from ..tsl.validate import is_safe
from .chase import StructuralConstraints, chase
from .composition import compose
from .equivalence import minimize, prepare_program, programs_equivalent
from .mappings import Mapping as ContainmentMapping
from .mappings import find_mappings


@dataclass(frozen=True, slots=True)
class CandidateAtom:
    """One buildable condition: a view instantiation or an original one."""

    condition: Condition
    covers: frozenset[int]
    view: str | None  # view name, or None for an original condition

    @property
    def is_view(self) -> bool:
        return self.view is not None


@dataclass
class Rewriting:
    """An accepted rewriting query and its correctness evidence."""

    query: Query
    composition: list[Query]
    views_used: frozenset[str]

    def __str__(self) -> str:
        return str(self.query)


@dataclass
class RewriteStats:
    """Counters describing one rewriter run (feeds the benchmarks).

    ``truncated`` is True when the search stopped before exhausting the
    candidate space -- via ``max_candidates``, a wall-clock deadline, or
    a step budget -- in which case ``stop_reason`` names the cause
    (``"max_candidates"``, ``"deadline"``, or ``"steps"``) and the
    accumulated rewritings are a sound but possibly incomplete set.
    """

    mappings: int = 0
    candidates_enumerated: int = 0
    candidates_tested: int = 0
    candidates_pruned_by_heuristic: int = 0
    candidates_pruned_unsafe: int = 0
    candidates_pruned_subsumed: int = 0
    candidates_pruned_duplicate: int = 0
    candidates_failed_chase: int = 0
    candidates_failed_composition: int = 0
    composition_rules: int = 0
    rewritings: int = 0
    truncated: bool = False
    stop_reason: str | None = None

    def to_json(self) -> dict:
        return {f.name: getattr(self, f.name)
                for f in self.__dataclass_fields__.values()}


@dataclass
class RewriteResult:
    """Everything a rewriter run produced."""

    rewritings: list[Rewriting] = field(default_factory=list)
    stats: RewriteStats = field(default_factory=RewriteStats)

    @property
    def queries(self) -> list[Query]:
        return [r.query for r in self.rewritings]

    @property
    def truncated(self) -> bool:
        """True when the search stopped early (results may be incomplete)."""
        return self.stats.truncated

    def __iter__(self):
        return iter(self.rewritings)

    def __len__(self) -> int:
        return len(self.rewritings)


def _as_view_dict(views: Union[Mapping[str, Query], Sequence[Query]]
                  ) -> dict[str, Query]:
    if isinstance(views, Mapping):
        return dict(views)
    out: dict[str, Query] = {}
    for index, view in enumerate(views):
        name = view.name or f"V{index + 1}"
        if name in out:
            raise RewritingError(f"duplicate view name {name!r}")
        out[name] = view
    return out


def view_instantiations(query: Query, views: Mapping[str, Query],
                        constraints: StructuralConstraints | None = None,
                        *, tracer=None, budget=None,
                        session=None) -> list[CandidateAtom]:
    """Step 1A: mappings from each view body into body(Q), as atoms.

    Each mapping ``θ`` yields the condition ``θ(head(Vi))@Vi`` together
    with the set of Q-conditions it covers.  With a
    :class:`~repro.rewriting.session.RewriteSession` the per-view chase
    is done once per session (prepared views), not once per call.
    """
    tracer = tracer or NULL_TRACER
    atoms: list[CandidateAtom] = []
    for name in sorted(views):
        with tracer.span("enumerate_mappings", view=name) as span:
            if session is not None:
                view = session.prepared_view(name, tracer=tracer,
                                             budget=budget)
            else:
                view = chase(views[name], constraints, tracer=tracer,
                             budget=budget)
            mapping: ContainmentMapping
            for mapping in find_mappings(view, query, budget=budget):
                instantiated = view.head.substitute(mapping.subst)
                atoms.append(CandidateAtom(Condition(instantiated, name),
                                           mapping.covers, name))
                span.add("mappings")
    return atoms


def rewrite(query: Query,
            views: Union[Mapping[str, Query], Sequence[Query]],
            constraints: StructuralConstraints | None = None,
            *,
            heuristic: bool = True,
            total_only: bool = False,
            prune_subsumed: bool = True,
            first_only: bool = False,
            max_candidates: int | None = None,
            tracer=None,
            budget=None,
            metrics=None,
            session=None) -> RewriteResult:
    """Find rewriting queries of *query* using *views* (Section 3.4).

    Parameters
    ----------
    query, views:
        The TSL query and the views (a name->query mapping, or a sequence
        of named queries).
    constraints:
        Optional structural constraints (a DTD or DataGuide); enables
        label inference and labeled-FD chasing (Section 3.3).
    heuristic:
        Apply the covering heuristic (default True).
    total_only:
        Only consider candidates that access views exclusively ("total
        rewriting queries").
    prune_subsumed:
        Skip candidates whose body strictly extends an accepted
        rewriting's body (the "trivial rewriting" pruning of Section 1).
    first_only:
        Stop after the first rewriting found.
    max_candidates:
        Safety cap on the number of candidates tested.  Hitting it sets
        ``stats.truncated`` with ``stop_reason="max_candidates"``.
    tracer:
        Optional :class:`repro.obs.Tracer`; records the span tree
        ``rewrite`` > ``prepare``/``enumerate_mappings``/``candidate`` >
        ``chase``/``compose``/``equivalence``.
    budget:
        Optional :class:`repro.obs.Budget`.  Expiry anywhere in the
        pipeline stops the search; the rewritings found so far are
        returned with ``stats.truncated=True`` and ``stop_reason`` set.
    metrics:
        Optional :class:`repro.obs.MetricsRegistry`; the run's counters
        are recorded under ``rewrite.*`` when it finishes.
    session:
        Optional :class:`repro.rewriting.session.RewriteSession` created
        for these *views* and *constraints*.  The search then reuses the
        session's prepared views and memo tables; complete results are
        memoized per (canonical query, flags) and served on repeat
        calls.  Prefer :meth:`RewriteSession.rewrite`, which supplies
        the matching views/constraints automatically.
    """
    tracer = tracer or NULL_TRACER
    views = _as_view_dict(views)
    flags = (heuristic, total_only, prune_subsumed, first_only,
             max_candidates)
    if session is not None:
        memoized = session.lookup_result(query, flags)
        if memoized is not None:
            with tracer.span("rewrite",
                             query=query.name or str(query.head),
                             views=",".join(sorted(views))) as span:
                span.set("memo", "hit")
                span.add("rewritings", memoized.stats.rewritings)
            result = RewriteResult(list(memoized.rewritings),
                                   replace(memoized.stats))
            if metrics is not None:
                _record_metrics(metrics, result.stats)
            return result
    result = RewriteResult()
    with tracer.span("rewrite", query=query.name or str(query.head),
                     views=",".join(sorted(views))) as span:
        try:
            _search(query, views, constraints, heuristic, total_only,
                    prune_subsumed, first_only, max_candidates, result,
                    tracer, budget, session)
        except BudgetExceededError as exc:
            result.stats.truncated = True
            result.stats.stop_reason = exc.reason or "budget"
        if result.stats.truncated:
            span.set("truncated", result.stats.stop_reason)
        span.add("candidates_tested", result.stats.candidates_tested)
        span.add("rewritings", result.stats.rewritings)
    if session is not None:
        session.store_result(query, flags, result)
    if metrics is not None:
        _record_metrics(metrics, result.stats)
    return result


def _search(query: Query, views: dict[str, Query],
            constraints: StructuralConstraints | None,
            heuristic: bool, total_only: bool, prune_subsumed: bool,
            first_only: bool, max_candidates: int | None,
            result: RewriteResult, tracer, budget,
            session=None) -> None:
    """The Section 3.4 search loop, mutating *result* in place.

    Results accumulate on *result* (not a return value) so that a
    :class:`~repro.errors.BudgetExceededError` unwinding from any depth
    leaves the rewritings found so far intact.
    """
    with tracer.span("prepare"):
        prepared = prepare_program([query], constraints, budget=budget,
                                   session=session)
    if not prepared:
        raise ChaseContradictionError(
            "the query body contradicts the object-id key dependency")
    target = prepared[0]
    target_paths = query_paths(target)
    k = len(target_paths)
    all_indices = frozenset(range(k))

    if session is not None:
        atoms = session.candidate_atoms(target, tracer=tracer,
                                        budget=budget)
    else:
        atoms = view_instantiations(target, views, constraints,
                                    tracer=tracer, budget=budget)
    result.stats.mappings = len(atoms)
    if not total_only:
        atoms.extend(
            CandidateAtom(path_to_condition(path), frozenset([i]), None)
            for i, path in enumerate(target_paths))
    atoms = _merge_duplicate_atoms(atoms, result.stats)

    accepted_bodies: list[frozenset[Condition]] = []
    for size in range(1, k + 1):
        for combo in combinations(range(len(atoms)), size):
            if budget is not None:
                budget.tick()
            chosen = [atoms[i] for i in combo]
            if not any(atom.is_view for atom in chosen):
                continue
            result.stats.candidates_enumerated += 1
            if heuristic:
                covered = frozenset().union(
                    *(atom.covers for atom in chosen))
                if covered != all_indices:
                    result.stats.candidates_pruned_by_heuristic += 1
                    continue
            body = tuple(atom.condition for atom in chosen)
            candidate = Query(target.head, body, name=query.name)
            if not is_safe(candidate):
                result.stats.candidates_pruned_unsafe += 1
                continue
            if prune_subsumed and any(
                    prior <= frozenset(body) for prior in accepted_bodies):
                result.stats.candidates_pruned_subsumed += 1
                continue
            if (max_candidates is not None
                    and result.stats.candidates_tested >= max_candidates):
                result.stats.truncated = True
                result.stats.stop_reason = "max_candidates"
                return
            result.stats.candidates_tested += 1
            with tracer.span("candidate",
                             index=result.stats.candidates_tested - 1,
                             conditions=len(body)) as span:
                accepted = _test_candidate(candidate, target, views,
                                           constraints, result, tracer,
                                           budget, session)
                span.set("accepted", accepted is not None)
            if accepted is not None:
                accepted_bodies.append(frozenset(body))
                result.rewritings.append(accepted)
                result.stats.rewritings += 1
                if first_only:
                    return


def _merge_duplicate_atoms(atoms: list[CandidateAtom],
                           stats: RewriteStats) -> list[CandidateAtom]:
    """Merge atoms with equal conditions, unioning their coverage.

    Two containment mappings can instantiate the same ``θ(head(Vi))``;
    keeping both makes ``combinations`` enumerate duplicate candidate
    bodies, each paying the full chase/compose/equivalence bill.  A
    candidate body is a *set* of conditions, so equal-condition atoms
    are interchangeable; the merged atom covers everything either
    mapping covered, which keeps every previously-reachable body
    reachable (at a smaller combination size).
    """
    merged: dict[Condition, CandidateAtom] = {}
    for atom in atoms:
        existing = merged.get(atom.condition)
        if existing is None:
            merged[atom.condition] = atom
        else:
            merged[atom.condition] = CandidateAtom(
                existing.condition, existing.covers | atom.covers,
                existing.view)
            stats.candidates_pruned_duplicate += 1
    return list(merged.values())


def _record_metrics(metrics, stats: RewriteStats) -> None:
    for name, value in stats.to_json().items():
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            continue
        metrics.increment(f"rewrite.{name}", value)
    metrics.increment("rewrite.runs")
    if stats.truncated:
        metrics.increment("rewrite.truncated_runs")
    if stats.stop_reason is not None:
        metrics.increment(f"rewrite.stopped.{stats.stop_reason}")


def _test_candidate(candidate: Query, target: Query,
                    views: Mapping[str, Query],
                    constraints: StructuralConstraints | None,
                    result: RewriteResult, tracer=NULL_TRACER,
                    budget=None, session=None) -> Rewriting | None:
    """Steps 1C + 2 for one candidate; None when it is not a rewriting."""
    try:
        if session is not None:
            candidate = session.chase(candidate, tracer=tracer,
                                      budget=budget)
        else:
            candidate = chase(candidate, constraints, tracer=tracer,
                              budget=budget)
    except ChaseContradictionError:
        result.stats.candidates_failed_chase += 1
        return None
    try:
        composed = compose(candidate, views, tracer=tracer, budget=budget)
    except CompositionError:
        result.stats.candidates_failed_composition += 1
        return None
    composed = prepare_program(composed, constraints, minimize_rules=True,
                               budget=budget, session=session)
    result.stats.composition_rules += len(composed)
    if session is not None:
        equivalent_verdict = session.programs_equivalent(
            composed, [target], tracer=tracer, budget=budget)
    else:
        equivalent_verdict = programs_equivalent(
            composed, [target], constraints, tracer=tracer, budget=budget)
    if not equivalent_verdict:
        return None
    views_used = frozenset(c.source for c in candidate.body
                           if c.source in views)
    return Rewriting(query=candidate, composition=composed,
                     views_used=views_used)


def rewrite_single_path(query: Query, view: Query,
                        constraints: StructuralConstraints | None = None
                        ) -> Rewriting | None:
    """The Section 3.1 special case: single-path query, single view.

    Returns the (at most one) total rewriting, or None.  Exercises the
    same machinery as :func:`rewrite`; kept as a faithful, simple entry
    point for the paper's walkthrough examples.
    """
    name = view.name or "V"
    outcome = rewrite(query, {name: view}, constraints,
                      total_only=True, first_only=True)
    return outcome.rewritings[0] if outcome.rewritings else None


def find_all_rewritings(query: Query,
                        views: Union[Mapping[str, Query], Sequence[Query]],
                        constraints: StructuralConstraints | None = None,
                        **kwargs) -> list[Query]:
    """Convenience wrapper returning just the rewriting queries."""
    return rewrite(query, views, constraints, **kwargs).queries


def is_rewriting(candidate: Query, query: Query,
                 views: Union[Mapping[str, Query], Sequence[Query]],
                 constraints: StructuralConstraints | None = None) -> bool:
    """Check one hand-written candidate (Step 2 only)."""
    views = _as_view_dict(views)
    prepared = prepare_program([query], constraints)
    if not prepared:
        return False
    try:
        candidate = chase(candidate, constraints)
        composed = compose(candidate, views)
    except (ChaseContradictionError, CompositionError):
        return False
    composed = prepare_program(composed, constraints, minimize_rules=True)
    return programs_equivalent(composed, prepared, constraints)
