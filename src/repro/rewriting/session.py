"""Memoized rewrite sessions: prepared views + bounded memo tables.

The motivating application of Section 1 (answering from cached queries
[19]) issues many :func:`~repro.rewriting.rewriter.rewrite` calls
against one slowly-changing view set.  The stock pipeline re-chases
every view and re-runs the full exponential search on every call; a
:class:`RewriteSession` factors the repeated work out:

* **prepared views** -- each view is chased + normalized once per
  session and reused by every ``rewrite()`` call;
* **memo tables** -- bounded (LRU) caches, keyed on the canonical
  hashes of :mod:`~repro.rewriting.canon`, for ``chase()``,
  ``minimize()``, ``decompose_program()``, ``programs_equivalent()``
  verdict pairs, candidate-atom enumeration, and whole ``rewrite()``
  results.

Memo keys are canonical, so queries differing only in variable spelling
or conjunct order share a slot; a hit is served directly when the
stored query is structurally identical to the probe and *rebased*
(renamed into the probe's variable space) for the chase/minimize
tables otherwise.  Truncated (budget-stopped) results are never
memoized.  Every table exports ``cache.{hits,misses,evictions}``
counters -- aggregate and per-table -- through a
:class:`~repro.obs.metrics.MetricsRegistry`.

A session is bound to one ``(views, constraints)`` pair;
:meth:`RewriteSession.update_views` swaps the view set while keeping
the view-independent tables (chase, minimize, equivalence, decompose)
warm -- the pattern the cached-query manager uses when entries churn.

**Thread safety and locking order.**  A session may be shared by many
threads (the ``repro serve`` worker pool hammers one session per view
set).  Every :class:`MemoTable` owns a lock guarding its LRU dict and
counters; the session itself owns a lock guarding the prepared-view
dict and the signature index.  Locks nest strictly::

    QueryCache lock  >  session lock  >  memo-table lock  >  instrument lock

(outer acquired first; never acquire a lock to the left while holding
one to the right).  Expensive work -- the chase, the exponential
search -- runs *outside* every lock: two threads may race to compute
the same entry, but both compute the same (deterministic) value and
``put`` is idempotent per key, so no entry is lost or duplicated.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Mapping, Sequence, Union

from ..errors import ChaseContradictionError
from ..logic.terms import Variable
from ..obs.metrics import PHASE_SECONDS
from ..tsl.ast import Query
from ..tsl.normalize import Path, query_paths
from .canon import Canonical, canonicalize, program_key, rebase
from .chase import StructuralConstraints, chase
from .index import PathIndex

#: Default per-table memo capacity.
DEFAULT_MEMO_SIZE = 1024

_MISS = object()


@dataclass(frozen=True, eq=False)
class ViewPlan:
    """Everything precompilable about one registered view.

    Built once per (view set, constraints) pair by
    :meth:`RewriteSession.view_plan` and shared by every rewrite call:
    the chased + normalized body, its single-path decomposition, the
    variable set, the label signature (for the pre-filter), and a
    :class:`~repro.rewriting.index.PathIndex` over the view's own paths
    (for mapping searches that *target* this view body, e.g. the
    equivalence machinery).  Identity equality: plans are per-session
    singletons, never compared structurally.
    """

    name: str
    #: chased + normalized view body (what ``prepared_view`` returns).
    query: Query
    #: ``query_paths(query)`` -- Step 1A's source-path list.
    paths: tuple[Path, ...]
    #: every variable of the prepared body (renaming-apart support).
    variables: frozenset[Variable]
    #: label signature of the prepared body (pre-filter input).
    signature: object
    #: inverted index over ``paths``.
    index: PathIndex


class MemoTable:
    """A bounded LRU mapping with hit/miss/eviction accounting.

    Safe for concurrent use: one lock guards the LRU dict *and* the
    counters, so ``move_to_end`` reordering, eviction, and stats never
    interleave mid-update.  Values must be immutable (or never mutated
    after ``put``) -- the table hands the stored object straight back.
    The lock is innermost except for the metric instruments it feeds
    (see the module docstring for the full locking order).
    """

    __slots__ = ("name", "capacity", "entries", "hits", "misses",
                 "evictions", "_metrics", "_lock")

    def __init__(self, name: str, capacity: int = DEFAULT_MEMO_SIZE,
                 metrics=None) -> None:
        self.name = name
        self.capacity = max(1, capacity)
        self.entries: OrderedDict = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._metrics = metrics
        self._lock = threading.Lock()

    def _count(self, outcome: str) -> None:
        if self._metrics is not None:
            self._metrics.increment(f"cache.{outcome}")
            self._metrics.increment(f"cache.{self.name}.{outcome}")

    def get(self, key):
        """The stored value, or the module-private miss sentinel."""
        value = self.peek(key)
        if value is _MISS:
            self.record_miss()
        else:
            self.record_hit()
        return value

    def peek(self, key, default=_MISS):
        """Like :meth:`get` but without hit/miss accounting.

        Callers that must verify the stored value before serving it
        (exact-query compare) peek first, then call
        :meth:`record_hit` / :meth:`record_miss` with the verdict.
        *default* is returned on a miss (the module-private sentinel
        when not given, so ``None`` is storable).
        """
        with self._lock:
            value = self.entries.get(key, default)
            if value is not default:
                self.entries.move_to_end(key)
            return value

    def record_hit(self) -> None:
        with self._lock:
            self.hits += 1
        self._count("hits")

    def record_miss(self) -> None:
        with self._lock:
            self.misses += 1
        self._count("misses")

    def put(self, key, value) -> None:
        evicted = 0
        with self._lock:
            self.entries[key] = value
            self.entries.move_to_end(key)
            while len(self.entries) > self.capacity:
                self.entries.popitem(last=False)
                self.evictions += 1
                evicted += 1
        for _ in range(evicted):
            self._count("evictions")

    def clear(self) -> None:
        with self._lock:
            self.entries.clear()

    def items_snapshot(self) -> list:
        """The (key, value) pairs in LRU order (oldest first), under
        the lock -- the persistence layer's consistent read."""
        with self._lock:
            return list(self.entries.items())

    def __len__(self) -> int:
        with self._lock:
            return len(self.entries)

    def stats(self) -> dict:
        with self._lock:
            return {"size": len(self.entries), "capacity": self.capacity,
                    "hits": self.hits, "misses": self.misses,
                    "evictions": self.evictions}


class RewriteSession:
    """Prepared views and memo tables for repeated ``rewrite()`` calls.

    Parameters
    ----------
    views:
        The view set (name -> query mapping, or a sequence of named
        queries), shared by every call through this session.
    constraints:
        Optional structural constraints; all memoized work is keyed
        under this one constraints object.
    memo_size:
        Per-table LRU capacity.
    metrics:
        Optional :class:`~repro.obs.MetricsRegistry` receiving
        ``cache.*`` counters.
    enabled:
        ``False`` turns every table into a pass-through (the
        ``--no-memo`` baseline measured by benchmark E10) while keeping
        a single code path.
    """

    def __init__(self, views: Union[Mapping[str, Query], Sequence[Query]],
                 constraints: StructuralConstraints | None = None, *,
                 memo_size: int = DEFAULT_MEMO_SIZE,
                 metrics=None, enabled: bool = True) -> None:
        from .rewriter import _as_view_dict
        self.views = _as_view_dict(views)
        self.constraints = constraints
        self.memo_size = memo_size
        self.metrics = metrics
        self.enabled = enabled
        self._prepared_views: dict[str, Query] = {}
        self._view_plans: dict[str, ViewPlan] = {}
        self._signature_index = None
        # Guards _prepared_views and _signature_index (the memo tables
        # carry their own locks); see the module docstring for order.
        self._lock = threading.RLock()

        def table(name: str) -> MemoTable:
            return MemoTable(name, memo_size, metrics)

        # View-independent tables (survive update_views).
        self._chase = table("chase")
        self._minimize = table("minimize")
        self._equivalence = table("equivalence")
        self._decompose = table("decompose")
        # View-dependent tables (reset on update_views).
        self._atoms = table("atoms")
        self._results = table("rewrite")

    # -- view-set lifecycle --------------------------------------------------

    def update_views(self, views: Union[Mapping[str, Query],
                                        Sequence[Query]]) -> None:
        """Swap the view set; keeps the view-independent memos warm."""
        from .rewriter import _as_view_dict
        with self._lock:
            self.views = _as_view_dict(views)
            self._prepared_views.clear()
            self._view_plans.clear()
            self._signature_index = None
            self._atoms.clear()
            self._results.clear()

    def prepared_view(self, name: str, *, tracer=None,
                      budget=None) -> Query:
        """The chased + normalized form of view *name*, computed once.

        The chase runs outside the session lock: two threads may race
        to prepare the same view, but the chase is deterministic and
        ``setdefault`` keeps the first copy, so every caller shares one
        object.
        """
        with self._lock:
            prepared = self._prepared_views.get(name)
        if prepared is None:
            prepared = chase(self.views[name], self.constraints,
                             tracer=tracer, budget=budget)
            if self.enabled:
                with self._lock:
                    prepared = self._prepared_views.setdefault(
                        name, prepared)
        return prepared

    def view_plan(self, name: str, *, tracer=None,
                  budget=None) -> ViewPlan:
        """The precompiled :class:`ViewPlan` for view *name*.

        Extends :meth:`prepared_view` (whose chased query the plan
        embeds) with the derived artifacts every rewrite call otherwise
        recomputes: the path decomposition, the variable set, the label
        signature, and the per-view path index.  Raises
        :class:`~repro.errors.ChaseContradictionError` exactly when
        ``prepared_view`` does.  Same race discipline: built outside the
        session lock, first copy wins.
        """
        from ..analysis.viewset.signature import view_signature
        with self._lock:
            plan = self._view_plans.get(name)
        if plan is None:
            prepared = self.prepared_view(name, tracer=tracer,
                                          budget=budget)
            paths = tuple(query_paths(prepared))
            plan = ViewPlan(name=name, query=prepared, paths=paths,
                            variables=frozenset(prepared.all_variables()),
                            signature=view_signature(prepared),
                            index=PathIndex(paths))
            if self.enabled:
                with self._lock:
                    plan = self._view_plans.setdefault(name, plan)
        return plan

    def signature_index(self, *, tracer=None, budget=None):
        """The label-signature index of this session's view set.

        Built lazily from the precompiled view plans -- sharing the
        per-view chase and signature with Step 1A -- and invalidated by
        :meth:`update_views`.  Views whose body is contradictory are
        left out: the pre-filter never prunes a view it has no
        signature for.  The index is a pure function of the (views,
        constraints) pair, so it is kept even with ``enabled=False``
        (it is not a memo of per-query work).
        """
        from ..analysis.viewset.signature import LabelSignatureIndex
        with self._lock:
            index = self._signature_index
        if index is None:
            signatures = {}
            for name in sorted(self.views):
                try:
                    plan = self.view_plan(name, tracer=tracer,
                                          budget=budget)
                except ChaseContradictionError:
                    continue
                signatures[name] = plan.signature
            index = LabelSignatureIndex(signatures)
            with self._lock:
                if self._signature_index is None:
                    self._signature_index = index
                index = self._signature_index
        return index

    # -- memoized pipeline stages --------------------------------------------

    def chase(self, query: Query, *, tracer=None, budget=None) -> Query:
        """Memoized :func:`~repro.rewriting.chase.chase`.

        Contradictions are memoized too (they are a property of the
        query, not of the run).  A hit whose stored query differs only
        by renaming is rebased into the probe's variable space.
        """
        if not self.enabled:
            return chase(query, self.constraints, tracer=tracer,
                         budget=budget)
        probe = canonicalize(query)
        value = self._chase.get(probe.key)
        if value is not _MISS:
            original, stored, outcome = value
            if isinstance(outcome, ChaseContradictionError):
                raise ChaseContradictionError(str(outcome))
            if original == query:
                return outcome
            return rebase(outcome, stored, probe)
        try:
            result = chase(query, self.constraints, tracer=tracer,
                           budget=budget)
        except ChaseContradictionError as exc:
            self._chase.put(probe.key, (query, probe, exc))
            raise
        self._chase.put(probe.key, (query, probe, result))
        return result

    def minimize(self, query: Query, *, budget=None) -> Query:
        """Memoized :func:`~repro.rewriting.equivalence.minimize`."""
        from .equivalence import minimize
        if not self.enabled:
            return minimize(query, budget=budget)
        probe = canonicalize(query)
        value = self._minimize.get(probe.key)
        if value is not _MISS:
            original, stored, result = value
            if original == query:
                return result
            return rebase(result, stored, probe)
        result = minimize(query, budget=budget)
        self._minimize.put(probe.key, (query, probe, result))
        return result

    def decompose(self, rules: Sequence[Query]):
        """Memoized :func:`~repro.tsl.decompose.decompose_program`.

        Keyed on the exact rules (components carry the rules'
        variables, so only structurally identical programs share).
        """
        from ..tsl.decompose import decompose_program
        if not self.enabled:
            return decompose_program(rules)
        key = tuple(rules)
        value = self._decompose.get(key)
        if value is not _MISS:
            return value
        components = decompose_program(rules)
        self._decompose.put(key, components)
        return components

    def programs_equivalent(self, left: Sequence[Query],
                            right: Sequence[Query],
                            minimize_rules: bool = False, *,
                            tracer=None, budget=None,
                            right_key: str | None = None,
                            right_components=None) -> bool:
        """Memoized equivalence verdict (symmetric, canonical-keyed).

        Batching support: when one *right* side is tested against many
        candidates (the rewriter's Step 2), pass its precomputed
        *right_key* (``program_key(right)``) and *right_components*
        (prepared + decomposed) so neither is redone per candidate.
        Both must describe exactly *right* under this session's
        constraints.
        """
        from .equivalence import programs_equivalent
        left = list(left)
        right = list(right)
        if not self.enabled:
            return programs_equivalent(left, right, self.constraints,
                                       minimize_rules, tracer=tracer,
                                       budget=budget,
                                       right_components=right_components)
        left_key = program_key(left)
        if right_key is None:
            right_key = program_key(right)
        key = (left_key, right_key, minimize_rules)
        value = self._equivalence.get(key)
        if value is _MISS:
            # Equivalence is symmetric; probe the mirrored pair too
            # (counted against the same table).
            value = self._equivalence.get(
                (right_key, left_key, minimize_rules))
        if value is not _MISS:
            return value
        verdict = programs_equivalent(left, right, self.constraints,
                                      minimize_rules, tracer=tracer,
                                      budget=budget, session=self,
                                      right_components=right_components)
        self._equivalence.put(key, verdict)
        return verdict

    # -- candidate atoms and whole-result memoization ------------------------

    def candidate_atoms(self, target: Query, *, tracer=None, budget=None,
                        signature_prefilter: bool = False,
                        path_index: bool = True, stats=None):
        """Memoized Step 1A over the prepared views.

        ``covers`` indices are positions in the target's path list, so a
        hit is only served for a structurally identical target.  With
        *signature_prefilter*, Step 1A consults
        :meth:`signature_index`; the memo key includes that flag and
        *path_index* (the atoms are identical either way -- pre-filter
        and path index are both sound -- but the pruned/hit/skip counts
        stored with the entry are not), and a hit replays those counts
        onto *stats*.
        """
        from .rewriter import RewriteStats, view_instantiations
        index = self.signature_index(tracer=tracer, budget=budget) \
            if signature_prefilter else None
        if not self.enabled:
            return view_instantiations(target, self.views,
                                       self.constraints, tracer=tracer,
                                       budget=budget, session=self,
                                       signature_index=index,
                                       path_index=path_index, stats=stats)
        probe = canonicalize(target)
        key = (probe.key, signature_prefilter, path_index)
        value = self._atoms.peek(key)
        if value is not _MISS:
            stored, atoms, pruned, hits, skips = value
            if stored == target:
                self._atoms.record_hit()
                if stats is not None:
                    stats.views_pruned_signature += pruned
                    stats.index_hits += hits
                    stats.index_skips += skips
                return list(atoms)
        self._atoms.record_miss()
        counter = RewriteStats()
        atoms = view_instantiations(target, self.views, self.constraints,
                                    tracer=tracer, budget=budget,
                                    session=self, signature_index=index,
                                    path_index=path_index, stats=counter)
        if stats is not None:
            stats.views_pruned_signature += counter.views_pruned_signature
            stats.index_hits += counter.index_hits
            stats.index_skips += counter.index_skips
        self._atoms.put(key, (target, tuple(atoms),
                              counter.views_pruned_signature,
                              counter.index_hits, counter.index_skips))
        return atoms

    def rewrite(self, query: Query, **kwargs):
        """Memoized :func:`~repro.rewriting.rewriter.rewrite`.

        Keyword arguments are the searched-affecting flags of
        ``rewrite()`` (``heuristic``, ``total_only``, ...) plus
        ``tracer``/``budget``/``metrics``.  Complete results are cached
        per (canonical query, flags); truncated results are returned but
        never stored.
        """
        from .rewriter import rewrite
        return rewrite(query, self.views, self.constraints,
                       session=self, **kwargs)

    def lookup_result(self, query: Query, flags: tuple, *,
                      need_explanation: bool = False):
        """The memoized ``(result, explanation)`` for (query, flags).

        Returns None on a miss.  With *need_explanation*, an entry
        stored without a decision log is treated as a miss (the caller
        recomputes and :meth:`store_result` upgrades the entry); the
        stored explanation is replayed so warm-session EXPLAIN output is
        byte-identical to the cold run.  The lookup itself is timed into
        ``phase.seconds{phase=memo_lookup}`` when the session has a
        metrics registry.
        """
        if not self.enabled:
            return None
        started = time.perf_counter() if self.metrics is not None else 0.0
        try:
            probe = canonicalize(query)
            value = self._results.peek((probe.key, flags))
            if value is not _MISS:
                stored, result, explanation = value
                if stored == query and not (need_explanation
                                            and explanation is None):
                    self._results.record_hit()
                    return result, explanation
            self._results.record_miss()
            return None
        finally:
            if self.metrics is not None:
                self.metrics.observe(PHASE_SECONDS,
                                     time.perf_counter() - started,
                                     labels={"phase": "memo_lookup"})

    def store_result(self, query: Query, flags: tuple, result,
                     explain=None) -> None:
        """Memoize a complete result (and its decision log, if any)."""
        if not self.enabled or result.stats.truncated:
            return
        probe = canonicalize(query)
        explanation = explain.snapshot() if explain is not None else None
        self._results.put((probe.key, flags),
                          (query, result, explanation))

    def result_entries(self) -> list:
        """The rewrite-result memo's ``((key, flags), (query, result,
        explanation))`` pairs in LRU order -- what
        :class:`repro.storage.registry.SessionRegistry` persists."""
        return self._results.items_snapshot()

    # -- introspection -------------------------------------------------------

    def stats(self) -> dict:
        """Per-table memo statistics (JSON-serializable)."""
        return {table.name: table.stats()
                for table in (self._chase, self._minimize,
                              self._equivalence, self._decompose,
                              self._atoms, self._results)}
