"""Label/source/depth inverted index over target paths (hot-path kernel).

:func:`~repro.rewriting.mappings.body_mappings` is a backtracking search
that, at every node, tries to map one source path into *every* target
path.  Most of those attempts are doomed before any variable is bound:
``map_path_into`` matches one-way (only source-side variables bind), so a
source path whose step carries a *constant* label can only ever map into
a target path carrying the *same* constant label at the same depth, and
likewise for constant oids and constant leaves.  Those facts are static
-- they do not depend on the substitution accumulated so far -- so they
can be indexed once per target body and consulted in O(1) per search
node instead of re-discovered by a failed match.

:class:`PathIndex` builds postings ``(source, depth, label) -> [target
indices]`` plus a per-source bucket, and :meth:`PathIndex.candidates`
intersects the relevant postings for a source path, final-filtering with
:func:`statically_compatible`.  Candidates are returned in ascending
target order, so an indexed search enumerates mappings in *exactly* the
order the unindexed scan does -- parity is list equality, not just set
equality (the "index" fuzz oracle relies on this).

Soundness: every pair :meth:`candidates` prunes is one where
``map_path_into`` provably returns ``None`` for *any* substitution.
Target-side variables are never bound by ``match``, and the substitution
only rewrites the source side, so a constant/constant mismatch (or a
source/depth/leaf-shape mismatch) can never be repaired later in the
search.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..logic.terms import Constant
from ..tsl.ast import SetPattern
from ..tsl.normalize import Path

__all__ = ["IndexStats", "PathIndex", "statically_compatible"]


@dataclass
class IndexStats:
    """Tally of index effectiveness for one mapping search.

    ``hits`` counts (source path, target path) pairs the index let
    through; ``skips`` counts pairs it proved impossible without running
    ``map_path_into``.  Both are counted once per source path -- the
    candidate set is substitution-independent, so it is computed before
    the backtracking search, not per search node.
    """

    hits: int = 0
    skips: int = 0

    def merge(self, other: "IndexStats") -> None:
        self.hits += other.hits
        self.skips += other.skips


def statically_compatible(a: Path, b: Path) -> bool:
    """True unless *a* can never map into *b* under any substitution.

    Mirrors the unconditional failure branches of ``map_path_into`` /
    ``_map_leaf``: source and length checks, constant-vs-constant step
    components, and the leaf shape rules.  A ``True`` here does *not*
    imply a mapping exists (variables may still clash) -- it only means
    the attempt is not statically doomed.
    """
    if a.source != b.source or len(a.steps) > len(b.steps):
        return False
    for (a_oid, a_label), (b_oid, b_label) in zip(a.steps, b.steps):
        # match() binds only source-side variables: a constant on the
        # source side must literally reappear on the target side.
        if isinstance(a_label, Constant) and (
                not isinstance(b_label, Constant)
                or b_label.value != a_label.value):
            return False
        if isinstance(a_oid, Constant) and (
                not isinstance(b_oid, Constant)
                or b_oid.value != a_oid.value):
            return False
    n, m = len(a.steps), len(b.steps)
    a_leaf = a.leaf
    if isinstance(a_leaf, SetPattern):
        # "is a set object": b must continue deeper or itself end in {}.
        return n < m or isinstance(b.leaf, SetPattern)
    if isinstance(a_leaf, Constant):
        # A constant leaf refuses set mappings (n < m) and the bare-set
        # absorption (b.leaf a SetPattern); it must equal b's leaf.
        return (n == m and isinstance(b.leaf, Constant)
                and b.leaf.value == a_leaf.value)
    return True


class PathIndex:
    """Inverted index over one target body's paths.

    Build once per target query (or per registered view, inside a
    precompiled plan); query with :meth:`candidates` for each source
    path of a mapping search.
    """

    __slots__ = ("paths", "_by_source", "_label_postings")

    def __init__(self, target_paths: list[Path] | tuple[Path, ...]):
        self.paths: tuple[Path, ...] = tuple(target_paths)
        by_source: dict[str | None, list[int]] = {}
        postings: dict[tuple[str | None, int, object], list[int]] = {}
        for position, path in enumerate(self.paths):
            by_source.setdefault(path.source, []).append(position)
            for depth, (_oid, label) in enumerate(path.steps):
                if isinstance(label, Constant):
                    postings.setdefault(
                        (path.source, depth, label.value),
                        []).append(position)
        self._by_source = by_source
        self._label_postings = postings

    def __len__(self) -> int:
        return len(self.paths)

    def candidates(self, source_path: Path) -> list[int]:
        """Ascending target indices *source_path* could map into.

        Starts from the same-source bucket, narrows by the smallest
        posting among the source path's constant labels (a target must
        carry every one of them at the right depth), then final-filters
        with :func:`statically_compatible`.  Ascending order keeps the
        enumeration order identical to the full scan.
        """
        base = self._by_source.get(source_path.source)
        if not base:
            return []
        for depth, (_oid, label) in enumerate(source_path.steps):
            if isinstance(label, Constant):
                posting = self._label_postings.get(
                    (source_path.source, depth, label.value))
                if not posting:
                    return []
                if len(posting) < len(base):
                    base = posting
        paths = self.paths
        return [position for position in base
                if statically_compatible(source_path, paths[position])]

    def stats_for(self,
                  candidate_lists: list[list[int]]) -> IndexStats:
        """Hit/skip tally for precomputed candidate lists."""
        total = len(self.paths)
        stats = IndexStats()
        for candidates in candidate_lists:
            stats.hits += len(candidates)
            stats.skips += total - len(candidates)
        return stats
