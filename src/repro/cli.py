"""Command-line interface: validate, evaluate, and rewrite TSL queries.

Usage (installed as ``python -m repro``)::

    python -m repro validate QUERY.tsl
    python -m repro evaluate QUERY.tsl --db DATA.json [--dot]
    python -m repro rewrite QUERY.tsl --view NAME=VIEW.tsl ... \
        [--dtd FILE.dtd] [--total] [--contained]
    python -m repro import-xml DOC.xml -o DATA.json

Queries and views are TSL text files (``%`` comments allowed); databases
are the JSON encoding of :mod:`repro.oem.serialize`; XML documents import
through :mod:`repro.xmlbridge`.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .errors import ReproError
from .oem.dot import to_dot
from .oem.serialize import dumps, loads
from .rewriting import (maximally_contained_rewritings, parse_dtd, rewrite)
from .tsl import evaluate, parse_query, print_query, validate
from .xmlbridge import dtd_from_document, xml_to_oem


def _read(path: str) -> str:
    return Path(path).read_text(encoding="utf-8")


def _load_query(path: str):
    return validate(parse_query(_read(path)))


def _cmd_validate(args: argparse.Namespace) -> int:
    query = _load_query(args.query)
    print("ok:", print_query(query))
    return 0


def _cmd_evaluate(args: argparse.Namespace) -> int:
    query = _load_query(args.query)
    db = loads(_read(args.db))
    answer = evaluate(query, db)
    if args.dot:
        print(to_dot(answer, graph_name="answer"))
    else:
        print(dumps(answer, indent=2))
    print(f"# {len(answer.roots)} root object(s), "
          f"{answer.stats()['objects']} objects", file=sys.stderr)
    return 0


def _parse_view_spec(spec: str):
    if "=" not in spec:
        raise ReproError(
            f"--view expects NAME=FILE, got {spec!r}")
    name, _, path = spec.partition("=")
    return name, parse_query(_read(path), name=name)


def _cmd_rewrite(args: argparse.Namespace) -> int:
    query = _load_query(args.query)
    views = dict(_parse_view_spec(spec) for spec in args.view)
    constraints = None
    if args.dtd:
        constraints = parse_dtd(_read(args.dtd))
    if args.contained:
        outcome = maximally_contained_rewritings(
            query, views, constraints, total_only=args.total)
        rewritings = [(r.query, "equivalent" if r.is_equivalent
                       else "contained") for r in outcome.rewritings]
    else:
        result = rewrite(query, views, constraints,
                         total_only=args.total)
        rewritings = [(r.query, "equivalent") for r in result.rewritings]
    if not rewritings:
        print("no rewriting found", file=sys.stderr)
        return 1
    for rewriting, flavor in rewritings:
        print(f"% {flavor}")
        print(print_query(rewriting, multiline=True))
    return 0


def _cmd_import_xml(args: argparse.Namespace) -> int:
    text = _read(args.document)
    db = xml_to_oem(text, name=args.name)
    encoded = dumps(db, indent=2)
    if args.output:
        Path(args.output).write_text(encoded, encoding="utf-8")
    else:
        print(encoded)
    dtd = dtd_from_document(text)
    if dtd is not None:
        print(f"# internal DTD found ({len(dtd.elements)} elements); "
              "pass it to rewrite via --dtd", file=sys.stderr)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Query rewriting for semistructured data "
                    "(SIGMOD 1999 reproduction)")
    commands = parser.add_subparsers(dest="command", required=True)

    validate_cmd = commands.add_parser(
        "validate", help="parse + validate a TSL query file")
    validate_cmd.add_argument("query")
    validate_cmd.set_defaults(handler=_cmd_validate)

    evaluate_cmd = commands.add_parser(
        "evaluate", help="evaluate a TSL query over a JSON OEM database")
    evaluate_cmd.add_argument("query")
    evaluate_cmd.add_argument("--db", required=True,
                              help="database JSON file")
    evaluate_cmd.add_argument("--dot", action="store_true",
                              help="emit Graphviz DOT instead of JSON")
    evaluate_cmd.set_defaults(handler=_cmd_evaluate)

    rewrite_cmd = commands.add_parser(
        "rewrite", help="find rewritings of a query using views")
    rewrite_cmd.add_argument("query")
    rewrite_cmd.add_argument("--view", action="append", default=[],
                             metavar="NAME=FILE", required=True)
    rewrite_cmd.add_argument("--dtd", help="structural constraints file")
    rewrite_cmd.add_argument("--total", action="store_true",
                             help="views-only (total) rewritings")
    rewrite_cmd.add_argument("--contained", action="store_true",
                             help="maximally contained instead of "
                                  "equivalent rewritings")
    rewrite_cmd.set_defaults(handler=_cmd_rewrite)

    import_cmd = commands.add_parser(
        "import-xml", help="convert an XML document to OEM JSON")
    import_cmd.add_argument("document")
    import_cmd.add_argument("-o", "--output")
    import_cmd.add_argument("--name", default="db",
                            help="database/source name (default: db)")
    import_cmd.set_defaults(handler=_cmd_import_xml)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
