"""Command-line interface: validate, lint, evaluate, and rewrite TSL queries.

Usage (installed as ``python -m repro``)::

    python -m repro validate QUERY.tsl
    python -m repro lint QUERY.tsl [--view NAME=V.tsl ...] [--dtd FILE] \
        [--format text|json|sarif] [--strict]
    python -m repro lint --views-only --view NAME=V.tsl ... [--dtd FILE] \
        [--format text|json|sarif] [--strict]
    python -m repro check-views CONFIG.json [--format text|json|sarif] \
        [--baseline FILE] [--update-baseline] [--strict]
    python -m repro evaluate QUERY.tsl --db DATA.json [--dot] \
        [--trace OUT] [--trace-format jsonl|chrome|text]
    python -m repro rewrite QUERY.tsl --view NAME=VIEW.tsl ... \
        [--dtd FILE.dtd] [--total] [--contained] [--format text|json] \
        [--trace OUT] [--trace-format jsonl|chrome|text] \
        [--budget-ms N] [--max-steps N] [--max-candidates N] \
        [--no-memo] [--memo-size N] [--no-signature-prefilter] \
        [--no-path-index]
    python -m repro explain QUERY.tsl --view NAME=VIEW.tsl ... \
        [--dtd FILE.dtd] [--total] [--format text|json] \
        [--budget-ms N] [--max-steps N] [--max-candidates N] \
        [--no-memo] [--no-signature-prefilter] [--no-path-index]
    python -m repro metrics [QUERY.tsl --view NAME=VIEW.tsl ...] \
        [--dtd FILE.dtd] [--format prom|json] [--url http://HOST:PORT]
    python -m repro serve [--host H] [--port N] [--workers N] \
        [--max-pending N] [--max-sessions N] [--budget-ms N] \
        [--max-steps N] [--cache-dir ROOT] [--access-log PATH] \
        [--slow-ms N] [--recorder-capacity N] [--no-recorder]
    python -m repro top --url http://HOST:PORT [--interval S] \
        [--once] [--count N]
    python -m repro db init ROOT [--name N] [--shards N] [--force]
    python -m repro db ingest ROOT --db DATA.json [--compact]
    python -m repro db stats ROOT
    python -m repro db flush ROOT
    python -m repro db compact ROOT
    python -m repro import-xml DOC.xml -o DATA.json
    python -m repro fuzz [--seed N] [--iterations N] [--budget-seconds S] \
        [--oracle NAME ...] [--profile NAME ...] [--corpus DIR] \
        [--replay FILE] [--no-shrink] [--format text|json] \
        [--trace OUT] [--trace-format jsonl|chrome|text]

Queries and views are TSL text files (``%`` comments allowed); databases
are the JSON encoding of :mod:`repro.oem.serialize`; XML documents import
through :mod:`repro.xmlbridge`.

``lint`` runs the :mod:`repro.analysis` static analyzer (diagnostic
codes ``TSLxxx``, see ``docs/LINTING.md``) and exits 0 when clean, 1
when only warnings were found and ``--strict`` is set, and 2 on errors.
``validate`` and ``rewrite`` render their parse/validation failures
through the same span-aware renderer (source line + caret underline).

``check-views`` analyzes a whole mediator configuration (views +
optional DTD + capability records) with the viewset passes (``TSL4xx``:
duplicate, subsumed, DTD-unsatisfiable, unsafe, and capability-
unreachable views).  ``--baseline`` suppresses known findings by
fingerprint and gates only on new ones; ``--format sarif`` emits SARIF
2.1.0 for code-scanning upload.  Exit codes match ``lint``.

``fuzz`` runs the :mod:`repro.oracle` differential-testing campaign
(see ``docs/TESTING.md``); it exits 0 when all oracles were green, 1
when a counterexample was found, and 2 on usage/environment errors.

``rewrite`` can trace and bound the (worst-case exponential) search:
``--trace`` writes the :mod:`repro.obs` span tree, ``--budget-ms`` /
``--max-steps`` stop a runaway search and return partial results
flagged ``truncated`` (see ``docs/OBSERVABILITY.md``).  ``evaluate``
and ``fuzz`` accept the same ``--trace`` flags.

``explain`` runs the same search with the EXPLAIN decision log
attached and prints, per view, the containment mappings found or the
reason none exists, and, per enumerated candidate, its conjunction and
verdict (accepted, pruned, or where the chase / composition /
equivalence test failed).  ``metrics`` runs a workload (the paper's
Q3/Q5/Q7 over V1 by default) against a fresh registry and renders it
as Prometheus text exposition or JSON.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .analysis import (Diagnostic, Severity, analyze, analyze_view_set,
                       load_config, render_json, render_sarif, render_text)
from .errors import ReproError, TslError, TslSyntaxError
from .obs import (TRACE_FORMATS, Budget, MetricsRegistry, Tracer,
                  render_prometheus, write_trace)
from .oem.dot import to_dot
from .oem.serialize import dumps, loads
from .rewriting import (DEFAULT_MEMO_SIZE, Explanation, RewriteSession,
                        maximally_contained_rewritings, parse_dtd)
from .tsl import evaluate, parse_query, print_query, validate
from .xmlbridge import dtd_from_document, xml_to_oem

#: Diagnostic code under which syntax errors appear in lint reports.
SYNTAX_CODE = "TSL000"


class RenderedError(ReproError):
    """A failure whose message is already fully rendered for the user."""


def _read(path: str) -> str:
    return Path(path).read_text(encoding="utf-8")


def _error_diagnostic(exc: TslError, file: str) -> Diagnostic:
    """The diagnostic form of a syntax/validation exception."""
    code = getattr(exc, "code", None) or SYNTAX_CODE
    message = getattr(exc, "message", None) or str(exc)
    return Diagnostic(code, Severity.ERROR, message,
                      span=getattr(exc, "span", None), file=file)


def _render_tsl_error(exc: TslError, text: str, path: str) -> str:
    return render_text(_error_diagnostic(exc, path), text=text)


def _load_query(path: str):
    text = _read(path)
    try:
        return validate(parse_query(text))
    except TslError as exc:
        raise RenderedError(_render_tsl_error(exc, text, path)) from exc


def _cmd_validate(args: argparse.Namespace) -> int:
    query = _load_query(args.query)
    print("ok:", print_query(query))
    return 0


def _write_trace_if_requested(tracer, args) -> None:
    if tracer is None:
        return
    write_trace(tracer, args.trace, args.trace_format)
    print(f"# trace: {len(tracer.spans)} span(s) written to "
          f"{args.trace} ({args.trace_format})", file=sys.stderr)


def _cmd_evaluate(args: argparse.Namespace) -> int:
    query = _load_query(args.query)
    db = loads(_read(args.db))
    tracer = Tracer() if args.trace else None
    answer = evaluate(query, db, tracer=tracer)
    _write_trace_if_requested(tracer, args)
    if args.dot:
        print(to_dot(answer, graph_name="answer"))
    else:
        print(dumps(answer, indent=2))
    print(f"# {len(answer.roots)} root object(s), "
          f"{answer.stats()['objects']} objects", file=sys.stderr)
    return 0


def _split_view_spec(spec: str) -> tuple[str, str]:
    if "=" not in spec:
        raise ReproError(
            f"--view expects NAME=FILE, got {spec!r}")
    name, _, path = spec.partition("=")
    return name, path


def _parse_view_spec(spec: str):
    name, path = _split_view_spec(spec)
    text = _read(path)
    try:
        return name, parse_query(text, name=name)
    except TslError as exc:
        raise RenderedError(_render_tsl_error(exc, text, path)) from exc


def _cmd_rewrite(args: argparse.Namespace) -> int:
    import json as json_module

    query = _load_query(args.query)
    views = dict(_parse_view_spec(spec) for spec in args.view)
    constraints = None
    if args.dtd:
        constraints = parse_dtd(_read(args.dtd))
    tracer = Tracer() if args.trace else None
    budget = None
    if args.budget_ms is not None or args.max_steps is not None:
        budget = Budget(deadline_ms=args.budget_ms,
                        max_steps=args.max_steps)
    stats = None
    if args.contained:
        outcome = maximally_contained_rewritings(
            query, views, constraints, total_only=args.total,
            tracer=tracer, budget=budget)
        rewritings = [(r.query, "equivalent" if r.is_equivalent
                       else "contained") for r in outcome.rewritings]
        truncated, stop_reason = outcome.truncated, outcome.stop_reason
    else:
        session = RewriteSession(views, constraints,
                                 memo_size=args.memo_size,
                                 enabled=not args.no_memo)
        result = session.rewrite(
            query, total_only=args.total,
            max_candidates=args.max_candidates,
            signature_prefilter=not args.no_signature_prefilter,
            path_index=not args.no_path_index,
            tracer=tracer, budget=budget)
        rewritings = [(r.query, "equivalent") for r in result.rewritings]
        truncated, stop_reason = result.truncated, result.stats.stop_reason
        stats = result.stats

    _write_trace_if_requested(tracer, args)
    if truncated:
        print(f"warning: search truncated ({stop_reason}); "
              "the rewritings found so far are sound but the set may "
              "be incomplete", file=sys.stderr)

    if args.format == "json":
        payload = {
            "rewritings": [
                {"query": print_query(rewriting), "flavor": flavor}
                for rewriting, flavor in rewritings],
            "truncated": truncated,
            "stop_reason": stop_reason,
        }
        if stats is not None:
            payload["stats"] = stats.to_json()
        print(json_module.dumps(payload, indent=2))
        return 0 if rewritings else 1

    if not rewritings:
        print("no rewriting found", file=sys.stderr)
        return 1
    for rewriting, flavor in rewritings:
        print(f"% {flavor}")
        print(print_query(rewriting, multiline=True))
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    import json as json_module

    query = _load_query(args.query)
    views = dict(_parse_view_spec(spec) for spec in args.view)
    constraints = parse_dtd(_read(args.dtd)) if args.dtd else None
    tracer = Tracer() if args.trace else None
    budget = None
    if args.budget_ms is not None or args.max_steps is not None:
        budget = Budget(deadline_ms=args.budget_ms,
                        max_steps=args.max_steps)
    explanation = Explanation()
    session = RewriteSession(views, constraints,
                             memo_size=args.memo_size,
                             enabled=not args.no_memo)
    result = session.rewrite(
        query, total_only=args.total,
        max_candidates=args.max_candidates,
        signature_prefilter=not args.no_signature_prefilter,
        path_index=not args.no_path_index,
        tracer=tracer, budget=budget, explain=explanation)
    _write_trace_if_requested(tracer, args)
    if args.format == "json":
        print(json_module.dumps(explanation.to_json(), indent=2))
    else:
        print(explanation.render_text())
    return 0 if result.rewritings else 1


def _metrics_url(base: str) -> str:
    """Normalize --url: accept the server base or the full /metrics URL."""
    base = base.rstrip("/")
    return base if base.endswith("/metrics") else f"{base}/metrics"


def _cmd_metrics(args: argparse.Namespace) -> int:
    import json as json_module

    if getattr(args, "url", None):
        # Scrape a live server instead of running an in-process
        # workload; shares the client helper with `repro top`.
        from .server.client import ClientError, fetch_text, \
            parse_prometheus
        if args.query or args.view or args.dtd:
            raise ReproError("metrics --url scrapes a live server; it "
                             "takes no query/--view/--dtd")
        try:
            text = fetch_text(_metrics_url(args.url))
        except ClientError as exc:
            raise ReproError(str(exc)) from exc
        if args.format == "json":
            print(json_module.dumps(parse_prometheus(text), indent=2,
                                    default=str))
        else:
            print(text, end="")
        return 0

    registry = MetricsRegistry()
    if args.query:
        if not args.view:
            raise ReproError("metrics QUERY requires at least one --view")
        query = _load_query(args.query)
        views = dict(_parse_view_spec(spec) for spec in args.view)
        constraints = parse_dtd(_read(args.dtd)) if args.dtd else None
        workload = [query]
    else:
        # Built-in workload: the paper's running example (Q3, Q5, Q7
        # over V1 with the Section 3.3 DTD).
        from .rewriting import paper_dtd
        from .workloads import query_q3, query_q5, query_q7, view_v1
        views = {"V1": view_v1()}
        constraints = paper_dtd()
        workload = [query_q3(), query_q5(), query_q7()]
    session = RewriteSession(views, constraints, metrics=registry)
    for target in workload:
        # Two passes per query: the second feeds the memo_lookup
        # histogram with a hit.
        session.rewrite(target, metrics=registry)
        session.rewrite(target, metrics=registry)
    if args.format == "json":
        print(json_module.dumps(registry.snapshot(), indent=2))
    else:
        print(render_prometheus(registry), end="")
    return 0


def _severity_exit(diagnostics: list[Diagnostic], strict: bool) -> int:
    """The lint-family exit code: 2 on errors, 1 on strict warnings."""
    if any(d.severity is Severity.ERROR for d in diagnostics):
        return 2
    if strict and any(d.severity is Severity.WARNING
                      for d in diagnostics):
        return 1
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    if args.views_only:
        if args.query:
            raise ReproError("lint --views-only takes no query; pass the "
                             "view set via --view")
        if not args.view:
            raise ReproError("lint --views-only requires at least one "
                             "--view")
    elif not args.query:
        raise ReproError("lint requires a query file (or --views-only "
                         "with --view)")

    texts: dict[str, str] = {}
    diagnostics: list[Diagnostic] = []

    query = None
    if not args.views_only:
        path = args.query
        text = _read(path)
        texts[path] = text
        try:
            query = parse_query(text)
        except TslSyntaxError as exc:
            diagnostics.append(_error_diagnostic(exc, path))

    views = {}
    view_files = {}
    for spec in args.view:
        name, view_path = _split_view_spec(spec)
        view_text = _read(view_path)
        texts[view_path] = view_text
        try:
            views[name] = parse_query(view_text, name=name)
            view_files[name] = view_path
        except TslSyntaxError as exc:
            diagnostics.append(_error_diagnostic(exc, view_path))

    dtd = parse_dtd(_read(args.dtd)) if args.dtd else None

    if query is not None:
        diagnostics.extend(analyze(
            query, source_text=text, source_name=path,
            views=views, view_files=view_files, dtd=dtd))
    for name, view_query in views.items():
        view_path = view_files[name]
        diagnostics.extend(analyze(
            view_query, source_text=texts[view_path],
            source_name=view_path, dtd=dtd))
    if args.views_only:
        diagnostics.extend(analyze_view_set(
            views, view_files=view_files, dtd=dtd))

    if args.format == "json":
        print(render_json(diagnostics))
    elif args.format == "sarif":
        print(render_sarif(diagnostics), end="")
    else:
        for diag in diagnostics:
            print(render_text(diag, text=texts.get(diag.file)))
        errors = sum(d.severity is Severity.ERROR for d in diagnostics)
        warnings = sum(d.severity is Severity.WARNING for d in diagnostics)
        if diagnostics:
            print(f"{len(diagnostics)} finding(s): {errors} error(s), "
                  f"{warnings} warning(s)", file=sys.stderr)
        else:
            print("clean: no findings", file=sys.stderr)

    return _severity_exit(diagnostics, args.strict)


def _cmd_check_views(args: argparse.Namespace) -> int:
    from .analysis.viewset.baseline import load_baseline, write_baseline

    config = load_config(args.config)
    diagnostics = list(config.diagnostics)
    diagnostics.extend(analyze_view_set(
        config.views, view_files=config.view_files, dtd=config.dtd,
        capabilities=config.capabilities,
        capability_files=config.capability_files))

    if args.update_baseline:
        if not args.baseline:
            raise ReproError("--update-baseline requires --baseline FILE "
                             "(the file to rewrite)")
        write_baseline(args.baseline, diagnostics)
        print(f"baseline {args.baseline} updated: "
              f"{len(diagnostics)} suppression(s)", file=sys.stderr)
        return 0

    suppressed_count = 0
    reported = diagnostics
    if args.baseline:
        baseline = load_baseline(args.baseline)
        reported, suppressed = baseline.partition(diagnostics)
        suppressed_count = len(suppressed)

    if args.format == "json":
        print(render_json(reported))
    elif args.format == "sarif":
        print(render_sarif(reported, tool_name="repro-check-views"),
              end="")
    else:
        for diag in reported:
            print(render_text(diag, text=config.texts.get(diag.file)))
        errors = sum(d.severity is Severity.ERROR for d in reported)
        warnings = sum(d.severity is Severity.WARNING for d in reported)
        suffix = (f"; {suppressed_count} suppressed by baseline"
                  if args.baseline else "")
        noun = "new finding(s)" if args.baseline else "finding(s)"
        if reported:
            print(f"{len(reported)} {noun}: {errors} error(s), "
                  f"{warnings} warning(s){suffix}", file=sys.stderr)
        else:
            clean = "new findings" if args.baseline else "findings"
            print(f"clean: no {clean}{suffix}", file=sys.stderr)

    return _severity_exit(reported, args.strict)


def _cmd_fuzz(args: argparse.Namespace) -> int:
    import json as json_module

    from .oracle import (DEFAULT_ORACLES, DEFAULT_PROFILE_ROTATION, PROFILES,
                         FuzzConfig, replay, run_fuzz)

    oracles = tuple(args.oracle) if args.oracle else DEFAULT_ORACLES
    tracer = Tracer() if args.trace else None
    if args.replay:
        if tracer is not None:
            raise ReproError("--trace is not supported with --replay "
                             "(replay runs no fuzz loop to trace)")
        report = replay(args.replay, oracles)
    else:
        profiles = tuple(args.profile) if args.profile \
            else DEFAULT_PROFILE_ROTATION
        unknown = set(profiles) - set(PROFILES)
        if unknown:
            raise ReproError(f"unknown profile(s): {sorted(unknown)}; "
                             f"available: {sorted(PROFILES)}")
        report = run_fuzz(FuzzConfig(
            seed=args.seed,
            iterations=args.iterations,
            budget_seconds=args.budget_seconds,
            oracles=oracles,
            profiles=profiles,
            shrink=not args.no_shrink,
            corpus_dir=args.corpus,
        ), tracer=tracer)
    _write_trace_if_requested(tracer, args)
    if args.format == "json":
        print(json_module.dumps(report.to_json(), indent=2))
    else:
        print(report.summary())
        for failure in report.failures:
            print(f"- [{failure.oracle}/{failure.invariant}] "
                  f"seed={failure.seed} profile={failure.profile} "
                  f"conditions={failure.conditions}")
            print(f"  {failure.message}")
            if failure.corpus_path:
                print(f"  saved: {failure.corpus_path}")
    return 0 if report.ok else 1


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    import signal

    from .server import ReproServer, ServerConfig

    config = ServerConfig(
        host=args.host, port=args.port, workers=args.workers,
        max_pending=args.max_pending, max_sessions=args.max_sessions,
        default_budget_ms=args.budget_ms,
        default_max_steps=args.max_steps,
        cache_dir=args.cache_dir,
        recorder=not args.no_recorder,
        recorder_capacity=args.recorder_capacity,
        slow_ms=args.slow_ms,
        access_log=args.access_log)
    server = ReproServer(config)

    async def _run() -> None:
        await server.start()
        print(f"serving on http://{config.host}:{server.port} "
              f"(workers={config.workers}, "
              f"max_pending={config.max_pending})", file=sys.stderr)
        await server.serve_forever()

    def _terminate(signum, frame):
        raise KeyboardInterrupt

    try:
        # A supervisor stops the service with SIGTERM; route it through
        # the same graceful path as ctrl-C so warm memos still flush.
        signal.signal(signal.SIGTERM, _terminate)
    except ValueError:
        pass  # not the main thread; signals stay with the embedder

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:
        print("shutting down", file=sys.stderr)
        # The loop died before stop() ran; persist the warm session
        # memos so the next start answers repeats as memo hits.
        server.pool.save_sessions()
        server.pool.shutdown()
    return 0


def _cmd_top(args: argparse.Namespace) -> int:
    """Poll a live server's /debug + /metrics into a text dashboard."""
    import time as time_module

    from .server.client import (ClientError, gather_status,
                                render_dashboard)

    iterations = 1 if args.once else args.count
    rendered = 0
    while iterations is None or rendered < iterations:
        try:
            status = gather_status(args.url)
        except ClientError as exc:
            raise ReproError(str(exc)) from exc
        screen = render_dashboard(status)
        if not args.once and sys.stdout.isatty():
            print("\x1b[2J\x1b[H" + screen, flush=True)
        else:
            print(screen, flush=True)
        rendered += 1
        if iterations is not None and rendered >= iterations:
            break
        try:
            time_module.sleep(args.interval)
        except KeyboardInterrupt:
            break
    return 0


def _db_shard_entries(layout) -> list[int]:
    """Entry count per persisted cache shard (0 for absent files)."""
    import json

    manifest = layout.read_manifest()
    counts = []
    for index in range(manifest.get("cache_shards", 0)):
        path = layout.shard_path(index)
        try:
            document = json.loads(path.read_text(encoding="utf-8"))
            counts.append(len(document.get("entries", [])))
        except (OSError, ValueError):
            counts.append(0)
    return counts


def _cmd_db_init(args: argparse.Namespace) -> int:
    from .storage import DurableStore

    store = DurableStore.create(args.root, args.name,
                                cache_shards=args.shards,
                                force=args.force)
    store.close()
    print(f"initialized store {args.name!r} at {args.root} "
          f"({args.shards} cache shards)", file=sys.stderr)
    return 0


def _cmd_db_ingest(args: argparse.Namespace) -> int:
    from .storage import DurableStore

    db = loads(_read(args.db))
    with DurableStore.open(args.root) as store:
        records = store.ingest(db)
        if args.compact:
            store.compact()
        version = store.version
    print(f"ingested {records} records; store version {version}",
          file=sys.stderr)
    return 0


def _cmd_db_stats(args: argparse.Namespace) -> int:
    """Deterministic storage statistics (byte-stable across runs)."""
    import json

    from .storage import DurableStore, SessionRegistry

    with DurableStore.open(args.root) as store:
        payload = {"store": store.stats(),
                   "cache": {"shards": store.cache_shards,
                             "entries": _db_shard_entries(store.layout)},
                   "sessions": SessionRegistry(store.layout).stats()}
    print(json.dumps(payload, indent=1, sort_keys=True))
    return 0


def _cmd_db_flush(args: argparse.Namespace) -> int:
    from .storage import DurableStore

    with DurableStore.open(args.root) as store:
        store.flush()
    print(f"flushed {args.root}", file=sys.stderr)
    return 0


def _cmd_db_compact(args: argparse.Namespace) -> int:
    from .storage import DurableStore

    with DurableStore.open(args.root) as store:
        outcome = store.compact()
    print(f"compacted {args.root}: version {outcome['version']}, "
          f"{outcome['objects']} objects, "
          f"{outcome['snapshot_bytes']} snapshot bytes", file=sys.stderr)
    return 0


def _cmd_import_xml(args: argparse.Namespace) -> int:
    text = _read(args.document)
    db = xml_to_oem(text, name=args.name)
    encoded = dumps(db, indent=2)
    if args.output:
        Path(args.output).write_text(encoded, encoding="utf-8")
    else:
        print(encoded)
    dtd = dtd_from_document(text)
    if dtd is not None:
        print(f"# internal DTD found ({len(dtd.elements)} elements); "
              "pass it to rewrite via --dtd", file=sys.stderr)
    return 0


def _add_trace_flags(cmd: argparse.ArgumentParser) -> None:
    cmd.add_argument("--trace", metavar="OUT",
                     help="write the pipeline span tree to this file "
                          "(see docs/OBSERVABILITY.md)")
    cmd.add_argument("--trace-format", choices=TRACE_FORMATS,
                     default="jsonl",
                     help="trace file format (default: jsonl; chrome "
                          "loads in Perfetto)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Query rewriting for semistructured data "
                    "(SIGMOD 1999 reproduction)")
    commands = parser.add_subparsers(dest="command", required=True)

    validate_cmd = commands.add_parser(
        "validate", help="parse + validate a TSL query file")
    validate_cmd.add_argument("query")
    validate_cmd.set_defaults(handler=_cmd_validate)

    lint_cmd = commands.add_parser(
        "lint", help="run the TSL static analyzer over a query "
                     "(and optionally views / a DTD)")
    lint_cmd.add_argument("query", nargs="?",
                          help="query file (omit with --views-only)")
    lint_cmd.add_argument("--view", action="append", default=[],
                          metavar="NAME=FILE",
                          help="view definitions to lint alongside "
                               "the query (repeatable)")
    lint_cmd.add_argument("--views-only", action="store_true",
                          help="lint only the --view set, including the "
                               "whole-configuration TSL4xx passes")
    lint_cmd.add_argument("--dtd",
                          help="structural constraints file; enables the "
                               "TSL2xx satisfiability lints")
    lint_cmd.add_argument("--format", choices=("text", "json", "sarif"),
                          default="text")
    lint_cmd.add_argument("--strict", action="store_true",
                          help="exit 1 when warnings were found")
    lint_cmd.set_defaults(handler=_cmd_lint)

    check_views_cmd = commands.add_parser(
        "check-views", help="analyze a whole mediator view configuration "
                            "(TSL4xx: duplicate / subsumed / "
                            "unsatisfiable / unsafe / capability-"
                            "unreachable views)")
    check_views_cmd.add_argument(
        "config", help="mediator configuration JSON (views + optional "
                       "dtd / capabilities)")
    check_views_cmd.add_argument("--format",
                                 choices=("text", "json", "sarif"),
                                 default="text")
    check_views_cmd.add_argument("--baseline", metavar="FILE",
                                 help="suppression baseline: report and "
                                      "gate only on findings absent "
                                      "from it")
    check_views_cmd.add_argument("--update-baseline", action="store_true",
                                 help="rewrite --baseline to suppress "
                                      "every current finding, then "
                                      "exit 0")
    check_views_cmd.add_argument("--strict", action="store_true",
                                 help="exit 1 when new warnings were "
                                      "found")
    check_views_cmd.set_defaults(handler=_cmd_check_views)

    evaluate_cmd = commands.add_parser(
        "evaluate", help="evaluate a TSL query over a JSON OEM database")
    evaluate_cmd.add_argument("query")
    evaluate_cmd.add_argument("--db", required=True,
                              help="database JSON file")
    evaluate_cmd.add_argument("--dot", action="store_true",
                              help="emit Graphviz DOT instead of JSON")
    _add_trace_flags(evaluate_cmd)
    evaluate_cmd.set_defaults(handler=_cmd_evaluate)

    rewrite_cmd = commands.add_parser(
        "rewrite", help="find rewritings of a query using views")
    rewrite_cmd.add_argument("query")
    rewrite_cmd.add_argument("--view", action="append", default=[],
                             metavar="NAME=FILE", required=True)
    rewrite_cmd.add_argument("--dtd", help="structural constraints file")
    rewrite_cmd.add_argument("--total", action="store_true",
                             help="views-only (total) rewritings")
    rewrite_cmd.add_argument("--contained", action="store_true",
                             help="maximally contained instead of "
                                  "equivalent rewritings")
    rewrite_cmd.add_argument("--format", choices=("text", "json"),
                             default="text",
                             help="output format (json includes stats "
                                  "and the truncation flag)")
    _add_trace_flags(rewrite_cmd)
    rewrite_cmd.add_argument("--budget-ms", type=float, metavar="N",
                             help="wall-clock deadline; on expiry the "
                                  "partial result is returned flagged "
                                  "truncated")
    rewrite_cmd.add_argument("--max-steps", type=int, metavar="N",
                             help="step budget over all search phases")
    rewrite_cmd.add_argument("--max-candidates", type=int, metavar="N",
                             help="cap on candidates tested (truncates "
                                  "the search)")
    rewrite_cmd.add_argument("--no-signature-prefilter",
                             action="store_true",
                             help="disable the sound label-signature "
                                  "pre-filter that skips views whose "
                                  "body labels cannot map into the "
                                  "query")
    rewrite_cmd.add_argument("--no-path-index",
                             action="store_true",
                             help="disable the sound path index that "
                                  "restricts mapping searches to "
                                  "statically compatible query "
                                  "conditions (exhaustive scan)")
    rewrite_cmd.add_argument("--no-memo", action="store_true",
                             help="disable the rewrite session's memo "
                                  "tables (prepared views + canonical-"
                                  "hash caches)")
    rewrite_cmd.add_argument("--memo-size", type=int, metavar="N",
                             default=DEFAULT_MEMO_SIZE,
                             help="per-table memo capacity (default: "
                                  f"{DEFAULT_MEMO_SIZE})")
    rewrite_cmd.set_defaults(handler=_cmd_rewrite)

    explain_cmd = commands.add_parser(
        "explain", help="run the rewrite search with the EXPLAIN "
                        "decision log and report every mapping and "
                        "candidate verdict")
    explain_cmd.add_argument("query")
    explain_cmd.add_argument("--view", action="append", default=[],
                             metavar="NAME=FILE", required=True)
    explain_cmd.add_argument("--dtd", help="structural constraints file")
    explain_cmd.add_argument("--total", action="store_true",
                             help="views-only (total) rewritings")
    explain_cmd.add_argument("--format", choices=("text", "json"),
                             default="text",
                             help="decision-log rendering (json is "
                                  "schema-versioned and machine-readable)")
    _add_trace_flags(explain_cmd)
    explain_cmd.add_argument("--budget-ms", type=float, metavar="N",
                             help="wall-clock deadline (the log notes "
                                  "truncation)")
    explain_cmd.add_argument("--max-steps", type=int, metavar="N",
                             help="step budget over all search phases")
    explain_cmd.add_argument("--max-candidates", type=int, metavar="N",
                             help="cap on candidates tested")
    explain_cmd.add_argument("--no-signature-prefilter",
                             action="store_true",
                             help="disable the label-signature "
                                  "pre-filter (every view then reaches "
                                  "mapping enumeration)")
    explain_cmd.add_argument("--no-path-index",
                             action="store_true",
                             help="disable the path index (mapping "
                                  "searches scan every query "
                                  "condition)")
    explain_cmd.add_argument("--no-memo", action="store_true",
                             help="disable the rewrite session's memo "
                                  "tables")
    explain_cmd.add_argument("--memo-size", type=int, metavar="N",
                             default=DEFAULT_MEMO_SIZE,
                             help="per-table memo capacity (default: "
                                  f"{DEFAULT_MEMO_SIZE})")
    explain_cmd.set_defaults(handler=_cmd_explain)

    metrics_cmd = commands.add_parser(
        "metrics", help="run a rewrite workload against a fresh metrics "
                        "registry and render the instruments")
    metrics_cmd.add_argument("query", nargs="?",
                             help="query file (default: the paper's "
                                  "Q3/Q5/Q7 over V1 with its DTD)")
    metrics_cmd.add_argument("--view", action="append", default=[],
                             metavar="NAME=FILE")
    metrics_cmd.add_argument("--dtd", help="structural constraints file")
    metrics_cmd.add_argument("--url", metavar="URL",
                             help="scrape a live server's /metrics "
                                  "instead of running the in-process "
                                  "workload (base URL or full /metrics "
                                  "URL)")
    metrics_cmd.add_argument("--format", choices=("prom", "json"),
                             default="prom",
                             help="Prometheus text exposition (default) "
                                  "or the JSON snapshot")
    metrics_cmd.set_defaults(handler=_cmd_metrics)

    fuzz_cmd = commands.add_parser(
        "fuzz", help="run the differential-testing oracles on random "
                     "cases (see docs/TESTING.md)")
    fuzz_cmd.add_argument("--seed", type=int, default=0,
                          help="base seed; iteration i uses seed+i "
                               "(default: 0)")
    fuzz_cmd.add_argument("--iterations", type=int, default=100,
                          help="number of generated cases (default: 100)")
    fuzz_cmd.add_argument("--budget-seconds", type=float, default=None,
                          help="stop starting new iterations after this "
                               "many seconds")
    fuzz_cmd.add_argument("--oracle", action="append", default=[],
                          choices=("semantic", "containment", "memo",
                                   "metamorphic", "signature"),
                          help="oracle(s) to run (repeatable; default: all)")
    fuzz_cmd.add_argument("--profile", action="append", default=[],
                          metavar="NAME",
                          help="case profile(s) to rotate through "
                               "(repeatable; default: all)")
    fuzz_cmd.add_argument("--corpus", metavar="DIR",
                          help="directory to save shrunk counterexamples to")
    fuzz_cmd.add_argument("--replay", metavar="FILE",
                          help="re-run the oracles on one saved corpus case "
                               "instead of generating new ones")
    fuzz_cmd.add_argument("--no-shrink", action="store_true",
                          help="report raw failing cases without "
                               "minimization")
    fuzz_cmd.add_argument("--format", choices=("text", "json"),
                          default="text")
    _add_trace_flags(fuzz_cmd)
    fuzz_cmd.set_defaults(handler=_cmd_fuzz)

    serve_cmd = commands.add_parser(
        "serve", help="run the concurrent rewrite-as-a-service HTTP "
                      "server (POST /rewrite /evaluate /explain, "
                      "GET /metrics /healthz; see docs/SERVING.md)")
    serve_cmd.add_argument("--host", default="127.0.0.1")
    serve_cmd.add_argument("--port", type=int, default=8080,
                           help="TCP port (0 picks an ephemeral one; "
                                "default: 8080)")
    serve_cmd.add_argument("--workers", type=int, default=4,
                           help="rewrite worker threads sharing the "
                                "session pool (default: 4)")
    serve_cmd.add_argument("--max-pending", type=int, default=64,
                           help="admitted in-flight request cap; beyond "
                                "it requests are shed with 429 "
                                "(default: 64)")
    serve_cmd.add_argument("--max-sessions", type=int, default=32,
                           help="distinct view-set sessions kept warm "
                                "(default: 32)")
    serve_cmd.add_argument("--budget-ms", type=float, metavar="N",
                           help="default per-request deadline, measured "
                                "from admission; expiry returns 408 "
                                "with the partial result")
    serve_cmd.add_argument("--max-steps", type=int, metavar="N",
                           help="default per-request step budget")
    serve_cmd.add_argument("--access-log", metavar="PATH",
                           help="append one JSON object per request "
                                "(request id, trace id, status, "
                                "duration) to PATH; '-' logs to stderr")
    serve_cmd.add_argument("--slow-ms", type=float, default=250.0,
                           metavar="N",
                           help="flight-recorder tail-capture "
                                "threshold: requests slower than N ms "
                                "retain their full trace + EXPLAIN "
                                "(default 250)")
    serve_cmd.add_argument("--recorder-capacity", type=int, default=256,
                           metavar="N",
                           help="completed requests retained in the "
                                "flight-recorder ring (default 256)")
    serve_cmd.add_argument("--no-recorder", action="store_true",
                           help="disable the always-on flight recorder "
                                "(the /debug endpoints answer with an "
                                "empty ring)")
    serve_cmd.add_argument("--cache-dir", metavar="ROOT",
                           help="persist rewrite-session memos under "
                                "this storage root (repro db init; "
                                "see docs/PERSISTENCE.md) so a "
                                "restarted server serves repeats as "
                                "memo hits")
    serve_cmd.set_defaults(handler=_cmd_serve)

    top_cmd = commands.add_parser(
        "top", help="live dashboard over a running server: latency "
                    "quantiles, shed rate, cache hit rates, and the "
                    "slowest recent requests (polls /debug + /metrics)")
    top_cmd.add_argument("--url", required=True, metavar="URL",
                         help="base URL of the server, e.g. "
                              "http://127.0.0.1:8080")
    top_cmd.add_argument("--interval", type=float, default=2.0,
                         metavar="S",
                         help="seconds between polls (default 2)")
    top_cmd.add_argument("--once", action="store_true",
                         help="render a single frame and exit "
                              "(scripts / CI)")
    top_cmd.add_argument("--count", type=int, default=None, metavar="N",
                         help="stop after N frames (default: run until "
                              "interrupted)")
    top_cmd.set_defaults(handler=_cmd_top)

    db_cmd = commands.add_parser(
        "db", help="manage a persistent store directory (snapshot + "
                   "WAL + cache shards; see docs/PERSISTENCE.md)")
    db_sub = db_cmd.add_subparsers(dest="db_command", required=True)

    db_init = db_sub.add_parser(
        "init", help="initialize an empty store directory")
    db_init.add_argument("root")
    db_init.add_argument("--name", default="db",
                         help="database/source name (default: db)")
    db_init.add_argument("--shards", type=int, default=8,
                         help="query-cache shard count, fixed at init "
                              "(default: 8)")
    db_init.add_argument("--force", action="store_true",
                         help="re-initialize an existing store")
    db_init.set_defaults(handler=_cmd_db_init)

    db_ingest = db_sub.add_parser(
        "ingest", help="bulk-load an OEM JSON database through the WAL")
    db_ingest.add_argument("root")
    db_ingest.add_argument("--db", required=True, metavar="DATA.json",
                           help="database file (repro import-xml output)")
    db_ingest.add_argument("--compact", action="store_true",
                           help="fold the WAL into a snapshot afterwards")
    db_ingest.set_defaults(handler=_cmd_db_ingest)

    db_stats = db_sub.add_parser(
        "stats", help="print deterministic storage statistics as JSON")
    db_stats.add_argument("root")
    db_stats.set_defaults(handler=_cmd_db_stats)

    db_flush = db_sub.add_parser(
        "flush", help="fsync the write-ahead log")
    db_flush.add_argument("root")
    db_flush.set_defaults(handler=_cmd_db_flush)

    db_compact = db_sub.add_parser(
        "compact", help="fold the WAL into a fresh snapshot")
    db_compact.add_argument("root")
    db_compact.set_defaults(handler=_cmd_db_compact)

    import_cmd = commands.add_parser(
        "import-xml", help="convert an XML document to OEM JSON")
    import_cmd.add_argument("document")
    import_cmd.add_argument("-o", "--output")
    import_cmd.add_argument("--name", default="db",
                            help="database/source name (default: db)")
    import_cmd.set_defaults(handler=_cmd_import_xml)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except RenderedError as exc:
        print(f"error:\n{exc}", file=sys.stderr)
        return 2
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
