"""Lore-style repository substrate: store, materialized views, query cache."""

from .store import Store
from .views import MaterializedView, ViewManager
from .cache import CacheEntry, CacheStats, QueryCache
from .repository import AnswerReport, Repository

__all__ = [
    "Store",
    "MaterializedView", "ViewManager",
    "QueryCache", "CacheEntry", "CacheStats",
    "Repository", "AnswerReport",
]
