"""A Lore-style semistructured repository store (Section 1; [26]).

The store owns one OEM database and tracks a monotonically increasing
*version* so dependent artifacts (materialized views, cached query
results) can detect staleness.  Updates are deliberately simple -- add an
object, add an edge, add a root -- because the paper's caching story only
needs "the sources changed, the cache may be stale" (the delta-propagation
machinery of [39] is out of scope, as the paper itself notes).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from ..logic.terms import Atom
from ..oem.model import OemDatabase, OidLike
from ..oem.serialize import database_from_json, database_to_json


@dataclass
class Store:
    """A versioned OEM database."""

    name: str = "db"
    db: OemDatabase = field(init=False)
    version: int = field(init=False, default=0)

    def __post_init__(self) -> None:
        self.db = OemDatabase(self.name)

    @classmethod
    def wrap(cls, db: OemDatabase) -> "Store":
        store = cls(db.name)
        store.db = db
        return store

    # -- updates (each bumps the version) -------------------------------------

    def add_atomic(self, oid: OidLike, label: Atom, value: Atom) -> OidLike:
        result = self.db.add_atomic(oid, label, value)
        self.version += 1
        return result

    def add_set(self, oid: OidLike, label: Atom) -> OidLike:
        result = self.db.add_set(oid, label)
        self.version += 1
        return result

    def add_child(self, parent: OidLike, child: OidLike) -> None:
        self.db.add_child(parent, child)
        self.version += 1

    def add_root(self, oid: OidLike) -> None:
        self.db.add_root(oid)
        self.version += 1

    # -- persistence -----------------------------------------------------------

    def save(self, path: str | Path) -> None:
        """Persist the store (data + version) as JSON.

        Objects, children, and roots are emitted in the canonical term
        order (``sort_oids``) with sorted keys, so saving the same
        logical store always produces the same bytes regardless of
        insertion order.
        """
        payload = {"version": self.version,
                   "database": database_to_json(self.db, sort_oids=True)}
        Path(path).write_text(json.dumps(payload, sort_keys=True),
                              encoding="utf-8")

    @classmethod
    def load(cls, path: str | Path) -> "Store":
        """Restore a store persisted by :meth:`save`."""
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
        store = cls.wrap(database_from_json(payload["database"]))
        store.version = payload["version"]
        return store
