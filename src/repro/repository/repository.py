"""The repository facade: store + materialized views + query cache.

Answering precedence for :meth:`Repository.query`:

1. a total rewriting over the *materialized views* (answered without
   touching the base data),
2. a total rewriting over the *cached queries*,
3. direct evaluation against the store (and the answer is cached).

This is the full Section 1 "Use of Rewriting in semistructured
repositories" story, measured by benchmark E10.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..oem.model import OemDatabase
from ..rewriting.chase import StructuralConstraints
from ..rewriting.rewriter import rewrite
from ..tsl.ast import Query
from ..tsl.evaluator import evaluate
from ..tsl.parser import parse_query
from .cache import QueryCache
from .store import Store
from .views import MaterializedView, ViewManager


@dataclass
class AnswerReport:
    """How one query was answered."""

    answer: OemDatabase
    method: str              # "views" | "cache" | "direct"
    rewriting: Query | None = None


@dataclass
class Repository:
    """A semistructured repository with rewriting-backed answering."""

    store: Store
    views: ViewManager = field(init=False)
    cache: QueryCache = field(init=False)
    constraints: StructuralConstraints | None = None
    cache_capacity: int = 16
    cache_memoize: bool = True
    metrics: object | None = None

    def __post_init__(self) -> None:
        self.views = ViewManager(self.store)
        self.cache = QueryCache(capacity=self.cache_capacity,
                                constraints=self.constraints,
                                memoize=self.cache_memoize,
                                metrics=self.metrics)

    @classmethod
    def from_database(cls, db: OemDatabase,
                      constraints: StructuralConstraints | None = None,
                      cache_capacity: int = 16, *,
                      cache_memoize: bool = True,
                      metrics=None) -> "Repository":
        repo = cls(Store.wrap(db), constraints=constraints,
                   cache_capacity=cache_capacity,
                   cache_memoize=cache_memoize, metrics=metrics)
        return repo

    # -- views ----------------------------------------------------------------

    def define_view(self, name: str,
                    definition: Query | str) -> MaterializedView:
        return self.views.define(name, definition)

    # -- querying ---------------------------------------------------------------

    def query(self, query: Query | str, use_views: bool = True,
              use_cache: bool = True) -> OemDatabase:
        return self.query_with_report(query, use_views, use_cache).answer

    def query_with_report(self, query: Query | str, use_views: bool = True,
                          use_cache: bool = True) -> AnswerReport:
        if isinstance(query, str):
            query = parse_query(query)
        if use_views and self.views.views:
            refreshed = self.views.fresh_views()
            definitions = {name: view.definition
                           for name, view in refreshed.items()}
            outcome = rewrite(query, definitions, self.constraints,
                              total_only=True, first_only=True)
            if outcome.rewritings:
                rewriting = outcome.rewritings[0]
                sources = {name: refreshed[name].data
                           for name in rewriting.views_used}
                answer = evaluate(rewriting.query, sources)
                return AnswerReport(answer, "views", rewriting.query)
        if use_cache:
            cached = self.cache.lookup(query, self.store.version)
            if cached is not None:
                return AnswerReport(cached, "cache", None)
        answer = evaluate(query, self.store.db)
        if use_cache:
            self.cache.insert(query, answer, self.store.version)
        return AnswerReport(answer, "direct", None)
