"""The repository facade: store + materialized views + query cache.

Answering precedence for :meth:`Repository.query`:

1. a total rewriting over the *materialized views* (answered without
   touching the base data),
2. a total rewriting over the *cached queries*,
3. direct evaluation against the store (and the answer is cached).

This is the full Section 1 "Use of Rewriting in semistructured
repositories" story, measured by benchmark E10.

Two optional substrates from :mod:`repro.storage` extend the facade to
production shape:

* :meth:`Repository.open` runs it over a :class:`~repro.storage
  .durable.DurableStore` with the query cache sharded
  (:class:`~repro.storage.shard.ShardedQueryCache`) and persisted per
  shard -- :meth:`flush` / :meth:`close` write the warm cache back;
* the mutation wrappers (:meth:`add_atomic` ...) propagate each update
  incrementally: views and cached answers whose statements provably
  cannot match the touched labels are patched in place, the rest are
  invalidated (:mod:`repro.storage.maintenance`).
"""

from __future__ import annotations

from pathlib import Path
from dataclasses import dataclass, field

from ..logic.terms import Atom
from ..oem.model import OemDatabase, OidLike, as_oid
from ..rewriting.chase import StructuralConstraints
from ..rewriting.rewriter import rewrite
from ..tsl.ast import Query
from ..tsl.evaluator import evaluate
from ..tsl.parser import parse_query
from .cache import QueryCache
from .store import Store
from .views import MaterializedView, ViewManager


@dataclass
class AnswerReport:
    """How one query was answered."""

    answer: OemDatabase
    method: str              # "views" | "cache" | "direct"
    rewriting: Query | None = None


@dataclass
class Repository:
    """A semistructured repository with rewriting-backed answering."""

    store: Store
    views: ViewManager = field(init=False)
    cache: QueryCache = field(init=False)
    constraints: StructuralConstraints | None = None
    cache_capacity: int = 16
    cache_memoize: bool = True
    cache_shards: int = 0
    metrics: object | None = None
    _cache_store: object | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        self.views = ViewManager(self.store)
        if self.cache_shards > 0:
            from ..storage.shard import ShardedQueryCache
            self.cache = ShardedQueryCache(
                shards=self.cache_shards, capacity=self.cache_capacity,
                constraints=self.constraints, memoize=self.cache_memoize,
                metrics=self.metrics)
        else:
            self.cache = QueryCache(capacity=self.cache_capacity,
                                    constraints=self.constraints,
                                    memoize=self.cache_memoize,
                                    metrics=self.metrics)

    @classmethod
    def from_database(cls, db: OemDatabase,
                      constraints: StructuralConstraints | None = None,
                      cache_capacity: int = 16, *,
                      cache_memoize: bool = True,
                      metrics=None) -> "Repository":
        repo = cls(Store.wrap(db), constraints=constraints,
                   cache_capacity=cache_capacity,
                   cache_memoize=cache_memoize, metrics=metrics)
        return repo

    @classmethod
    def open(cls, root: str | Path,
             constraints: StructuralConstraints | None = None,
             cache_capacity: int = 1024, *, cache_memoize: bool = True,
             autocompact_ops: int = 0, metrics=None) -> "Repository":
        """Open a persistent repository rooted at *root*.

        The base store loads snapshot + WAL
        (:class:`~repro.storage.durable.DurableStore`); the query cache
        is sharded per the store manifest and warmed from the persisted
        shard files (entries recorded against another store version are
        discarded).  Pair with :meth:`flush` / :meth:`close` to write
        the warm cache back.
        """
        from ..storage.cachestore import ShardedCacheStore
        from ..storage.durable import DurableStore
        store = DurableStore.open(root, autocompact_ops=autocompact_ops,
                                  metrics=metrics)
        repo = cls(store, constraints=constraints,
                   cache_capacity=cache_capacity,
                   cache_memoize=cache_memoize,
                   cache_shards=max(1, store.cache_shards),
                   metrics=metrics)
        repo._cache_store = ShardedCacheStore(store.layout,
                                              repo.cache_shards)
        repo._cache_store.load(repo.cache, store.version)
        return repo

    # -- persistence ----------------------------------------------------------

    def flush(self) -> dict:
        """Persist the warm cache shards and fsync the store's WAL."""
        stats = {"cache": None}
        if self._cache_store is not None:
            stats["cache"] = self._cache_store.save(self.cache,
                                                    self.store.version)
        flush = getattr(self.store, "flush", None)
        if flush is not None:
            flush()
        return stats

    def close(self) -> None:
        """Flush, then release the store's file handles."""
        self.flush()
        close = getattr(self.store, "close", None)
        if close is not None:
            close()

    def __enter__(self) -> "Repository":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- updates with incremental maintenance ----------------------------------

    def _propagate(self, touched: frozenset, from_version: int) -> None:
        version = self.store.version
        self.views.apply_update(touched, version, from_version)
        self.cache.apply_update(touched, version, from_version)

    def add_atomic(self, oid: OidLike, label: Atom, value: Atom) -> OidLike:
        before = self.store.version
        result = self.store.add_atomic(oid, label, value)
        self._propagate(frozenset({label}), before)
        return result

    def add_set(self, oid: OidLike, label: Atom) -> OidLike:
        before = self.store.version
        result = self.store.add_set(oid, label)
        self._propagate(frozenset({label}), before)
        return result

    def add_child(self, parent: OidLike, child: OidLike) -> None:
        """Add an edge; touches both endpoint labels (a new match must
        place the parent -- and possibly the child -- at some step)."""
        before = self.store.version
        self.store.add_child(parent, child)
        touched = frozenset({self.store.db.label(as_oid(parent)),
                             self.store.db.label(as_oid(child))})
        self._propagate(touched, before)

    def add_root(self, oid: OidLike) -> None:
        before = self.store.version
        self.store.add_root(oid)
        self._propagate(frozenset({self.store.db.label(as_oid(oid))}),
                        before)

    # -- views ----------------------------------------------------------------

    def define_view(self, name: str,
                    definition: Query | str) -> MaterializedView:
        return self.views.define(name, definition)

    # -- querying ---------------------------------------------------------------

    def query(self, query: Query | str, use_views: bool = True,
              use_cache: bool = True) -> OemDatabase:
        return self.query_with_report(query, use_views, use_cache).answer

    def query_with_report(self, query: Query | str, use_views: bool = True,
                          use_cache: bool = True) -> AnswerReport:
        if isinstance(query, str):
            query = parse_query(query)
        if use_views and self.views.views:
            refreshed = self.views.fresh_views()
            definitions = {name: view.definition
                           for name, view in refreshed.items()}
            outcome = rewrite(query, definitions, self.constraints,
                              total_only=True, first_only=True)
            if outcome.rewritings:
                rewriting = outcome.rewritings[0]
                sources = {name: refreshed[name].data
                           for name in rewriting.views_used}
                answer = evaluate(rewriting.query, sources)
                return AnswerReport(answer, "views", rewriting.query)
        if use_cache:
            cached = self.cache.lookup(query, self.store.version)
            if cached is not None:
                return AnswerReport(cached, "cache", None)
        answer = evaluate(query, self.store.db)
        if use_cache:
            self.cache.insert(query, answer, self.store.version)
        return AnswerReport(answer, "direct", None)
