"""Materialized views over the repository store.

"Materialized views and cached queries were the main original motivation
for relational query rewriting, and we believe they are as important for
semistructured databases."  A materialized view is a named TSL view whose
result is kept evaluated; the view manager tracks freshness against the
store version and re-evaluates lazily.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import RepositoryError
from ..oem.model import OemDatabase
from ..tsl.ast import Query
from ..tsl.evaluator import evaluate
from ..tsl.parser import parse_query
from .store import Store


@dataclass
class MaterializedView:
    """One named view, its data, and the store version it reflects.

    ``labels`` memoizes the constant step labels of the definition for
    incremental maintenance (see :mod:`repro.storage.maintenance`);
    ``labels_known`` distinguishes "not computed" from the legitimate
    ``None`` meaning "has a label variable".
    """

    name: str
    definition: Query
    data: OemDatabase
    as_of_version: int
    labels: frozenset | None = field(default=None, repr=False)
    labels_known: bool = field(default=False, repr=False)


@dataclass
class ViewManager:
    """Defines, materializes, and refreshes views over one store."""

    store: Store
    views: dict[str, MaterializedView] = field(default_factory=dict)

    def define(self, name: str, definition: Query | str) -> MaterializedView:
        if isinstance(definition, str):
            definition = parse_query(definition, name=name)
        if name in self.views:
            raise RepositoryError(f"view {name!r} already defined")
        foreign = definition.sources() - {self.store.name}
        if foreign:
            raise RepositoryError(
                f"view {name!r} references sources other than the store: "
                f"{sorted(foreign)}")
        view = MaterializedView(
            name, definition,
            evaluate(definition, self.store.db, answer_name=name),
            self.store.version)
        self.views[name] = view
        return view

    def drop(self, name: str) -> None:
        if name not in self.views:
            raise RepositoryError(f"no view named {name!r}")
        del self.views[name]

    def is_fresh(self, name: str) -> bool:
        return self.views[name].as_of_version == self.store.version

    def refresh(self, name: str) -> MaterializedView:
        """Re-evaluate a stale view (full recomputation, as in Lore)."""
        view = self.views.get(name)
        if view is None:
            raise RepositoryError(f"no view named {name!r}")
        if view.as_of_version != self.store.version:
            view.data = evaluate(view.definition, self.store.db,
                                 answer_name=name)
            view.as_of_version = self.store.version
        return view

    def fresh_views(self) -> dict[str, MaterializedView]:
        """All views, refreshed to the current store version."""
        return {name: self.refresh(name) for name in sorted(self.views)}

    def apply_update(self, touched: frozenset, version: int,
                     from_version: int | None = None) -> dict:
        """Incrementally maintain the views after a store update.

        A view whose definition provably cannot match any *touched*
        label is **patched**: retagged to the new store *version* with
        its materialization kept, skipping the full re-evaluation that
        :meth:`refresh` would pay.  Every other view is left stale and
        re-evaluates lazily on its next use (the Lore recomputation
        path).  See :mod:`repro.storage.maintenance` for why the label
        test is sound.

        Patching is only sound for a view that was *fresh before* this
        update -- an already-stale view missed earlier deltas, and
        retagging it would hide that.  *from_version* (the store
        version the update started from) enforces this; ``None`` trusts
        the caller to have kept every view fresh.
        """
        from ..storage.maintenance import may_overlap, statement_labels
        patched = stale = 0
        for view in self.views.values():
            if (from_version is not None
                    and view.as_of_version != from_version):
                stale += 1
                continue
            if not view.labels_known:
                view.labels = statement_labels(view.definition)
                view.labels_known = True
            if may_overlap(view.labels, touched):
                stale += 1
            else:
                view.as_of_version = version
                patched += 1
        return {"patched": patched, "stale": stale}

    def definitions(self) -> dict[str, Query]:
        return {name: view.definition
                for name, view in sorted(self.views.items())}

    def data_sources(self) -> dict[str, OemDatabase]:
        return {name: view.data
                for name, view in sorted(self.views.items())}
