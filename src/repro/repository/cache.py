"""A cached-query manager in the spirit of [19] (Section 1).

"If a cached query result contains all SIGMOD publications, our rewriting
algorithm can create a rewriting query where SIGMOD 97 publications are
obtained by filtering the cached query for 1997 publications.  The
rewriting algorithm only needs the query and the cached query statements
-- it does not need to examine the source data."

Each cache entry stores the query *statement* (playing the role of a view
definition) and its materialized answer.  Lookup runs the paper's
rewriting algorithm against the cached statements; a hit is a total
rewriting evaluated over cached answers only.

Two properties keep repeated lookups cheap:

* statements are identified by their **canonical hash**
  (:mod:`repro.rewriting.canon`), so caching the same statement twice --
  even renamed or with reordered conjuncts -- refreshes the existing
  entry instead of filling the LRU with copies;
* all lookups against one store version share a single
  :class:`~repro.rewriting.session.RewriteSession` (prepared views +
  memo tables), so the statements are chased once and repeated queries
  hit the session's result memo instead of re-running the exponential
  search.

Stale entries (cached against an older store version) are purged on
every lookup and insert -- they can never serve a hit, so letting them
pin LRU capacity would be a leak -- and counted in
``stats.invalidations``.

Thread safety is **coarse-grained**: one re-entrant cache lock is held
across every public operation, including the rewrite + evaluation a
``lookup`` performs (LRU reorder, hit counters, and the statement set
must not change mid-lookup).  The cache lock is the outermost lock of
the stack -- cache > session > memo table > instrument (see
:mod:`repro.rewriting.session`) -- so never call back into the cache
while holding a session or table lock.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field

from ..oem.model import OemDatabase
from ..rewriting.canon import query_key
from ..rewriting.chase import StructuralConstraints
from ..rewriting.session import DEFAULT_MEMO_SIZE, RewriteSession
from ..tsl.ast import Query
from ..tsl.evaluator import evaluate


@dataclass
class CacheEntry:
    """One cached query: its statement and materialized answer.

    ``labels`` memoizes :func:`repro.storage.maintenance
    .statement_labels` for incremental maintenance (``labels_known``
    distinguishes "not computed yet" from the legitimate ``None``
    meaning "has a label variable, unknowable").
    """

    name: str
    statement: Query
    answer: OemDatabase
    as_of_version: int
    key: str = ""
    hits: int = 0
    labels: frozenset | None = field(default=None, repr=False)
    labels_known: bool = field(default=False, repr=False)


@dataclass
class CacheStats:
    lookups: int = 0
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    invalidations: int = 0
    refreshes: int = 0
    patches: int = 0

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


@dataclass
class QueryCache:
    """An LRU cache of query answers, consulted via query rewriting.

    ``memoize=False`` disables the shared rewrite session (every lookup
    re-runs the full search; the ``--no-memo`` baseline of benchmark
    E10).  *metrics* receives ``cache.lookup.{hits,misses}`` and
    ``cache.entries.{evictions,invalidations}`` counters plus the
    session's ``cache.*`` memo counters.
    """

    capacity: int = 16
    constraints: StructuralConstraints | None = None
    memoize: bool = True
    memo_size: int = DEFAULT_MEMO_SIZE
    metrics: object | None = None
    entries: "OrderedDict[str, CacheEntry]" = field(
        default_factory=OrderedDict)
    stats: CacheStats = field(default_factory=CacheStats)
    _counter: int = 0
    _by_key: dict = field(default_factory=dict, repr=False)
    _session: RewriteSession | None = field(default=None, repr=False)
    _session_template: RewriteSession | None = field(default=None,
                                                     repr=False)
    _lock: threading.RLock = field(default_factory=threading.RLock,
                                   repr=False)

    # -- metrics ---------------------------------------------------------------

    def _count(self, name: str, amount: int = 1) -> None:
        if self.metrics is not None and amount:
            self.metrics.increment(name, amount)

    # -- the shared rewrite session --------------------------------------------

    def session(self) -> RewriteSession:
        """The rewrite session over the current statements (lazy).

        Entry churn (insert of a *new* statement, eviction, purge)
        resets the view-dependent memo tables via
        :meth:`RewriteSession.update_views`; refreshing an existing
        statement's answer keeps the session fully warm, because
        rewriting only reads statements, never answers.
        """
        with self._lock:
            if self._session is None:
                views = {name: entry.statement
                         for name, entry in self.entries.items()}
                if self._session_template is None:
                    self._session_template = RewriteSession(
                        views, self.constraints, memo_size=self.memo_size,
                        metrics=self.metrics, enabled=self.memoize)
                else:
                    self._session_template.update_views(views)
                self._session = self._session_template
            return self._session

    def _entries_changed(self) -> None:
        """The statement set changed: next lookup rebuilds the session."""
        self._session = None

    # -- mutation --------------------------------------------------------------

    def _purge_stale(self, version: int) -> None:
        """Evict entries cached against an older store version.

        They are skipped by lookup but -- before this fix -- were never
        removed, so after a store-version bump they pinned LRU capacity
        (and inflated ``len()``) forever.

        Every public operation leaves the cache *uniform-version* (this
        purge runs first, and :meth:`apply_update` retags or drops every
        entry), so checking one entry decides for all of them -- the
        purge is O(1) on the hot no-op path instead of O(entries).
        """
        if not self.entries:
            return
        probe = next(iter(self.entries.values()))
        if probe.as_of_version == version:
            return
        stale = [name for name, entry in self.entries.items()
                 if entry.as_of_version != version]
        for name in stale:
            entry = self.entries.pop(name)
            self._by_key.pop(entry.key, None)
        if stale:
            self.stats.invalidations += len(stale)
            self._count("cache.entries.invalidations", len(stale))
            self._entries_changed()

    def insert(self, statement: Query, answer: OemDatabase,
               version: int, *, key: str | None = None) -> CacheEntry:
        """Cache a (query, answer) pair; evicts LRU beyond capacity.

        A statement already cached (same canonical hash, so renamed or
        conjunct-reordered copies count) refreshes the existing entry --
        new answer, new version, moved to the LRU tail -- instead of
        inserting a duplicate that would evict a distinct entry.

        *key* lets a caller that already canonicalized the statement
        (the shard router hashes it to pick a shard) skip the second
        hash; it must equal ``query_key(statement)``.
        """
        with self._lock:
            self._purge_stale(version)
            if key is None:
                key = query_key(statement)
            existing_name = self._by_key.get(key)
            if existing_name is not None:
                entry = self.entries[existing_name]
                entry.answer = answer
                entry.as_of_version = version
                self.entries.move_to_end(existing_name)
                self.stats.refreshes += 1
                self._count("cache.entries.refreshes")
                return entry
            self._counter += 1
            name = f"cached_{self._counter}"
            renamed = Query(statement.head, statement.body, name=name)
            entry = CacheEntry(name, renamed, answer, version, key=key)
            self.entries[name] = entry
            self._by_key[key] = name
            while len(self.entries) > self.capacity:
                _, evicted = self.entries.popitem(last=False)
                self._by_key.pop(evicted.key, None)
                self.stats.evictions += 1
                self._count("cache.entries.evictions")
            self._entries_changed()
            return entry

    # -- lookup ----------------------------------------------------------------

    def lookup(self, query: Query, version: int) -> OemDatabase | None:
        """Try to answer *query* from the cache by rewriting.

        Returns the answer database on a hit (after evaluating the
        rewriting over the cached answers), None on a miss.  Stale
        entries are purged first, so everything remaining is rewritable
        against; the rewrite itself runs through the shared session.

        A query whose canonical hash matches a cached statement exactly
        is served straight from that entry -- canonically equal
        statements have identical answers on every database, so no
        rewrite search (or session over 100k statements) is needed.
        This is what keeps lookups O(1) at persistent-store scale.
        """
        with self._lock:
            self.stats.lookups += 1
            self._purge_stale(version)
            exact = self._by_key.get(query_key(query))
            if exact is not None:
                entry = self.entries[exact]
                entry.hits += 1
                self.entries.move_to_end(exact)
                self.stats.hits += 1
                self._count("cache.lookup.hits")
                self._count("cache.lookup.exact")
                return entry.answer
            if self.entries:
                session = self.session()
                outcome = session.rewrite(query, total_only=True,
                                          first_only=True)
                if outcome.rewritings:
                    rewriting = outcome.rewritings[0]
                    sources = {name: self.entries[name].answer
                               for name in rewriting.views_used}
                    for name in rewriting.views_used:
                        self.entries[name].hits += 1
                        self.entries.move_to_end(name)
                    self.stats.hits += 1
                    self._count("cache.lookup.hits")
                    return evaluate(rewriting.query, sources)
            self.stats.misses += 1
            self._count("cache.lookup.misses")
            return None

    def invalidate(self) -> None:
        """Drop every entry (a store update with no delta propagation)."""
        with self._lock:
            self.stats.invalidations += len(self.entries)
            self._count("cache.entries.invalidations", len(self.entries))
            self.entries.clear()
            self._by_key.clear()
            self._entries_changed()

    # -- incremental maintenance -----------------------------------------------

    def apply_update(self, touched: frozenset, version: int,
                     from_version: int | None = None) -> dict:
        """Propagate a store update that touched the given labels.

        Entries whose statements provably cannot match any touched
        label are *patched* -- retagged to the new store *version* with
        their answer kept -- and everything else is invalidated (see
        :mod:`repro.storage.maintenance` for the soundness argument).
        Returns ``{"patched": n, "invalidated": n}``.

        Patching is only sound for entries that were fresh *before*
        the update; *from_version* (the pre-update store version)
        guards against retagging an entry that already missed a delta.
        """
        from ..storage.maintenance import may_overlap, statement_labels
        with self._lock:
            dropped = []
            for name, entry in self.entries.items():
                if (from_version is not None
                        and entry.as_of_version != from_version):
                    dropped.append(name)
                    continue
                if not entry.labels_known:
                    entry.labels = statement_labels(entry.statement,
                                                    self.constraints)
                    entry.labels_known = True
                if may_overlap(entry.labels, touched):
                    dropped.append(name)
                else:
                    entry.as_of_version = version
            for name in dropped:
                entry = self.entries.pop(name)
                self._by_key.pop(entry.key, None)
            if dropped:
                self.stats.invalidations += len(dropped)
                self._count("cache.entries.invalidations", len(dropped))
                self._entries_changed()
            patched = len(self.entries)
            self.stats.patches += patched
            self._count("cache.entries.patches", patched)
            return {"patched": patched, "invalidated": len(dropped)}

    def has_key(self, key: str) -> bool:
        """Whether an entry with canonical hash *key* is live.

        Unlike :meth:`lookup` this never rewrites, never counts stats,
        and ignores versions -- it answers the structural question the
        maintenance invariants are stated in ("after this update, is
        the entry still there?")."""
        with self._lock:
            return key in self._by_key

    # -- persistence hooks (repro.storage.cachestore) --------------------------

    def snapshot_entries(self) -> list[CacheEntry]:
        """The live entries in LRU order (oldest first), under the lock."""
        with self._lock:
            return list(self.entries.values())

    def restore_entries(self, entries: list[CacheEntry]) -> None:
        """Adopt persisted entries wholesale (oldest-first LRU order).

        Entry names are kept so ``stats``/``db stats`` output is
        byte-stable across a save/load cycle; the name counter resumes
        past the highest restored ``cached_<n>`` so new inserts cannot
        collide.
        """
        with self._lock:
            self.entries.clear()
            self._by_key.clear()
            for entry in entries[-self.capacity:] if self.capacity else []:
                self.entries[entry.name] = entry
                self._by_key[entry.key] = entry.name
                suffix = entry.name.rsplit("_", 1)[-1]
                if suffix.isdigit():
                    self._counter = max(self._counter, int(suffix))
            self._entries_changed()

    def __len__(self) -> int:
        with self._lock:
            return len(self.entries)
