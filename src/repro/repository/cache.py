"""A cached-query manager in the spirit of [19] (Section 1).

"If a cached query result contains all SIGMOD publications, our rewriting
algorithm can create a rewriting query where SIGMOD 97 publications are
obtained by filtering the cached query for 1997 publications.  The
rewriting algorithm only needs the query and the cached query statements
-- it does not need to examine the source data."

Each cache entry stores the query *statement* (playing the role of a view
definition) and its materialized answer.  Lookup runs the paper's
rewriting algorithm against the cached statements; a hit is a total
rewriting evaluated over cached answers only.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

from ..oem.model import OemDatabase
from ..rewriting.chase import StructuralConstraints
from ..rewriting.rewriter import rewrite
from ..tsl.ast import Query
from ..tsl.evaluator import evaluate


@dataclass
class CacheEntry:
    """One cached query: its statement and materialized answer."""

    name: str
    statement: Query
    answer: OemDatabase
    as_of_version: int
    hits: int = 0


@dataclass
class CacheStats:
    lookups: int = 0
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    invalidations: int = 0

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


@dataclass
class QueryCache:
    """An LRU cache of query answers, consulted via query rewriting."""

    capacity: int = 16
    constraints: StructuralConstraints | None = None
    entries: "OrderedDict[str, CacheEntry]" = field(
        default_factory=OrderedDict)
    stats: CacheStats = field(default_factory=CacheStats)
    _counter: int = 0

    def insert(self, statement: Query, answer: OemDatabase,
               version: int) -> CacheEntry:
        """Cache a (query, answer) pair; evicts LRU beyond capacity."""
        self._counter += 1
        name = f"cached_{self._counter}"
        renamed = Query(statement.head, statement.body, name=name)
        entry = CacheEntry(name, renamed, answer, version)
        self.entries[name] = entry
        while len(self.entries) > self.capacity:
            self.entries.popitem(last=False)
            self.stats.evictions += 1
        return entry

    def lookup(self, query: Query, version: int) -> OemDatabase | None:
        """Try to answer *query* from the cache by rewriting.

        Returns the answer database on a hit (after evaluating the
        rewriting over the cached answers), None on a miss.  Entries
        cached against an older store version are skipped (stale).
        """
        self.stats.lookups += 1
        fresh = {name: entry for name, entry in self.entries.items()
                 if entry.as_of_version == version}
        if fresh:
            views = {name: entry.statement for name, entry in fresh.items()}
            outcome = rewrite(query, views, self.constraints,
                              total_only=True, first_only=True)
            if outcome.rewritings:
                rewriting = outcome.rewritings[0]
                sources = {name: fresh[name].answer
                           for name in rewriting.views_used}
                for name in rewriting.views_used:
                    fresh[name].hits += 1
                    self.entries.move_to_end(name)
                self.stats.hits += 1
                return evaluate(rewriting.query, sources)
        self.stats.misses += 1
        return None

    def invalidate(self) -> None:
        """Drop every entry (a store update with no delta propagation)."""
        self.stats.invalidations += len(self.entries)
        self.entries.clear()

    def __len__(self) -> int:
        return len(self.entries)
