"""Source spans: locations in TSL (and DTD) source text.

A :class:`Span` names a half-open region of the source — from
``(line, column)`` up to but excluding ``(end_line, end_column)`` — in
1-based line/column coordinates, matching the coordinates the TSL lexer
has always attached to tokens.  Spans ride on AST nodes and terms
(``compare=False``: they never affect equality or hashing, so the
rewriting machinery is unaffected) and on the language-error exceptions,
and they are what the :mod:`repro.analysis` diagnostics point at.

The module sits below :mod:`repro.errors` and :mod:`repro.logic.terms`
in the dependency graph and must not import anything from the package.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class Span:
    """A region of source text, 1-based, end-exclusive."""

    line: int
    column: int
    end_line: int
    end_column: int

    @classmethod
    def point(cls, line: int, column: int) -> "Span":
        """A zero-width span at a single position."""
        return cls(line, column, line, column + 1)

    def to(self, other: "Span | None") -> "Span":
        """The span from this span's start to *other*'s end."""
        if other is None:
            return self
        return Span(self.line, self.column, other.end_line, other.end_column)

    @property
    def start(self) -> tuple[int, int]:
        return (self.line, self.column)

    def __str__(self) -> str:
        return f"{self.line}:{self.column}"


def excerpt_lines(text: str, span: Span, prefix: str = "    ") -> list[str]:
    """The source line *span* starts on, plus a caret underline.

    Returns ``[]`` when the span does not point inside *text* (e.g. an
    AST built programmatically rather than parsed).  Tabs are flattened
    to single spaces so the caret column stays aligned with the lexer's
    column counting (which advances one column per character).
    """
    lines = text.splitlines()
    if not 1 <= span.line <= len(lines):
        return []
    source = lines[span.line - 1].replace("\t", " ")
    if span.end_line == span.line:
        width = span.end_column - span.column
    else:
        width = len(source) - span.column + 1
    width = max(1, min(width, len(source) - span.column + 2))
    caret = " " * (span.column - 1) + "^" * width
    return [f"{prefix}{source}", f"{prefix}{caret}"]


def format_location(span: Span | None, filename: str | None = None) -> str:
    """``file:line:col`` / ``line:col`` / ``file`` — whatever is known."""
    parts = []
    if filename:
        parts.append(filename)
    if span is not None:
        parts.append(str(span.line))
        parts.append(str(span.column))
    return ":".join(parts)
