"""Fluent construction of OEM databases from nested Python specifications.

The paper's Figure 3 data, for example, is written as::

    db = build_database("db", [
        obj("person", [
            obj("name", "A. Gupta"),
            obj("pub", [obj("title", "Constraint Views"),
                        obj("booktitle", "SIGMOD"),
                        obj("year", 1993)]),
        ]),
    ])

Oids default to fresh constants ``&1, &2, ...``; pass ``oid=`` to pin one,
and use :func:`ref` to point at an already-registered object (for building
shared subobjects, DAGs, and cycles).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence, Union

from ..logic.terms import Atom
from .model import OemDatabase, OidLike


@dataclass
class ObjSpec:
    """Specification of one object to build."""

    label: Atom
    value: Union[Atom, Sequence["NodeSpec"], None]
    oid: OidLike | None = None


@dataclass
class RefSpec:
    """A reference to an object registered elsewhere in the build."""

    oid: OidLike


NodeSpec = Union[ObjSpec, RefSpec]


def obj(label: Atom, value: Union[Atom, Sequence[NodeSpec], None] = None,
        oid: OidLike | None = None) -> ObjSpec:
    """Describe an object: atomic when *value* is an atom, set otherwise."""
    return ObjSpec(label=label, value=value, oid=oid)


def ref(oid: OidLike) -> RefSpec:
    """Reference an object built elsewhere (enables sharing and cycles)."""
    return RefSpec(oid=oid)


@dataclass
class _Counter:
    next_id: int = 1

    def fresh(self) -> str:
        oid = f"&{self.next_id}"
        self.next_id += 1
        return oid


def _build_node(db: OemDatabase, spec: NodeSpec, counter: _Counter) -> OidLike:
    if isinstance(spec, RefSpec):
        return spec.oid
    oid = spec.oid if spec.oid is not None else counter.fresh()
    if spec.value is None or isinstance(spec.value, (list, tuple)):
        db.add_set(oid, spec.label)
        for child in spec.value or ():
            child_oid = _build_node(db, child, counter)
            db.add_child(oid, child_oid)
    else:
        db.add_atomic(oid, spec.label, spec.value)
    return oid


def build_database(name: str, roots: Sequence[NodeSpec],
                   extra: Sequence[NodeSpec] = ()) -> OemDatabase:
    """Build an :class:`OemDatabase` from root object specifications.

    *extra* objects are registered but not made roots; useful for building
    shared targets that :func:`ref` points to.  References may be forward:
    extras are built first.
    """
    db = OemDatabase(name)
    counter = _Counter()
    for spec in extra:
        _build_node(db, spec, counter)
    for spec in roots:
        oid = _build_node(db, spec, counter)
        db.add_root(oid)
    db.check_integrity()
    return db


@dataclass
class DatabaseBuilder:
    """Incremental builder for an :class:`OemDatabase`.

    Useful when objects are created over several passes, e.g. by the
    synthetic workload generators.
    """

    name: str = "db"
    _db: OemDatabase = field(init=False)
    _counter: _Counter = field(init=False)

    def __post_init__(self) -> None:
        self._db = OemDatabase(self.name)
        self._counter = _Counter()

    def atomic(self, label: Atom, value: Atom,
               oid: OidLike | None = None) -> OidLike:
        oid = oid if oid is not None else self._counter.fresh()
        return self._db.add_atomic(oid, label, value)

    def set(self, label: Atom, oid: OidLike | None = None) -> OidLike:
        oid = oid if oid is not None else self._counter.fresh()
        return self._db.add_set(oid, label)

    def edge(self, parent: OidLike, child: OidLike) -> None:
        self._db.add_child(parent, child)

    def root(self, oid: OidLike) -> None:
        self._db.add_root(oid)

    def finish(self) -> OemDatabase:
        self._db.check_integrity()
        return self._db
