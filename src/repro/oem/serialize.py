"""JSON (de)serialization of OEM databases and Herbrand terms.

Oids are Herbrand terms, so a small term codec is included.  The encoding
is flat (one record per object) to preserve sharing and cycles exactly.
"""

from __future__ import annotations

import json
from typing import Any, Iterable

from ..errors import OemError
from ..logic.terms import Constant, FunctionTerm, SetValue, Term, Variable
from .model import OemDatabase


def term_to_json(term: Term) -> Any:
    """Encode a term as JSON-compatible data."""
    if isinstance(term, Constant):
        return {"c": term.value}
    if isinstance(term, Variable):
        return {"v": term.name}
    if isinstance(term, FunctionTerm):
        return {"f": term.functor, "a": [term_to_json(t) for t in term.args]}
    if isinstance(term, SetValue):
        # Members are a frozenset; sort the encodings so the output is
        # byte-stable across runs (hash order is not).
        members = sorted((term_to_json(m) for m in term.members),
                         key=lambda data: json.dumps(data, sort_keys=True))
        return {"s": members, "src": term.source}
    raise OemError(f"cannot serialize term {term!r}")


def term_from_json(data: Any) -> Term:
    """Decode a term from :func:`term_to_json` output."""
    if not isinstance(data, dict):
        raise OemError(f"malformed term encoding: {data!r}")
    if "c" in data:
        return Constant(data["c"])
    if "v" in data:
        return Variable(data["v"])
    if "f" in data:
        return FunctionTerm(data["f"],
                            tuple(term_from_json(t) for t in data["a"]))
    if "s" in data:
        return SetValue(frozenset(term_from_json(t) for t in data["s"]),
                        data.get("src", "db"))
    raise OemError(f"malformed term encoding: {data!r}")


def term_sort_key(term: Term) -> str:
    """A total, run-stable order over terms (their canonical JSON form)."""
    return json.dumps(term_to_json(term), sort_keys=True)


def database_to_json(db: OemDatabase, *,
                     sort_oids: bool = False) -> dict[str, Any]:
    """Encode a database as a JSON-compatible dict.

    With ``sort_oids`` the objects, each object's children, and the
    roots are emitted in the total order of :func:`term_sort_key`
    instead of insertion order, so two databases with the same contents
    produce byte-identical encodings regardless of construction order
    (the on-disk snapshot format of :mod:`repro.storage` relies on
    this).  OEM is unordered (Section 2), so sorting loses nothing.
    """
    oids: Iterable = db.oids()
    if sort_oids:
        oids = sorted(oids, key=term_sort_key)
    objects = []
    for oid in oids:
        record: dict[str, Any] = {
            "oid": term_to_json(oid),
            "label": db.label(oid),
        }
        if db.is_atomic(oid):
            record["value"] = db.atomic_value(oid)
        else:
            children: Iterable = db.children(oid)
            if sort_oids:
                children = sorted(children, key=term_sort_key)
            record["children"] = [term_to_json(c) for c in children]
        objects.append(record)
    roots: Iterable = db.roots
    if sort_oids:
        roots = sorted(roots, key=term_sort_key)
    return {
        "name": db.name,
        "objects": objects,
        "roots": [term_to_json(r) for r in roots],
    }


def database_from_json(data: dict[str, Any]) -> OemDatabase:
    """Decode a database from :func:`database_to_json` output."""
    db = OemDatabase(data.get("name", "db"))
    for record in data["objects"]:
        oid = term_from_json(record["oid"])
        if "value" in record:
            db.add_atomic(oid, record["label"], record["value"])
        else:
            db.add_set(oid, record["label"])
    for record in data["objects"]:
        if "children" in record:
            oid = term_from_json(record["oid"])
            for child in record["children"]:
                db.add_child(oid, term_from_json(child))
    for root in data.get("roots", []):
        db.add_root(term_from_json(root))
    db.check_integrity()
    return db


def dumps(db: OemDatabase, **kwargs: Any) -> str:
    """Serialize a database to a JSON string."""
    return json.dumps(database_to_json(db), **kwargs)


def loads(text: str) -> OemDatabase:
    """Deserialize a database from a JSON string."""
    return database_from_json(json.loads(text))
