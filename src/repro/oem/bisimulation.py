"""Bisimulation equivalence of OEM databases (Section 6, cf. UnQL [4]).

Two objects are *bisimilar* when they agree on label and atomic value and
every subobject of one is bisimilar to some subobject of the other, in both
directions.  Two databases are bisimilar when each root of one is bisimilar
to some root of the other, both ways.  Bisimulation is coarser than
isomorphism: duplicate subobjects collapse.

Computed by partition refinement over the disjoint union of the two
databases, O(E log N) style (simple iterated signature refinement, which is
plenty for the sizes this library handles).
"""

from __future__ import annotations

from typing import Hashable

from .model import OemDatabase, Oid


def _refine(nodes: list[tuple[int, Oid]],
            dbs: tuple[OemDatabase, OemDatabase]) -> dict[tuple[int, Oid], int]:
    """Return a map from (side, oid) to its bisimulation class id."""
    block: dict[tuple[int, Oid], Hashable] = {}
    for side, oid in nodes:
        db = dbs[side]
        if db.is_atomic(oid):
            block[(side, oid)] = ("atom", db.label(oid), db.atomic_value(oid))
        else:
            block[(side, oid)] = ("set", db.label(oid))

    def canonical(mapping: dict[tuple[int, Oid], Hashable]
                  ) -> dict[tuple[int, Oid], int]:
        ids: dict[Hashable, int] = {}
        out: dict[tuple[int, Oid], int] = {}
        for key in sorted(mapping, key=lambda k: (k[0], str(k[1]))):
            out[key] = ids.setdefault(mapping[key], len(ids))
        return out

    current = canonical(block)
    while True:
        refined: dict[tuple[int, Oid], Hashable] = {}
        for side, oid in nodes:
            db = dbs[side]
            kid_classes = frozenset(
                current[(side, child)] for child in db.children(oid))
            refined[(side, oid)] = (current[(side, oid)], kid_classes)
        new = canonical(refined)
        if len(set(new.values())) == len(set(current.values())):
            return new
        current = new


def bisimulation_classes(left: OemDatabase, right: OemDatabase
                         ) -> dict[tuple[int, Oid], int]:
    """Compute bisimulation class ids over both databases (side 0 = left)."""
    nodes = ([(0, oid) for oid in left.reachable_oids()]
             + [(1, oid) for oid in right.reachable_oids()])
    return _refine(nodes, (left, right))


def bisimilar(left: OemDatabase, right: OemDatabase) -> bool:
    """True iff the two databases are bisimulation-equivalent."""
    classes = bisimulation_classes(left, right)
    left_roots = {classes[(0, r)] for r in left.roots}
    right_roots = {classes[(1, r)] for r in right.roots}
    return left_roots == right_roots


def objects_bisimilar(left: OemDatabase, left_oid: Oid,
                      right: OemDatabase, right_oid: Oid) -> bool:
    """True iff two specific objects are bisimilar."""
    nodes = ([(0, oid) for oid in left.reachable_from(left_oid)]
             + [(1, oid) for oid in right.reachable_from(right_oid)])
    classes = _refine(nodes, (left, right))
    return classes[(0, left_oid)] == classes[(1, right_oid)]
