"""OEM database equivalence up to object-id renaming (Section 6).

Under the isomorphism view, "two OEM databases D1 and D2 would be
equivalent if for every object z1 of D1 we can find an object z2 of D2 such
that z1 and z2 have the same label, same value if atomic, or equivalent
(i.e. isomorphic) sets of subobjects" -- i.e. the oids only matter for the
object-subobject relationships they create.

We reduce the question to directed-graph isomorphism with node attributes
(label, kind, atomic value) plus a virtual super-root that fixes the root
sets, and solve it with :mod:`networkx`'s VF2 matcher.
"""

from __future__ import annotations

import networkx as nx

from .model import OemDatabase, Oid

_SUPER_ROOT = "__super_root__"


def _to_nx(db: OemDatabase) -> nx.DiGraph:
    graph = nx.DiGraph()
    graph.add_node(_SUPER_ROOT, label=_SUPER_ROOT, kind="super", value=None)
    for oid in db.reachable_oids():
        if db.is_atomic(oid):
            graph.add_node(oid, label=db.label(oid), kind="atomic",
                           value=db.atomic_value(oid))
        else:
            graph.add_node(oid, label=db.label(oid), kind="set", value=None)
    for oid in db.reachable_oids():
        for child in db.children(oid):
            graph.add_edge(oid, child)
    for root in db.roots:
        graph.add_edge(_SUPER_ROOT, root)
    return graph


def _node_match(a: dict, b: dict) -> bool:
    return (a["label"] == b["label"] and a["kind"] == b["kind"]
            and a["value"] == b["value"])


def isomorphic(left: OemDatabase, right: OemDatabase) -> bool:
    """True iff the reachable portions are isomorphic up to oid renaming."""
    return nx.is_isomorphic(_to_nx(left), _to_nx(right),
                            node_match=_node_match)


def find_isomorphism(left: OemDatabase,
                     right: OemDatabase) -> dict[Oid, Oid] | None:
    """Return an oid renaming witnessing isomorphism, or None.

    The returned dict maps oids of *left* to oids of *right*.
    """
    matcher = nx.algorithms.isomorphism.DiGraphMatcher(
        _to_nx(left), _to_nx(right), node_match=_node_match)
    if not matcher.is_isomorphic():
        return None
    return {a: b for a, b in matcher.mapping.items() if a != _SUPER_ROOT}
