"""The OEM data model (Section 2) and its equivalence relations (Sections 3, 6)."""

from .model import OemDatabase, OemObject, Oid, as_oid, merge_databases
from .builder import DatabaseBuilder, build_database, obj, ref
from .equivalence import explain_difference, identical
from .isomorphism import find_isomorphism, isomorphic
from .bisimulation import bisimilar, bisimulation_classes, objects_bisimilar
from .edge_labeled import (EdgeLabeledDatabase, from_node_labeled,
                           to_node_labeled)
from .serialize import (database_from_json, database_to_json, dumps, loads,
                        term_from_json, term_to_json)
from .dot import to_dot

__all__ = [
    "OemDatabase", "OemObject", "Oid", "as_oid", "merge_databases",
    "DatabaseBuilder", "build_database", "obj", "ref",
    "identical", "explain_difference",
    "isomorphic", "find_isomorphism",
    "bisimilar", "bisimulation_classes", "objects_bisimilar",
    "EdgeLabeledDatabase", "to_node_labeled", "from_node_labeled",
    "database_to_json", "database_from_json", "dumps", "loads",
    "term_to_json", "term_from_json",
    "to_dot",
]
