"""The OEM data model (Section 2 of the paper).

An OEM database is a rooted graph of labeled nodes ("objects") with unique
object ids.  Atomic objects carry an atomic value; set objects point to a
set of subobjects, and the value of a set object is the OEM subgraph rooted
at it.  Object ids are ground terms from the Herbrand universe: atomic data
or uninterpreted function terms such as ``f(10, ashish)``.

The database is stored flat (adjacency-style) so that shared subobjects,
DAGs, and cycles are all representable.  :class:`OemObject` offers a
convenient navigational view over one object of a database.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Union

from ..errors import DuplicateOidError, OemError, UnknownOidError
from ..logic.terms import Atom, Constant, Term

Oid = Term
OidLike = Union[Term, Atom]


def as_oid(value: OidLike) -> Oid:
    """Coerce a Python atom to a :class:`Constant` oid; pass terms through."""
    if isinstance(value, Term):
        return value
    return Constant(value)


class OemDatabase:
    """A named OEM database: labeled objects, subobject edges, and roots.

    Objects are registered exactly once (re-registering with identical label
    and shape is an idempotent no-op; conflicting re-registration raises
    :class:`DuplicateOidError`).  Subobject sets are kept in deterministic
    insertion order but compared as sets, matching the paper's unordered
    model ("Since OEM does not support order ...").
    """

    def __init__(self, name: str = "db") -> None:
        self.name = name
        self._labels: dict[Oid, Atom] = {}
        self._atoms: dict[Oid, Atom] = {}
        self._children: dict[Oid, list[Oid]] = {}
        self._child_sets: dict[Oid, set[Oid]] = {}
        self._roots: list[Oid] = []
        self._root_set: set[Oid] = set()

    # -- construction ------------------------------------------------------

    def add_atomic(self, oid: OidLike, label: Atom, value: Atom) -> Oid:
        """Register an atomic object and return its (coerced) oid."""
        oid = as_oid(oid)
        if not oid.is_ground():
            raise OemError(f"object id must be ground, got {oid}")
        if oid in self._labels:
            same = (self._labels[oid] == label
                    and self._atoms.get(oid) == value
                    and oid not in self._children)
            if not same:
                raise DuplicateOidError(
                    f"oid {oid} already registered with a different shape")
            return oid
        self._labels[oid] = label
        self._atoms[oid] = value
        return oid

    def add_set(self, oid: OidLike, label: Atom) -> Oid:
        """Register a set object (initially empty) and return its oid."""
        oid = as_oid(oid)
        if not oid.is_ground():
            raise OemError(f"object id must be ground, got {oid}")
        if oid in self._labels:
            same = self._labels[oid] == label and oid not in self._atoms
            if not same:
                raise DuplicateOidError(
                    f"oid {oid} already registered with a different shape")
            return oid
        self._labels[oid] = label
        self._children[oid] = []
        self._child_sets[oid] = set()
        return oid

    def add_child(self, parent: OidLike, child: OidLike) -> None:
        """Add a subobject edge from *parent* to *child* (idempotent)."""
        parent = as_oid(parent)
        child = as_oid(child)
        if parent not in self._children:
            if parent in self._atoms:
                raise OemError(f"atomic object {parent} cannot have subobjects")
            raise UnknownOidError(f"unknown parent oid {parent}")
        if child not in self._child_sets[parent]:
            self._children[parent].append(child)
            self._child_sets[parent].add(child)

    def add_root(self, oid: OidLike) -> None:
        """Mark an object as a top-level (root) object (idempotent)."""
        oid = as_oid(oid)
        if oid not in self._root_set:
            self._roots.append(oid)
            self._root_set.add(oid)

    # -- inspection ----------------------------------------------------------

    def __contains__(self, oid: OidLike) -> bool:
        return as_oid(oid) in self._labels

    def __len__(self) -> int:
        return len(self._labels)

    @property
    def roots(self) -> tuple[Oid, ...]:
        return tuple(self._roots)

    def is_root(self, oid: OidLike) -> bool:
        return as_oid(oid) in self._root_set

    def oids(self) -> Iterator[Oid]:
        """Iterate over every registered oid, in registration order."""
        return iter(self._labels)

    def label(self, oid: OidLike) -> Atom:
        oid = as_oid(oid)
        try:
            return self._labels[oid]
        except KeyError:
            raise UnknownOidError(f"unknown oid {oid}") from None

    def is_atomic(self, oid: OidLike) -> bool:
        oid = as_oid(oid)
        if oid not in self._labels:
            raise UnknownOidError(f"unknown oid {oid}")
        return oid in self._atoms

    def atomic_value(self, oid: OidLike) -> Atom:
        oid = as_oid(oid)
        try:
            return self._atoms[oid]
        except KeyError:
            raise OemError(f"object {oid} is not atomic") from None

    def children(self, oid: OidLike) -> tuple[Oid, ...]:
        """Return the subobject oids of a set object, in insertion order."""
        oid = as_oid(oid)
        if oid in self._atoms:
            return ()
        try:
            return tuple(self._children[oid])
        except KeyError:
            raise UnknownOidError(f"unknown oid {oid}") from None

    def object(self, oid: OidLike) -> "OemObject":
        """Return a navigational view of one object."""
        oid = as_oid(oid)
        if oid not in self._labels:
            raise UnknownOidError(f"unknown oid {oid}")
        return OemObject(self, oid)

    def root_objects(self) -> tuple["OemObject", ...]:
        return tuple(OemObject(self, r) for r in self._roots)

    # -- graph helpers -------------------------------------------------------

    def reachable_from(self, oid: OidLike,
                       include_start: bool = True) -> set[Oid]:
        """Return the oids reachable from *oid* via subobject edges."""
        start = as_oid(oid)
        if start not in self._labels:
            raise UnknownOidError(f"unknown oid {start}")
        seen: set[Oid] = {start}
        frontier = [start]
        while frontier:
            current = frontier.pop()
            for child in self.children(current):
                if child not in seen:
                    seen.add(child)
                    frontier.append(child)
        if not include_start:
            seen.discard(start)
        return seen

    def reachable_oids(self) -> set[Oid]:
        """Return oids reachable from any root (the queryable portion)."""
        seen: set[Oid] = set()
        for root in self._roots:
            seen |= self.reachable_from(root)
        return seen

    def copy_subgraph_into(self, target: "OemDatabase",
                           oid: OidLike) -> None:
        """Copy the subgraph rooted at *oid* into *target*, preserving oids.

        This realizes TSL's copy semantics: when an answer "hangs" a source
        subgraph off a constructed node, the source objects (same oids)
        become part of the answer graph.
        """
        for node in sorted(self.reachable_from(oid), key=str):
            if self.is_atomic(node):
                target.add_atomic(node, self.label(node),
                                  self.atomic_value(node))
            else:
                target.add_set(node, self.label(node))
        for node in sorted(self.reachable_from(oid), key=str):
            for child in self.children(node):
                target.add_child(node, child)

    def check_integrity(self) -> None:
        """Raise :class:`OemError` on dangling edges or unregistered roots."""
        for parent, kids in self._children.items():
            for child in kids:
                if child not in self._labels:
                    raise OemError(
                        f"dangling subobject edge {parent} -> {child}")
        for root in self._roots:
            if root not in self._labels:
                raise OemError(f"root {root} is not a registered object")

    def stats(self) -> dict[str, int]:
        """Return simple size statistics (objects, atoms, edges, roots)."""
        edges = sum(len(kids) for kids in self._children.values())
        return {
            "objects": len(self._labels),
            "atomic": len(self._atoms),
            "set": len(self._children),
            "edges": edges,
            "roots": len(self._roots),
        }

    def __repr__(self) -> str:
        s = self.stats()
        return (f"OemDatabase({self.name!r}, objects={s['objects']}, "
                f"edges={s['edges']}, roots={s['roots']})")


class OemObject:
    """A navigational view over one object of an :class:`OemDatabase`."""

    __slots__ = ("db", "oid")

    def __init__(self, db: OemDatabase, oid: Oid) -> None:
        self.db = db
        self.oid = oid

    @property
    def label(self) -> Atom:
        return self.db.label(self.oid)

    @property
    def is_atomic(self) -> bool:
        return self.db.is_atomic(self.oid)

    @property
    def value(self) -> Union[Atom, tuple["OemObject", ...]]:
        """The atomic value, or the tuple of subobject views."""
        if self.is_atomic:
            return self.db.atomic_value(self.oid)
        return tuple(OemObject(self.db, c) for c in self.db.children(self.oid))

    def subobjects(self, label: Atom | None = None) -> tuple["OemObject", ...]:
        """Return subobject views, optionally filtered by label."""
        kids = tuple(OemObject(self.db, c)
                     for c in self.db.children(self.oid))
        if label is None:
            return kids
        return tuple(k for k in kids if k.label == label)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, OemObject):
            return NotImplemented
        return self.db is other.db and self.oid == other.oid

    def __hash__(self) -> int:
        return hash((id(self.db), self.oid))

    def __repr__(self) -> str:
        kind = "atomic" if self.is_atomic else "set"
        return f"<{self.oid} {self.label} ({kind})>"


def merge_databases(name: str, parts: Iterable[OemDatabase]) -> OemDatabase:
    """Union several databases into one (oids must not conflict)."""
    merged = OemDatabase(name)
    for part in parts:
        for oid in part.oids():
            if part.is_atomic(oid):
                merged.add_atomic(oid, part.label(oid), part.atomic_value(oid))
            else:
                merged.add_set(oid, part.label(oid))
        for oid in part.oids():
            for child in part.children(oid):
                merged.add_child(oid, child)
        for root in part.roots:
            merged.add_root(root)
    return merged
