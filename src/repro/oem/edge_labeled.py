"""The edge-labeled OEM variant (Section 6, "OEM variants and rewriting").

A popular variant of OEM (used by Lore [26]) puts labels on the *edges*
instead of the nodes.  Section 6 notes the paper's techniques apply with
little change; "one noteworthy difference is that the only implicit
functional dependency present in this variant is object id to value".

This module provides the variant as a small data structure plus lossless
conversions to and from node-labeled OEM.  The conversion to node-labeled
form pushes each edge label onto its target node; when a node is reached
through edges with *different* labels it must be split (one copy per
incoming label), so the conversion derives fresh function-term oids
``labeled(<oid>, <label>)``.
"""

from __future__ import annotations

from typing import Iterator

from ..logic.terms import Atom, Constant, FunctionTerm, Term
from ..errors import OemError, UnknownOidError
from .model import OemDatabase, Oid, OidLike, as_oid

ROOT_LABEL = "root"


class EdgeLabeledDatabase:
    """An OEM graph with labels on edges and values on leaf nodes."""

    def __init__(self, name: str = "db") -> None:
        self.name = name
        self._atoms: dict[Oid, Atom] = {}
        self._nodes: set[Oid] = set()
        self._edges: dict[Oid, list[tuple[Atom, Oid]]] = {}
        self._roots: list[Oid] = []

    def add_node(self, oid: OidLike, value: Atom | None = None) -> Oid:
        """Add a node; leaf nodes carry an atomic *value*."""
        oid = as_oid(oid)
        if oid in self._nodes:
            if self._atoms.get(oid) != value:
                raise OemError(f"node {oid} already added with another value")
            return oid
        self._nodes.add(oid)
        self._edges[oid] = []
        if value is not None:
            self._atoms[oid] = value
        return oid

    def add_edge(self, parent: OidLike, label: Atom, child: OidLike) -> None:
        parent, child = as_oid(parent), as_oid(child)
        if parent not in self._nodes:
            raise UnknownOidError(f"unknown node {parent}")
        if (label, child) not in self._edges[parent]:
            self._edges[parent].append((label, child))

    def add_root(self, oid: OidLike) -> None:
        oid = as_oid(oid)
        if oid not in self._roots:
            self._roots.append(oid)

    @property
    def roots(self) -> tuple[Oid, ...]:
        return tuple(self._roots)

    def nodes(self) -> Iterator[Oid]:
        return iter(self._nodes)

    def edges(self, oid: OidLike) -> tuple[tuple[Atom, Oid], ...]:
        return tuple(self._edges[as_oid(oid)])

    def value(self, oid: OidLike) -> Atom | None:
        return self._atoms.get(as_oid(oid))


def to_node_labeled(db: EdgeLabeledDatabase) -> OemDatabase:
    """Convert edge-labeled OEM to the paper's node-labeled OEM.

    Each (incoming-label, node) pair becomes one node-labeled object with
    oid ``labeled(<oid>, <label>)``; roots get the synthetic label
    ``root``.  Reachability and values are preserved; nodes reachable under
    k distinct labels are split into k label-variants sharing subobjects.
    """
    out = OemDatabase(db.name)

    def variant_oid(oid: Oid, label: Atom) -> Term:
        return FunctionTerm("labeled", (oid, Constant(label)))

    # Discover all (node, incoming-label) variants reachable from roots.
    pending: list[tuple[Oid, Atom]] = [(r, ROOT_LABEL) for r in db.roots]
    seen: set[tuple[Oid, Atom]] = set()
    while pending:
        node, label = pending.pop()
        if (node, label) in seen:
            continue
        seen.add((node, label))
        value = db.value(node)
        if value is not None and not db.edges(node):
            out.add_atomic(variant_oid(node, label), label, value)
        else:
            out.add_set(variant_oid(node, label), label)
            for edge_label, child in db.edges(node):
                pending.append((child, edge_label))
    for node, label in sorted(seen, key=lambda p: (str(p[0]), str(p[1]))):
        if not out.is_atomic(variant_oid(node, label)):
            for edge_label, child in db.edges(node):
                out.add_child(variant_oid(node, label),
                              variant_oid(child, edge_label))
    for root in db.roots:
        out.add_root(variant_oid(root, ROOT_LABEL))
    return out


def from_node_labeled(db: OemDatabase) -> EdgeLabeledDatabase:
    """Convert node-labeled OEM to the edge-labeled variant.

    Each object becomes a node keeping its oid; its label moves onto every
    incoming edge.  Roots keep their label on a virtual incoming edge by
    being registered as roots directly (the label is recoverable from any
    parent edge; for roots it is recorded as an edge from a synthetic
    root-holder only implicitly -- the typical Lore encoding).
    """
    out = EdgeLabeledDatabase(db.name)
    reachable = db.reachable_oids()
    for oid in sorted(reachable, key=str):
        value = db.atomic_value(oid) if db.is_atomic(oid) else None
        out.add_node(oid, value)
    for oid in sorted(reachable, key=str):
        for child in db.children(oid):
            out.add_edge(oid, db.label(child), child)
    for root in db.roots:
        out.add_root(root)
    return out
