"""Graphviz DOT export for OEM databases and answer graphs.

Handy for inspecting fused answers and hanging subgraphs; pipe the output
through ``dot -Tsvg``.  Roots are drawn as double circles, atomic objects
as boxes labeled ``label = value``, set objects as ellipses.
"""

from __future__ import annotations

from .model import OemDatabase, Oid


def _escape(text: str) -> str:
    return text.replace("\\", "\\\\").replace('"', '\\"')


def _quote(text: str) -> str:
    return '"' + _escape(text) + '"'


def _node_id(oid: Oid) -> str:
    return _quote(str(oid))


def to_dot(db: OemDatabase, graph_name: str = "oem",
           reachable_only: bool = True) -> str:
    """Render *db* as a Graphviz digraph."""
    lines = [f"digraph {_quote(graph_name)} {{",
             "  rankdir=TB;",
             "  node [fontsize=10];"]
    oids = db.reachable_oids() if reachable_only else set(db.oids())
    for oid in sorted(oids, key=str):
        shape = "box" if db.is_atomic(oid) else "ellipse"
        if db.is_root(oid):
            extra = ", peripheries=2"
        else:
            extra = ""
        if db.is_atomic(oid):
            label = f"{db.label(oid)} = {db.atomic_value(oid)}"
        else:
            label = str(db.label(oid))
        node_label = '"' + _escape(label) + "\\n" + _escape(str(oid)) + '"'
        lines.append(f"  {_node_id(oid)} [shape={shape}, "
                     f"label={node_label}{extra}];")
    for oid in sorted(oids, key=str):
        for child in db.children(oid):
            if child in oids:
                lines.append(f"  {_node_id(oid)} -> {_node_id(child)};")
    lines.append("}")
    return "\n".join(lines)
