"""Equivalence of OEM databases, per Section 3 of the paper.

Two OEM databases are equivalent iff they are *identical*: the same set of
object ids, and each shared oid has the same label, the same atomic/set
kind, the same atomic value (if atomic), and identical subobject sets (if a
set object).  The paper restricts attention to objects reachable from the
roots ("we ignore objects that are not reachable from the roots"), so the
comparison is over the reachable portions, and the root sets themselves
must coincide.
"""

from __future__ import annotations

from .model import OemDatabase, Oid


def identical(left: OemDatabase, right: OemDatabase) -> bool:
    """Return True iff the two databases are identical (Section 3)."""
    return not explain_difference(left, right, limit=1)


def explain_difference(left: OemDatabase, right: OemDatabase,
                       limit: int | None = None) -> list[str]:
    """Return human-readable differences between two databases.

    An empty list means the databases are identical.  *limit* caps the
    number of differences reported (None means all).
    """
    diffs: list[str] = []

    def done() -> bool:
        return limit is not None and len(diffs) >= limit

    left_roots = set(left.roots)
    right_roots = set(right.roots)
    for root in sorted(left_roots - right_roots, key=str):
        diffs.append(f"root {root} only in {left.name}")
        if done():
            return diffs
    for root in sorted(right_roots - left_roots, key=str):
        diffs.append(f"root {root} only in {right.name}")
        if done():
            return diffs

    left_oids = left.reachable_oids()
    right_oids = right.reachable_oids()
    for oid in sorted(left_oids - right_oids, key=str):
        diffs.append(f"object {oid} only in {left.name}")
        if done():
            return diffs
    for oid in sorted(right_oids - left_oids, key=str):
        diffs.append(f"object {oid} only in {right.name}")
        if done():
            return diffs

    for oid in sorted(left_oids & right_oids, key=str):
        diff = _compare_object(left, right, oid)
        if diff is not None:
            diffs.append(diff)
            if done():
                return diffs
    return diffs


def _compare_object(left: OemDatabase, right: OemDatabase,
                    oid: Oid) -> str | None:
    if left.label(oid) != right.label(oid):
        return (f"object {oid}: label {left.label(oid)!r} in {left.name} "
                f"vs {right.label(oid)!r} in {right.name}")
    left_atomic = left.is_atomic(oid)
    right_atomic = right.is_atomic(oid)
    if left_atomic != right_atomic:
        kinds = ("atomic" if left_atomic else "set",
                 "atomic" if right_atomic else "set")
        return (f"object {oid}: {kinds[0]} in {left.name} "
                f"vs {kinds[1]} in {right.name}")
    if left_atomic:
        if left.atomic_value(oid) != right.atomic_value(oid):
            return (f"object {oid}: value {left.atomic_value(oid)!r} in "
                    f"{left.name} vs {right.atomic_value(oid)!r} in "
                    f"{right.name}")
        return None
    left_kids = set(left.children(oid))
    right_kids = set(right.children(oid))
    if left_kids != right_kids:
        only_left = sorted(left_kids - right_kids, key=str)
        only_right = sorted(right_kids - left_kids, key=str)
        return (f"object {oid}: subobjects differ "
                f"(only in {left.name}: {only_left}; "
                f"only in {right.name}: {only_right})")
    return None
