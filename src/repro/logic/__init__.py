"""Term algebra, unification, and Datalog substrate."""

from .terms import (Atom, Constant, FunctionTerm, SetValue, Term, Variable,
                    const, fn, rename_term, var, variables_of)
from .subst import EMPTY_SUBSTITUTION, Substitution
from .unify import match, unify, unify_all
from .datalog import (Atom, Database, DatalogError, Literal, Rule,
                      evaluate as datalog_evaluate, fact, query as
                      datalog_query, rule)

# The TSL translation lives in repro.logic.translate; it is not re-exported
# here because it depends on repro.oem and repro.tsl (import it directly).

__all__ = [
    "Atom", "Literal", "Rule", "Database", "DatalogError",
    "fact", "rule", "datalog_evaluate", "datalog_query",
    "Term", "Constant", "Variable", "FunctionTerm", "SetValue", "Atom",
    "const", "var", "fn", "variables_of", "rename_term",
    "Substitution", "EMPTY_SUBSTITUTION",
    "unify", "unify_all", "match",
]
