"""Most-general unification over the term algebra of :mod:`repro.logic.terms`.

Unification is the engine behind query-view composition (Section 3.1,
Step 2A of the paper): a condition over a view is resolved against the view
head by unifying object-id terms, labels, and values.  Function symbols are
uninterpreted, so ``f(X) = g(Y)`` fails unless the functors and arities
match, and ``f(X1..Xn) = f(Y1..Yn)`` reduces to pointwise unification --
exactly the "key dependency on object id" reasoning the paper relies on.

The occurs check is enabled: TSL forbids cyclic object patterns, and a
binding ``X -> f(X)`` would denote exactly such a cycle.
"""

from __future__ import annotations

from typing import Iterable

from .subst import Substitution
from .terms import (Constant, FunctionTerm, Term, Variable,
                    cached_variable_set)


def _occurs(v: Variable, term: Term) -> bool:
    return any(v == w for w in term.variables())


def unify(left: Term, right: Term,
          subst: Substitution | None = None) -> Substitution | None:
    """Return a most general unifier of *left* and *right*, or None.

    When *subst* is given, unification proceeds under it (both sides are
    rewritten by it first) and the result extends it.
    """
    subst = subst or Substitution()
    stack: list[tuple[Term, Term]] = [(left, right)]
    while stack:
        a, b = stack.pop()
        a = subst.apply(a)
        b = subst.apply(b)
        if a == b:
            continue
        if isinstance(a, Variable):
            if _occurs(a, b):
                return None
            subst = subst.bind(a, b)
        elif isinstance(b, Variable):
            if _occurs(b, a):
                return None
            subst = subst.bind(b, a)
        elif isinstance(a, Constant) and isinstance(b, Constant):
            if a.value != b.value:
                return None
        elif isinstance(a, FunctionTerm) and isinstance(b, FunctionTerm):
            if a.functor != b.functor or len(a.args) != len(b.args):
                return None
            stack.extend(zip(a.args, b.args))
        else:
            return None
    return subst


def unify_all(pairs: Iterable[tuple[Term, Term]],
              subst: Substitution | None = None) -> Substitution | None:
    """Unify every pair in *pairs* simultaneously; None on failure."""
    subst = subst or Substitution()
    for a, b in pairs:
        result = unify(a, b, subst)
        if result is None:
            return None
        subst = result
    return subst


def match(pattern: Term, target: Term,
          subst: Substitution | None = None) -> Substitution | None:
    """One-way matching: bind variables of *pattern* to make it *target*.

    Variables occurring in *target* are treated as constants (they are never
    bound).  Matching is what containment mappings use -- a mapping sends
    the view's variables onto the query's terms, never the reverse.
    """
    subst = subst or Substitution()
    # Only variables reachable from the pattern are ever popped off the
    # stack, so the pattern's (cached) variable set suffices: a variable
    # in subst's domain but not the pattern fails ``a not in subst``
    # under the old ``| set(subst)`` form just the same.
    bindable = cached_variable_set(pattern)
    stack: list[tuple[Term, Term]] = [(pattern, target)]
    while stack:
        a, b = stack.pop()
        a = subst.apply(a)
        if a == b:
            continue
        if isinstance(a, Variable) and a in bindable and a not in subst:
            subst = subst.bind(a, b)
        elif isinstance(a, Constant) and isinstance(b, Constant):
            if a.value != b.value:
                return None
        elif isinstance(a, FunctionTerm) and isinstance(b, FunctionTerm):
            if a.functor != b.functor or len(a.args) != len(b.args):
                return None
            stack.extend(zip(a.args, b.args))
        else:
            return None
    return subst
