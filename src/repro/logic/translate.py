"""The TSL-to-Datalog translation of [28] (Section 2, Section 6).

"TSL can be translated to Datalog with function symbols and limited
recursion over a fixed schema."  This module realizes that translation and
uses it as an independent evaluation path: an OEM database becomes a set
of EDB facts, a TSL rule becomes Datalog rules deriving ``ans_*`` facts,
and the model decodes back into an OEM answer database.  The test suite
cross-checks it against the direct evaluator
(:mod:`repro.tsl.evaluator`) -- experiment E13 of DESIGN.md.

EDB schema (fixed, per [28])::

    root(src, O)        O is a root of source src
    label(O, L)         object O carries label L
    atomic(O, V)        O is atomic with value V
    isset(O)            O is a set object
    member(O, C)        C is a subobject of O
    value_of(O, W)      W is O's value: the raw atom, or setval(O)
    setvalue(setval(O), O)   destructuring helper for set values
    atomvalue(V)        V occurs as an atomic value

The copy semantics ("hanging subgraphs") become the translation's limited
recursion: once an answer object hangs a source set value, the source
subgraph is copied by a transitive ``ans_copied`` closure over ``member``.

Known, documented difference from the direct evaluator: set values are
compared by set-object *oid* here, while the evaluator compares them by
*member set*; the two differ only when a query joins one variable across
two distinct set objects that happen to have identical member sets.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import FusionConflictError, TslError
from ..oem.model import OemDatabase
from ..tsl.ast import ObjectPattern, Query, SetPattern
from ..tsl.evaluator import Sources, _as_sources
from ..tsl.normalize import normalize, query_paths
from .datalog import Atom, Literal, Rule, evaluate as datalog_evaluate
from .terms import Constant, FunctionTerm, Term, Variable


def _setval(oid: Term) -> FunctionTerm:
    return FunctionTerm("setval", (oid,))


def encode_database(db: OemDatabase) -> list[Atom]:
    """Encode the reachable portion of *db* as EDB facts."""
    facts: list[Atom] = []
    reachable = db.reachable_oids()
    for oid in sorted(reachable, key=str):
        facts.append(Atom("label", (oid, Constant(db.label(oid)))))
        if db.is_atomic(oid):
            value = Constant(db.atomic_value(oid))
            facts.append(Atom("atomic", (oid, value)))
            facts.append(Atom("value_of", (oid, value)))
            facts.append(Atom("atomvalue", (value,)))
        else:
            facts.append(Atom("isset", (oid,)))
            facts.append(Atom("value_of", (oid, _setval(oid))))
            facts.append(Atom("setvalue", (_setval(oid), oid)))
            for child in db.children(oid):
                facts.append(Atom("member", (oid, child)))
    for root in db.roots:
        facts.append(Atom("root", (Constant(db.name), root)))
    return facts


def _body_atoms(query: Query) -> list[Atom]:
    """Translate the (normalized) body into EDB goal atoms."""
    atoms: list[Atom] = []
    for path in query_paths(query):
        first_oid = path.steps[0][0]
        atoms.append(Atom("root", (Constant(path.source), first_oid)))
        previous: Term | None = None
        for oid, label in path.steps:
            if previous is not None:
                atoms.append(Atom("member", (previous, oid)))
            atoms.append(Atom("label", (oid, label)))
            previous = oid
        leaf_oid = path.steps[-1][0]
        if isinstance(path.leaf, SetPattern):
            atoms.append(Atom("isset", (leaf_oid,)))
        elif isinstance(path.leaf, Constant):
            atoms.append(Atom("atomic", (leaf_oid, path.leaf)))
        else:
            atoms.append(Atom("value_of", (leaf_oid, path.leaf)))
    # Deduplicate while preserving order.
    seen: set[Atom] = set()
    unique = []
    for atom in atoms:
        if atom not in seen:
            seen.add(atom)
            unique.append(atom)
    return unique


@dataclass
class Translation:
    """The Datalog program for one TSL rule (plus shared copy rules)."""

    rules: list[Rule]
    body_predicate: str


def copy_rules() -> list[Rule]:
    """The fixed recursive rules realizing TSL's copy semantics."""
    O, S, C, C2, L, V = (Variable(n) for n in ("O", "S", "C", "C2", "L", "V"))
    return [
        Rule(Atom("ans_member", (O, C)),
             (Literal(Atom("ans_hang", (O, S))),
              Literal(Atom("member", (S, C))))),
        Rule(Atom("ans_copied", (C,)),
             (Literal(Atom("ans_hang", (O, S))),
              Literal(Atom("member", (S, C))))),
        Rule(Atom("ans_copied", (C2,)),
             (Literal(Atom("ans_copied", (C,))),
              Literal(Atom("member", (C, C2))))),
        Rule(Atom("ans_label", (C, L)),
             (Literal(Atom("ans_copied", (C,))),
              Literal(Atom("label", (C, L))))),
        Rule(Atom("ans_atomic", (C, V)),
             (Literal(Atom("ans_copied", (C,))),
              Literal(Atom("atomic", (C, V))))),
        Rule(Atom("ans_isset", (C,)),
             (Literal(Atom("ans_copied", (C,))),
              Literal(Atom("isset", (C,))))),
        Rule(Atom("ans_member", (C, C2)),
             (Literal(Atom("ans_copied", (C,))),
              Literal(Atom("member", (C, C2))))),
    ]


def translate_rule(query: Query, index: int = 0) -> Translation:
    """Translate one TSL rule into Datalog rules deriving ``ans_*`` facts."""
    query = normalize(query)
    goals = tuple(Literal(a) for a in _body_atoms(query))
    body_vars = sorted(query.body_variables(), key=lambda v: v.name)
    predicate = f"q{index}_body"
    rules: list[Rule] = [
        Rule(Atom(predicate, tuple(body_vars)), goals)]
    assignment = Literal(Atom(predicate, tuple(body_vars)))

    def emit(head: Atom, *extra: Literal) -> None:
        rules.append(Rule(head, (assignment,) + tuple(extra)))

    def walk(pattern: ObjectPattern, parent: Term | None) -> None:
        oid = pattern.oid
        emit(Atom("ans_label", (oid, pattern.label)))
        if parent is not None:
            emit(Atom("ans_member", (parent, oid)))
        value = pattern.value
        if isinstance(value, SetPattern):
            emit(Atom("ans_isset", (oid,)))
            for child in value.patterns:
                walk(child, oid)
        elif isinstance(value, Constant):
            emit(Atom("ans_atomic", (oid, value)))
        elif isinstance(value, Variable):
            # Two cases, resolved by the EDB guards: the bound value is a
            # raw atom, or it is a set value to hang.
            emit(Atom("ans_atomic", (oid, value)),
                 Literal(Atom("atomvalue", (value,))))
            hang_target = Variable("S__hang")
            emit(Atom("ans_hang", (oid, hang_target)),
                 Literal(Atom("setvalue", (value, hang_target))))
            emit(Atom("ans_isset", (oid,)),
                 Literal(Atom("setvalue", (value, Variable("S__hang")))))
        else:
            raise TslError(f"cannot translate head value {value}")

    walk(query.head, None)
    rules.append(Rule(Atom("ans_root", (query.head.oid,)), (assignment,)))
    return Translation(rules=rules, body_predicate=predicate)


def evaluate_via_datalog(rules: list[Query] | Query,
                         sources: OemDatabase | Sources,
                         answer_name: str = "answer") -> OemDatabase:
    """Evaluate TSL rule(s) through the Datalog translation (E13)."""
    if isinstance(rules, Query):
        rules = [rules]
    sources = _as_sources(sources)
    edb: list[Atom] = []
    for db in sources.values():
        edb.extend(encode_database(db))
    program: list[Rule] = list(copy_rules())
    for index, tsl_rule in enumerate(rules):
        program.extend(translate_rule(tsl_rule, index).rules)
    model = datalog_evaluate(program, edb)
    return _decode_answer(model, answer_name)


def _decode_answer(model, answer_name: str) -> OemDatabase:
    answer = OemDatabase(answer_name)
    labels: dict[Term, Term] = {}
    for atom in model.facts("ans_label"):
        oid, label = atom.args
        if oid in labels and labels[oid] != label:
            raise FusionConflictError(
                f"object {oid} derived with labels {labels[oid]} and {label}")
        labels[oid] = label
    atomics: dict[Term, Term] = {}
    for atom in model.facts("ans_atomic"):
        oid, value = atom.args
        if oid in atomics and atomics[oid] != value:
            raise FusionConflictError(
                f"object {oid} derived with two atomic values")
        atomics[oid] = value
    sets = {atom.args[0] for atom in model.facts("ans_isset")}
    conflict = sets & set(atomics)
    if conflict:
        raise FusionConflictError(
            f"objects both atomic and set: {sorted(map(str, conflict))}")
    for oid, label in sorted(labels.items(), key=lambda kv: str(kv[0])):
        if not isinstance(label, Constant):
            raise TslError(f"non-constant label derived for {oid}")
        if oid in atomics:
            value = atomics[oid]
            assert isinstance(value, Constant)
            answer.add_atomic(oid, label.value, value.value)
        else:
            answer.add_set(oid, label.value)
    for atom in sorted(model.facts("ans_member"), key=str):
        parent, child = atom.args
        answer.add_child(parent, child)
    for atom in sorted(model.facts("ans_root"), key=str):
        answer.add_root(atom.args[0])
    answer.check_integrity()
    return answer
