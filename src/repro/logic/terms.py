"""First-order terms over the Herbrand universe of the paper (Section 2).

Object ids in OEM are "terms from the Herbrand universe composed from a set
of atomic data ... and an arbitrary set of uninterpreted function symbols".
The same term algebra underlies TSL patterns, the Datalog translation, and
the unification machinery of query composition, so it lives here at the
bottom of the dependency graph.

Terms are immutable and hashable.  Three concrete kinds exist:

* :class:`Constant` -- an atom (string, int, or float).
* :class:`Variable` -- a named placeholder.
* :class:`FunctionTerm` -- an uninterpreted function symbol applied to a
  tuple of terms, e.g. ``f(P, X)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Iterator, Mapping, Union

from ..span import Span

Atom = Union[str, int, float]


class Term:
    """Abstract base of all terms.  Instances are immutable and hashable."""

    __slots__ = ()

    def is_ground(self) -> bool:
        """Return True when the term contains no variables."""
        raise NotImplementedError

    def variables(self) -> Iterator["Variable"]:
        """Yield each variable occurrence (with repetitions) in the term."""
        raise NotImplementedError

    def substitute(self, mapping: Mapping["Variable", "Term"]) -> "Term":
        """Return the term with every variable in *mapping* replaced."""
        raise NotImplementedError


@dataclass(frozen=True, slots=True)
class Constant(Term):
    """An atomic datum: a label, an atomic value, or an atomic object id."""

    value: Atom
    # Source location of this occurrence (parser-attached).  Spans never
    # participate in equality or hashing: terms with different spans are
    # the same term, so substitutions and containment mappings are
    # untouched by the analysis layer.
    span: Span | None = field(default=None, compare=False, repr=False)

    def is_ground(self) -> bool:
        return True

    def variables(self) -> Iterator["Variable"]:
        return iter(())

    def substitute(self, mapping: Mapping["Variable", Term]) -> Term:
        return self

    def __str__(self) -> str:
        return str(self.value)


@dataclass(frozen=True, slots=True)
class Variable(Term):
    """A named variable.

    The paper partitions variables into object-id variables and label/value
    variables by *position*; the partition is validated at the query level
    (see :mod:`repro.tsl.validate`), not carried on the variable itself.
    """

    name: str
    span: Span | None = field(default=None, compare=False, repr=False)

    def is_ground(self) -> bool:
        return False

    def variables(self) -> Iterator["Variable"]:
        yield self

    def substitute(self, mapping: Mapping["Variable", Term]) -> Term:
        return mapping.get(self, self)

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True, slots=True)
class FunctionTerm(Term):
    """An uninterpreted function symbol applied to argument terms."""

    functor: str
    args: tuple[Term, ...]
    span: Span | None = field(default=None, compare=False, repr=False)

    def is_ground(self) -> bool:
        return all(arg.is_ground() for arg in self.args)

    def variables(self) -> Iterator[Variable]:
        for arg in self.args:
            yield from arg.variables()

    def substitute(self, mapping: Mapping[Variable, Term]) -> Term:
        return FunctionTerm(self.functor,
                            tuple(arg.substitute(mapping)
                                  for arg in self.args),
                            span=self.span)

    def __str__(self) -> str:
        inner = ",".join(str(arg) for arg in self.args)
        return f"{self.functor}({inner})"


@dataclass(frozen=True, slots=True)
class SetValue(Term):
    """The runtime value of a set OEM object: the set of its subobjects.

    Per Section 2 the value of a set object is the OEM subgraph rooted at
    it, which is fully determined by the set of subobject oids; equality
    and hashing therefore use ``members`` only.  ``source`` records which
    database the members live in so answers can hang the subgraph off the
    constructed tree (TSL's copy semantics); it does not affect equality.
    """

    members: frozenset[Term]
    source: str = "db"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SetValue):
            return NotImplemented
        return self.members == other.members

    def __hash__(self) -> int:
        return hash(("SetValue", self.members))

    def is_ground(self) -> bool:
        return True

    def variables(self) -> Iterator["Variable"]:
        return iter(())

    def substitute(self, mapping: Mapping["Variable", Term]) -> Term:
        return self

    def __str__(self) -> str:
        inner = " ".join(sorted(str(m) for m in self.members))
        return "{" + inner + "}"


def const(value: Atom) -> Constant:
    """Shorthand constructor for :class:`Constant`."""
    return Constant(value)


def var(name: str) -> Variable:
    """Shorthand constructor for :class:`Variable`."""
    return Variable(name)


def fn(functor: str, *args: Term) -> FunctionTerm:
    """Shorthand constructor for :class:`FunctionTerm`."""
    return FunctionTerm(functor, tuple(args))


def variables_of(term: Term) -> set[Variable]:
    """Return the set of distinct variables occurring in *term*."""
    return set(term.variables())


@lru_cache(maxsize=65536)
def cached_variable_set(term: Term) -> frozenset[Variable]:
    """The distinct variables of *term*, cached by term equality.

    One-way matching (:func:`repro.logic.unify.match`) consults the
    pattern's variable set on every call; terms are immutable (spans are
    excluded from equality), so the set is safe to memoize globally.
    """
    return frozenset(term.variables())


def rename_term(term: Term, suffix: str) -> Term:
    """Return *term* with every variable ``X`` renamed to ``X<suffix>``.

    Used to produce fresh copies of view bodies during composition.
    """
    mapping = {v: Variable(v.name + suffix) for v in variables_of(term)}
    return term.substitute(mapping)
