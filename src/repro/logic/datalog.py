"""A Datalog engine with function symbols (the substrate of [28]).

Section 2 notes that "TSL can be translated to Datalog with function
symbols and limited recursion over a fixed schema".  This module provides
that substrate: facts and rules over the term algebra, evaluated bottom-up
with semi-naive iteration.  Function symbols make the Herbrand universe
infinite, so termination is not guaranteed in general; the TSL translation
(:mod:`repro.logic.translate`) only produces the restricted recursion of
[28], which terminates, and the engine enforces a configurable derivation
cap as a backstop.

The engine also supports *stratified negation*, which the TSL fragment
does not need but rounds out the substrate for the mediator cost model
and the test suite's cross-checks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

from ..errors import ReproError
from .subst import Substitution
from .terms import Term, Variable
from .unify import unify


class DatalogError(ReproError):
    """Raised for malformed programs or exceeded derivation caps."""


@dataclass(frozen=True, slots=True)
class Atom:
    """A predicate applied to terms, e.g. ``member(X, f(Y))``."""

    predicate: str
    args: tuple[Term, ...]

    def arity(self) -> int:
        return len(self.args)

    def substitute(self, subst: Substitution) -> "Atom":
        return Atom(self.predicate,
                    tuple(subst.apply(arg) for arg in self.args))

    def is_ground(self) -> bool:
        return all(arg.is_ground() for arg in self.args)

    def variables(self) -> Iterator[Variable]:
        for arg in self.args:
            yield from arg.variables()

    def __str__(self) -> str:
        inner = ",".join(str(arg) for arg in self.args)
        return f"{self.predicate}({inner})"


@dataclass(frozen=True, slots=True)
class Literal:
    """An atom or its negation (for stratified programs)."""

    atom: Atom
    positive: bool = True

    def substitute(self, subst: Substitution) -> "Literal":
        return Literal(self.atom.substitute(subst), self.positive)

    def __str__(self) -> str:
        return str(self.atom) if self.positive else f"not {self.atom}"


@dataclass(frozen=True, slots=True)
class Rule:
    """``head :- body``; facts are rules with an empty body."""

    head: Atom
    body: tuple[Literal, ...] = ()

    def __post_init__(self) -> None:
        head_vars = set(self.head.variables())
        positive_vars: set[Variable] = set()
        for literal in self.body:
            if literal.positive:
                positive_vars.update(literal.atom.variables())
        unsafe = head_vars - positive_vars
        if self.body and unsafe:
            names = ", ".join(sorted(v.name for v in unsafe))
            raise DatalogError(f"unsafe rule: head variables {names} not "
                               "bound by a positive body literal")
        for literal in self.body:
            if not literal.positive:
                free = set(literal.atom.variables()) - positive_vars
                if free:
                    raise DatalogError(
                        "unsafe negation: variables not bound positively")

    def is_fact(self) -> bool:
        return not self.body and self.head.is_ground()

    def __str__(self) -> str:
        if not self.body:
            return f"{self.head}."
        body = ", ".join(str(lit) for lit in self.body)
        return f"{self.head} :- {body}."


def fact(predicate: str, *args: Term) -> Rule:
    """Shorthand for a ground fact."""
    return Rule(Atom(predicate, tuple(args)))


def rule(head: Atom, *body: Atom | Literal) -> Rule:
    """Shorthand for a rule with positive body atoms (or literals)."""
    literals = tuple(b if isinstance(b, Literal) else Literal(b)
                     for b in body)
    return Rule(head, literals)


@dataclass
class Database:
    """A set of ground facts, indexed by predicate and by first argument."""

    _facts: dict[str, set[Atom]] = field(default_factory=dict)
    _by_first: dict[tuple[str, Term], list[Atom]] = field(
        default_factory=dict)

    def add(self, atom: Atom) -> bool:
        """Insert a ground fact; returns True when it is new."""
        if not atom.is_ground():
            raise DatalogError(f"cannot store non-ground fact {atom}")
        bucket = self._facts.setdefault(atom.predicate, set())
        if atom in bucket:
            return False
        bucket.add(atom)
        if atom.args:
            self._by_first.setdefault(
                (atom.predicate, atom.args[0]), []).append(atom)
        return True

    def facts(self, predicate: str) -> frozenset[Atom]:
        return frozenset(self._facts.get(predicate, ()))

    def candidates(self, goal: Atom, subst: "Substitution") -> Iterable[Atom]:
        """Facts that could unify with *goal* under *subst*.

        Uses the first-argument index when the goal's first argument is
        ground under the substitution; otherwise scans the predicate.
        """
        # Materialize: derivation inserts facts while joins iterate.
        if goal.args:
            first = subst.apply(goal.args[0])
            if first.is_ground():
                return tuple(self._by_first.get((goal.predicate, first),
                                                ()))
        return tuple(self._facts.get(goal.predicate, ()))

    def all_facts(self) -> Iterator[Atom]:
        for bucket in self._facts.values():
            yield from bucket

    def __contains__(self, atom: Atom) -> bool:
        return atom in self._facts.get(atom.predicate, ())

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self._facts.values())


def _stratify(rules: Sequence[Rule]) -> list[list[Rule]]:
    """Split rules into strata so negation only sees lower strata."""
    predicates = {r.head.predicate for r in rules}
    stratum: dict[str, int] = {p: 0 for p in predicates}
    for _ in range(len(predicates) + 1):
        changed = False
        for r in rules:
            for literal in r.body:
                p = literal.atom.predicate
                if p not in stratum:
                    continue
                needed = stratum[p] + (0 if literal.positive else 1)
                if needed > stratum[r.head.predicate]:
                    stratum[r.head.predicate] = needed
                    changed = True
        if not changed:
            break
    else:
        raise DatalogError("program is not stratifiable")
    buckets: dict[int, list[Rule]] = {}
    for r in rules:
        buckets.setdefault(stratum[r.head.predicate], []).append(r)
    return [buckets[level] for level in sorted(buckets)]


def evaluate(rules: Sequence[Rule], edb: Iterable[Atom] = (),
             max_derivations: int = 1_000_000) -> Database:
    """Bottom-up semi-naive evaluation; returns the full model.

    *edb* seeds the database with extensional facts.  Raises
    :class:`DatalogError` when more than *max_derivations* facts are
    derived (a runaway function-symbol recursion).
    """
    db = Database()
    for atom in edb:
        db.add(atom)
    proper_rules: list[Rule] = []
    for r in rules:
        if r.is_fact():
            db.add(r.head)
        else:
            proper_rules.append(r)
    for stratum in _stratify(proper_rules):
        _evaluate_stratum(stratum, db, max_derivations)
    return db


def _evaluate_stratum(rules: Sequence[Rule], db: Database,
                      max_derivations: int) -> None:
    """Semi-naive iteration.

    Round 1 applies every rule naively (one join per rule); later rounds
    seed one body literal from the delta (facts new in the previous
    round) and the rest from the full database, so old derivations are
    not re-joined from scratch.
    """
    def derive(subst: Substitution, rule: Rule,
               new_delta: dict[str, set[Atom]]) -> None:
        derived = rule.head.substitute(subst)
        if not derived.is_ground():
            raise DatalogError(f"derived non-ground fact {derived}")
        if db.add(derived):
            new_delta.setdefault(derived.predicate, set()).add(derived)
            if len(db) > max_derivations:
                raise DatalogError(
                    f"derivation cap exceeded ({max_derivations}); "
                    "unbounded function-symbol recursion?")

    delta: dict[str, set[Atom]] = {}
    for r in rules:
        ordered = _order_literals(list(r.body), set())
        for subst in _match_body(ordered, 0, Substitution(), db):
            derive(subst, r, delta)
    while delta:
        new_delta: dict[str, set[Atom]] = {}
        for r in rules:
            for pivot, literal in enumerate(r.body):
                if not literal.positive:
                    continue
                seeds = delta.get(literal.atom.predicate)
                if not seeds:
                    continue
                rest = _order_literals(
                    list(r.body[:pivot] + r.body[pivot + 1:]),
                    set(literal.atom.variables()))
                for seed in seeds:
                    start = _unify_atoms(literal.atom, seed,
                                         Substitution())
                    if start is None:
                        continue
                    for subst in _match_body(rest, 0, start, db):
                        derive(subst, r, new_delta)
        delta = new_delta


def _order_literals(literals: list[Literal],
                    bound: set[Variable]) -> list[Literal]:
    """Static sideways-information-passing order for a join.

    Repeatedly pick: a negated literal whose variables are all bound,
    else a positive literal whose first argument is bound (index lookup),
    else a positive literal sharing any bound variable, else any positive
    literal.  Variables of the chosen literal become bound.
    """
    bound = set(bound)
    remaining = list(literals)
    ordered: list[Literal] = []
    while remaining:
        best_index = 0
        best_score = -1
        for index, literal in enumerate(remaining):
            atom_vars = set(literal.atom.variables())
            if not literal.positive:
                score = 4 if atom_vars <= bound else -1
            elif literal.atom.args and (
                    not set(literal.atom.args[0].variables()) - bound):
                score = 3
            elif atom_vars & bound:
                score = 2
            else:
                score = 1
            if score > best_score:
                best_index, best_score = index, score
                if score == 4:
                    break
        chosen = remaining.pop(best_index)
        ordered.append(chosen)
        bound |= set(chosen.atom.variables())
    return ordered


def _match_body(literals: list[Literal], index: int,
                subst: Substitution, db: Database
                ) -> Iterator[Substitution]:
    if index == len(literals):
        yield subst
        return
    literal = literals[index]
    if literal.positive:
        for candidate in db.candidates(literal.atom, subst):
            extended = _unify_atoms(literal.atom, candidate, subst)
            if extended is not None:
                yield from _match_body(literals, index + 1, extended, db)
    else:
        ground = literal.atom.substitute(subst)
        if not ground.is_ground():
            raise DatalogError(f"negated literal {ground} not ground")
        if ground not in db:
            yield from _match_body(literals, index + 1, subst, db)


def _unify_atoms(pattern: Atom, ground: Atom,
                 subst: Substitution) -> Substitution | None:
    if pattern.predicate != ground.predicate or \
            pattern.arity() != ground.arity():
        return None
    current = subst
    for p_arg, g_arg in zip(pattern.args, ground.args):
        result = unify(p_arg, g_arg, current)
        if result is None:
            return None
        current = result
    return current


def query(db: Database, goal: Atom) -> list[Substitution]:
    """All substitutions making *goal* a fact of *db*."""
    results = []
    for candidate in db.facts(goal.predicate):
        subst = _unify_atoms(goal, candidate, Substitution())
        if subst is not None:
            results.append(subst)
    return results
