"""Substitutions: finite mappings from variables to terms.

A :class:`Substitution` is immutable; ``bind`` returns a new substitution.
Application is *idempotent* after :meth:`Substitution.normalized` -- the
right-hand sides contain no variable that is itself bound -- which is the
form produced by unification (see :mod:`repro.logic.unify`).
"""

from __future__ import annotations

from typing import Iterator, Mapping

from .terms import Term, Variable


class Substitution:
    """An immutable mapping from :class:`Variable` to :class:`Term`."""

    __slots__ = ("_mapping",)

    def __init__(self, mapping: Mapping[Variable, Term] | None = None) -> None:
        self._mapping: dict[Variable, Term] = dict(mapping or {})

    # -- mapping protocol --------------------------------------------------

    def __contains__(self, v: Variable) -> bool:
        return v in self._mapping

    def __getitem__(self, v: Variable) -> Term:
        return self._mapping[v]

    def get(self, v: Variable, default: Term | None = None) -> Term | None:
        return self._mapping.get(v, default)

    def __len__(self) -> int:
        return len(self._mapping)

    def __iter__(self) -> Iterator[Variable]:
        return iter(self._mapping)

    def items(self):
        return self._mapping.items()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Substitution):
            return NotImplemented
        return self._mapping == other._mapping

    def __hash__(self) -> int:
        return hash(frozenset(self._mapping.items()))

    def __repr__(self) -> str:
        inner = ", ".join(f"{v} -> {t}" for v, t in sorted(
            self._mapping.items(), key=lambda item: item[0].name))
        return f"[{inner}]"

    # -- construction ------------------------------------------------------

    def bind(self, v: Variable, t: Term) -> "Substitution":
        """Return a new substitution with ``v -> t`` added.

        The new binding is applied to existing right-hand sides so the
        result stays normalized when the inputs were.
        """
        updated = {
            w: rhs.substitute({v: t}) for w, rhs in self._mapping.items()
        }
        updated[v] = t
        return Substitution(updated)

    def compose(self, other: "Substitution") -> "Substitution":
        """Return the composition ``self`` then ``other``.

        Applying the result equals applying ``self`` first and ``other``
        second: ``(self.compose(other))(t) == other(self(t))``.
        """
        mapping: dict[Variable, Term] = {
            v: t.substitute(other._mapping) for v, t in self._mapping.items()
        }
        for v, t in other._mapping.items():
            mapping.setdefault(v, t)
        return Substitution(mapping)

    # -- application -------------------------------------------------------

    def apply(self, term: Term) -> Term:
        """Apply the substitution to *term*."""
        return term.substitute(self._mapping)

    def as_dict(self) -> dict[Variable, Term]:
        """Return a copy of the underlying mapping."""
        return dict(self._mapping)


EMPTY_SUBSTITUTION = Substitution()
