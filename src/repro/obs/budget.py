"""Resource budgets with cooperative cancellation.

A :class:`Budget` bounds a pipeline run by wall-clock time and/or a
number of *steps* (the unit is one unit of search work: a backtracking
node in the mapping search, one chase fixpoint iteration, one view copy
during composition, one enumerated candidate).  Pipeline loops call
:meth:`Budget.tick`; when the budget is exhausted a typed
:class:`~repro.errors.BudgetExceededError` unwinds to the nearest entry
point, which returns whatever partial results it accumulated, flagged
``truncated``.

``tick`` is designed for hot loops: the step counter is a plain integer
increment, and the (comparatively expensive) clock is consulted only
every :data:`Budget.CLOCK_EVERY` ticks.  Phase boundaries should call
:meth:`Budget.check` for an immediate deadline test.
"""

from __future__ import annotations

import time

from ..errors import BudgetExceededError

__all__ = ["Budget", "BudgetExceededError"]


class Budget:
    """Wall-clock deadline and step budget for one pipeline run."""

    #: How many ticks between clock reads in :meth:`tick`.
    CLOCK_EVERY = 64

    __slots__ = ("deadline_ms", "max_steps", "steps", "exceeded_reason",
                 "_clock", "_started", "_since_clock")

    def __init__(self, *, deadline_ms: float | None = None,
                 max_steps: int | None = None,
                 clock=time.monotonic) -> None:
        self.deadline_ms = deadline_ms
        self.max_steps = max_steps
        self.steps = 0
        self.exceeded_reason: str | None = None
        self._clock = clock
        self._started = clock()
        self._since_clock = 0

    @property
    def elapsed_ms(self) -> float:
        return (self._clock() - self._started) * 1e3

    @property
    def remaining_ms(self) -> float | None:
        if self.deadline_ms is None:
            return None
        return self.deadline_ms - self.elapsed_ms

    @property
    def exceeded(self) -> bool:
        return self.exceeded_reason is not None

    def tick(self, amount: int = 1) -> None:
        """Record *amount* steps of work; raise when the budget is spent."""
        self.steps += amount
        if self.max_steps is not None and self.steps > self.max_steps:
            self._fail("steps",
                       f"step budget of {self.max_steps} exhausted")
        if self.deadline_ms is not None:
            self._since_clock += 1
            if self._since_clock >= self.CLOCK_EVERY:
                self._since_clock = 0
                self._check_deadline()

    def check(self) -> None:
        """Immediate test of every limit (phase boundaries)."""
        if self.max_steps is not None and self.steps > self.max_steps:
            self._fail("steps",
                       f"step budget of {self.max_steps} exhausted")
        if self.deadline_ms is not None:
            self._check_deadline()

    def _check_deadline(self) -> None:
        if self.elapsed_ms > self.deadline_ms:
            self._fail("deadline",
                       f"deadline of {self.deadline_ms:g}ms exceeded")

    def _fail(self, reason: str, message: str) -> None:
        self.exceeded_reason = reason
        raise BudgetExceededError(
            f"{message} (after {self.steps} steps, "
            f"{self.elapsed_ms:.1f}ms)",
            reason=reason, steps=self.steps, elapsed_ms=self.elapsed_ms)
