"""Process-wide metrics registry: counters and bucketed histograms.

Where traces answer "what did *this run* do", metrics aggregate across
runs: the benchmarks, the fuzz harness, and a long-lived mediator all
feed the same registry so their numbers are comparable.

Instruments may carry **labels** (``phase.seconds{phase=chase}``): the
registry keys each (name, labels) pair separately, and the Prometheus
renderer in :mod:`repro.obs.export` groups them back into one metric
family per name.  Histograms are **bucketed**: each records cumulative
bucket counts against configurable upper boundaries plus count / sum /
min / max, from which p50/p90/p99 are estimated by linear interpolation
inside the winning bucket (the same estimate ``histogram_quantile``
computes server-side).

Thread-safety is per instrument: every :class:`Counter` and
:class:`Histogram` owns its lock, so a handle obtained once via
:meth:`MetricsRegistry.counter` and hammered with ``inc()`` from many
threads is exactly as safe as going through
:meth:`MetricsRegistry.increment` every time.  The registry's own lock
only guards the instrument dictionaries.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Mapping

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry", "METRICS",
           "DEFAULT_BUCKETS", "PHASE_SECONDS"]

#: Histogram name for pipeline phase latencies; the phase is a label
#: (``phase.seconds{phase=rewrite|chase|compose|equivalence|memo_lookup}``).
PHASE_SECONDS = "phase.seconds"

#: Default histogram boundaries (seconds), tuned for the latencies the
#: pipeline produces: sub-millisecond chases up to multi-second
#: exponential searches.  The +Inf overflow bucket is implicit.
DEFAULT_BUCKETS = (0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
                   0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0)

#: Quantiles reported in snapshots.
SNAPSHOT_QUANTILES = (("p50", 0.50), ("p90", 0.90), ("p99", 0.99))

Labels = tuple[tuple[str, str], ...]


def _freeze_labels(labels: Mapping[str, object] | None) -> Labels:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def labeled_name(name: str, labels: Labels) -> str:
    """The flat snapshot key: ``name`` or ``name{k=v,...}``."""
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in labels)
    return f"{name}{{{inner}}}"


class Counter:
    """A monotonically increasing count with its own lock."""

    __slots__ = ("name", "labels", "value", "_lock")

    def __init__(self, name: str = "", labels: Labels = ()) -> None:
        self.name = name
        self.labels = labels
        self.value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int | float = 1) -> None:
        with self._lock:
            self.value += amount

    def to_json(self) -> int | float:
        return self.value


class Gauge:
    """A value that can go up and down (queue depths, occupancy).

    Unlike a :class:`Counter` a gauge is *set* to the current level of
    something rather than accumulated, so scrapes report state, not
    history.  ``inc``/``dec`` are provided for callers that track a
    level incrementally (in-flight request counts).
    """

    __slots__ = ("name", "labels", "value", "_lock")

    def __init__(self, name: str = "", labels: Labels = ()) -> None:
        self.name = name
        self.labels = labels
        self.value: int | float = 0
        self._lock = threading.Lock()

    def set(self, value: int | float) -> None:
        with self._lock:
            self.value = value

    def inc(self, amount: int | float = 1) -> None:
        with self._lock:
            self.value += amount

    def dec(self, amount: int | float = 1) -> None:
        with self._lock:
            self.value -= amount

    def to_json(self) -> int | float:
        return self.value


class Histogram:
    """Bucketed streaming summary of observed values.

    ``buckets`` holds the upper boundaries (inclusive, as in Prometheus:
    bucket *i* counts observations ``<= buckets[i]``); ``bucket_counts``
    has one extra slot for the +Inf overflow.  Counts are per-bucket
    (not cumulative) internally; :meth:`cumulative` and :meth:`to_json`
    expose the cumulative form the exposition format wants.
    """

    __slots__ = ("name", "labels", "buckets", "bucket_counts", "count",
                 "total", "minimum", "maximum", "_lock")

    def __init__(self, name: str = "", labels: Labels = (),
                 buckets: tuple[float, ...] | None = None) -> None:
        self.name = name
        self.labels = labels
        chosen = DEFAULT_BUCKETS if buckets is None else tuple(buckets)
        if list(chosen) != sorted(set(chosen)):
            raise ValueError(f"histogram buckets must be strictly "
                             f"increasing, got {chosen}")
        self.buckets = chosen
        self.bucket_counts = [0] * (len(chosen) + 1)
        self.count = 0
        self.total = 0.0
        self.minimum: float | None = None
        self.maximum: float | None = None
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        with self._lock:
            self.count += 1
            self.total += value
            if self.minimum is None or value < self.minimum:
                self.minimum = value
            if self.maximum is None or value > self.maximum:
                self.maximum = value
            self.bucket_counts[bisect_left(self.buckets, value)] += 1

    @property
    def mean(self) -> float | None:
        return self.total / self.count if self.count else None

    def cumulative(self) -> list[tuple[float, int]]:
        """(upper_bound, cumulative_count) pairs; the last bound is +Inf."""
        pairs: list[tuple[float, int]] = []
        running = 0
        bounds = self.buckets + (float("inf"),)
        for bound, bucket_count in zip(bounds, self.bucket_counts):
            running += bucket_count
            pairs.append((bound, running))
        return pairs

    def quantile(self, q: float) -> float | None:
        """Estimate the *q*-quantile (0 < q <= 1) from the buckets.

        Linear interpolation inside the winning bucket, the way
        Prometheus's ``histogram_quantile`` does it; the estimate is
        clamped to the observed min/max so deterministic tests get exact
        answers when a bucket holds a single value.
        """
        if self.count == 0:
            return None
        rank = q * self.count
        running = 0.0
        previous_bound = 0.0
        for index, bucket_count in enumerate(self.bucket_counts):
            if bucket_count == 0:
                if index < len(self.buckets):
                    previous_bound = self.buckets[index]
                continue
            if running + bucket_count >= rank:
                if index >= len(self.buckets):
                    # Overflow bucket: no finite upper bound to
                    # interpolate against; the max observed is the best
                    # (and a sound upper) estimate.
                    return self.maximum
                upper = self.buckets[index]
                lower = previous_bound
                estimate = lower + (upper - lower) * \
                    ((rank - running) / bucket_count)
                return self._clamp(estimate)
            running += bucket_count
            if index < len(self.buckets):
                previous_bound = self.buckets[index]
        return self.maximum

    def _clamp(self, value: float) -> float:
        if self.minimum is not None and value < self.minimum:
            return self.minimum
        if self.maximum is not None and value > self.maximum:
            return self.maximum
        return value

    def to_json(self) -> dict:
        payload = {"count": self.count, "sum": self.total,
                   "min": self.minimum, "max": self.maximum,
                   "mean": self.mean,
                   "buckets": [
                       ["+Inf" if bound == float("inf") else bound, total]
                       for bound, total in self.cumulative()]}
        for key, q in SNAPSHOT_QUANTILES:
            payload[key] = self.quantile(q)
        return payload


class MetricsRegistry:
    """Named counters and histograms, optionally labeled.

    The registry lock guards only the instrument dictionaries; every
    instrument carries its own lock, so handles returned by
    :meth:`counter` / :meth:`histogram` are safe to mutate directly from
    any thread.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[tuple[str, Labels], Counter] = {}
        self._gauges: dict[tuple[str, Labels], Gauge] = {}
        self._histograms: dict[tuple[str, Labels], Histogram] = {}

    def counter(self, name: str,
                labels: Mapping[str, object] | None = None) -> Counter:
        key = (name, _freeze_labels(labels))
        with self._lock:
            instrument = self._counters.get(key)
            if instrument is None:
                instrument = self._counters[key] = Counter(*key)
            return instrument

    def gauge(self, name: str,
              labels: Mapping[str, object] | None = None) -> Gauge:
        key = (name, _freeze_labels(labels))
        with self._lock:
            instrument = self._gauges.get(key)
            if instrument is None:
                instrument = self._gauges[key] = Gauge(*key)
            return instrument

    def histogram(self, name: str,
                  labels: Mapping[str, object] | None = None,
                  buckets: tuple[float, ...] | None = None) -> Histogram:
        """The histogram for (name, labels), created on first use.

        *buckets* only takes effect at creation; later callers share the
        existing instrument whatever boundaries they pass.
        """
        key = (name, _freeze_labels(labels))
        with self._lock:
            instrument = self._histograms.get(key)
            if instrument is None:
                instrument = self._histograms[key] = Histogram(
                    key[0], key[1], buckets)
            return instrument

    def increment(self, name: str, amount: int | float = 1,
                  labels: Mapping[str, object] | None = None) -> None:
        self.counter(name, labels).inc(amount)

    def observe(self, name: str, value: float,
                labels: Mapping[str, object] | None = None) -> None:
        self.histogram(name, labels).observe(value)

    def set_gauge(self, name: str, value: int | float,
                  labels: Mapping[str, object] | None = None) -> None:
        self.gauge(name, labels).set(value)

    def collect(self) -> dict:
        """Structured instrument listing (for exposition renderers).

        ``{"counters": [...], "gauges": [...], "histograms": [...]}``,
        each list sorted by (name, labels) so output is stable.
        """
        with self._lock:
            return {
                "counters": [c for _, c in sorted(self._counters.items())],
                "gauges": [g for _, g in sorted(self._gauges.items())],
                "histograms": [h for _, h in
                               sorted(self._histograms.items())],
            }

    def snapshot(self) -> dict:
        """Plain-data copy of every instrument (JSON-serializable).

        Labeled instruments appear under ``name{k=v,...}`` keys.
        """
        collected = self.collect()
        return {
            "counters": {labeled_name(c.name, c.labels): c.to_json()
                         for c in collected["counters"]},
            "gauges": {labeled_name(g.name, g.labels): g.to_json()
                       for g in collected["gauges"]},
            "histograms": {labeled_name(h.name, h.labels): h.to_json()
                           for h in collected["histograms"]},
        }

    def reset(self) -> None:
        """Drop every instrument (tests and benchmark repetitions)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()


#: The process-wide default registry.
METRICS = MetricsRegistry()
