"""Process-wide metrics registry: counters and histograms.

Where traces answer "what did *this run* do", metrics aggregate across
runs: the benchmarks, the fuzz harness, and a long-lived mediator all
feed the same registry so their numbers are comparable.  The registry is
thread-safe; instruments hand back plain floats/ints via
:meth:`MetricsRegistry.snapshot` and can be zeroed with
:meth:`MetricsRegistry.reset`.
"""

from __future__ import annotations

import threading

__all__ = ["Counter", "Histogram", "MetricsRegistry", "METRICS"]


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int | float = 1) -> None:
        self.value += amount

    def to_json(self) -> int | float:
        return self.value


class Histogram:
    """Streaming summary of observed values (count/sum/min/max/mean)."""

    __slots__ = ("count", "total", "minimum", "maximum")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.minimum: float | None = None
        self.maximum: float | None = None

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value

    @property
    def mean(self) -> float | None:
        return self.total / self.count if self.count else None

    def to_json(self) -> dict:
        return {"count": self.count, "sum": self.total,
                "min": self.minimum, "max": self.maximum,
                "mean": self.mean}


class MetricsRegistry:
    """Named counters and histograms behind one lock."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        with self._lock:
            instrument = self._counters.get(name)
            if instrument is None:
                instrument = self._counters[name] = Counter()
            return instrument

    def histogram(self, name: str) -> Histogram:
        with self._lock:
            instrument = self._histograms.get(name)
            if instrument is None:
                instrument = self._histograms[name] = Histogram()
            return instrument

    def increment(self, name: str, amount: int | float = 1) -> None:
        counter = self.counter(name)
        with self._lock:
            counter.inc(amount)

    def observe(self, name: str, value: float) -> None:
        histogram = self.histogram(name)
        with self._lock:
            histogram.observe(value)

    def snapshot(self) -> dict:
        """Plain-data copy of every instrument (JSON-serializable)."""
        with self._lock:
            return {
                "counters": {name: c.to_json()
                             for name, c in sorted(self._counters.items())},
                "histograms": {name: h.to_json()
                               for name, h in
                               sorted(self._histograms.items())},
            }

    def reset(self) -> None:
        """Drop every instrument (tests and benchmark repetitions)."""
        with self._lock:
            self._counters.clear()
            self._histograms.clear()


#: The process-wide default registry.
METRICS = MetricsRegistry()
