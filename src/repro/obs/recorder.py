"""Flight recorder: a bounded ring of completed request records.

The server keeps this *always on*: every finished HTTP request leaves a
compact :class:`RequestRecord` (request id, endpoint, config/query keys,
status, per-phase latencies aggregated from the request's trace spans,
rewrite counters, truncation reason) in a thread-safe ring buffer of
fixed capacity, so the last N requests can be reconstructed after the
fact from ``GET /debug/requests`` without having enabled anything up
front.

**Tail-based capture** keeps the expensive detail only where it pays
off: requests that ran slower than a threshold, ended in 4xx/5xx, or
explicitly asked for an explanation additionally retain their full span
tree and EXPLAIN JSON (the same schema-versioned document ``python -m
repro explain`` prints, byte-identical).  Everything else keeps only the
summary, which bounds both memory and the per-request overhead -- the
``recorder overhead`` row in ``benchmarks/bench_serve.py`` measures the
on-vs-off p50 delta and asserts it stays inside the noise floor.

Thread-safety: a single lock guards the deque.  ``record`` is O(1);
``snapshot`` copies under the lock so readers never observe a
half-applied write (hammered by ``tests/obs/test_recorder.py``).
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field

__all__ = ["RequestRecord", "FlightRecorder", "RECORDER_SCHEMA_VERSION"]

#: Version stamp on every recorder / debug-endpoint payload.  Bump when
#: the record shape changes incompatibly.
RECORDER_SCHEMA_VERSION = 1

#: Default ring capacity (completed requests retained).
DEFAULT_CAPACITY = 256

#: Default slow-request threshold (milliseconds) for tail-based capture.
DEFAULT_SLOW_MS = 250.0


@dataclass
class RequestRecord:
    """One completed request, as the flight recorder remembers it.

    ``phases`` maps span name -> total milliseconds spent in spans of
    that name (nested spans attribute time to every enclosing phase, the
    same attribution ``phase.seconds`` uses).  ``trace`` and ``explain``
    are only populated for tail-captured requests (slow / error /
    explain-requested); they hold the full span tree as span JSON and
    the EXPLAIN document respectively.
    """

    request_id: str
    trace_id: str
    method: str
    path: str
    endpoint: str
    status: int
    ts: float
    seconds: float
    config_key: str | None = None
    query_key: str | None = None
    memo: str | None = None
    truncated: bool = False
    stop_reason: str | None = None
    phases: dict = field(default_factory=dict)
    counters: dict = field(default_factory=dict)
    slow: bool = False
    error: bool = False
    trace: list | None = None
    explain: dict | None = None

    @property
    def detailed(self) -> bool:
        """True when the full span tree / EXPLAIN were retained."""
        return self.trace is not None or self.explain is not None

    def to_json(self, detail: bool = False) -> dict:
        payload = {
            "request_id": self.request_id,
            "trace_id": self.trace_id,
            "method": self.method,
            "path": self.path,
            "endpoint": self.endpoint,
            "status": self.status,
            "ts": self.ts,
            "duration_ms": self.seconds * 1e3,
            "config_key": self.config_key,
            "query_key": self.query_key,
            "memo": self.memo,
            "truncated": self.truncated,
            "stop_reason": self.stop_reason,
            "phases_ms": dict(self.phases),
            "counters": dict(self.counters),
            "slow": self.slow,
            "error": self.error,
            "detailed": self.detailed,
        }
        if detail:
            payload["trace"] = self.trace
            payload["explain"] = self.explain
        return payload


class FlightRecorder:
    """Thread-safe bounded ring buffer of :class:`RequestRecord`\\ s.

    ``capacity`` bounds retained records (oldest evicted first);
    ``slow_ms`` is the tail-capture latency threshold the server uses
    when deciding whether to retain detail.  ``enabled=False`` turns
    :meth:`record` into a no-op while keeping the introspection
    endpoints answering (with an empty ring) -- the off half of the
    recorder-overhead benchmark.
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY,
                 slow_ms: float = DEFAULT_SLOW_MS,
                 enabled: bool = True) -> None:
        if capacity < 1:
            raise ValueError(f"recorder capacity must be >= 1, "
                             f"got {capacity}")
        self.capacity = capacity
        self.slow_ms = slow_ms
        self.enabled = enabled
        self._lock = threading.Lock()
        self._ring: deque[RequestRecord] = deque(maxlen=capacity)
        self._recorded = 0

    def is_slow(self, seconds: float) -> bool:
        return seconds * 1e3 >= self.slow_ms

    def record(self, record: RequestRecord) -> None:
        """Append one completed request (O(1); drops the oldest)."""
        if not self.enabled:
            return
        with self._lock:
            self._ring.append(record)
            self._recorded += 1

    def snapshot(self) -> list[RequestRecord]:
        """Retained records, newest first (consistent copy)."""
        with self._lock:
            return list(reversed(self._ring))

    def get(self, request_id: str) -> RequestRecord | None:
        """The retained record with this id, newest match wins."""
        with self._lock:
            for record in reversed(self._ring):
                if record.request_id == request_id:
                    return record
        return None

    def slow_requests(self) -> list[RequestRecord]:
        """Tail-captured records (slow or error), newest first."""
        with self._lock:
            return [r for r in reversed(self._ring) if r.slow or r.error]

    def stats(self) -> dict:
        with self._lock:
            return {
                "enabled": self.enabled,
                "capacity": self.capacity,
                "slow_ms": self.slow_ms,
                "size": len(self._ring),
                "recorded": self._recorded,
                "dropped": max(0, self._recorded - self.capacity),
            }

    def clear(self) -> None:
        with self._lock:
            self._ring.clear()
            self._recorded = 0


def aggregate_phases(spans) -> dict[str, float]:
    """Total milliseconds per span name across a span iterable.

    Nested spans contribute to every enclosing name (the wall-clock
    attribution ``phase.seconds`` uses), so the per-name totals answer
    "where did this request spend its time" at a glance.
    """
    phases: dict[str, float] = {}
    for span in spans:
        if span.end is None:
            continue
        phases[span.name] = phases.get(span.name, 0.0) + span.duration * 1e3
    return phases


def now() -> float:
    """Wall-clock timestamp for records (patchable in tests)."""
    return time.time()
