"""Observability for the exponential rewriting pipeline.

Every phase of the Section 3.4 algorithm -- mapping discovery, candidate
enumeration, composition, equivalence testing -- is worst-case
exponential (Section 5.1).  This package provides the three tools a
production deployment needs to live with that:

* :class:`Tracer` -- hierarchical trace **spans** (wall-clock enter/exit
  with structured attributes and counters), exported as JSON-lines,
  Chrome trace-event format, or a text tree (:mod:`repro.obs.export`).
* :class:`MetricsRegistry` -- a process-wide registry of **counters and
  histograms** with a snapshot/reset API (:data:`METRICS` is the default
  instance).
* :class:`Budget` -- **resource budgets**: a wall-clock deadline and/or a
  step budget with cooperative cancellation.  Expiry raises the typed
  :class:`BudgetExceededError`; pipeline entry points catch it and
  return partial results flagged ``truncated``.

All three are zero-overhead when unused: the library defaults to
:data:`NULL_TRACER` (an allocation-free no-op) and ``budget=None``
guards.  See ``docs/OBSERVABILITY.md``.
"""

from .budget import Budget, BudgetExceededError
from .metrics import (DEFAULT_BUCKETS, METRICS, Counter, Gauge, Histogram,
                      MetricsRegistry)
from .trace import (NULL_TRACER, NullTracer, Span, SpanRecord, Tracer,
                    as_tracer)
from .export import (TRACE_FORMATS, from_jsonl, render_prometheus,
                     to_chrome, to_jsonl, to_text, write_trace)
from .recorder import (RECORDER_SCHEMA_VERSION, FlightRecorder,
                       RequestRecord)

__all__ = [
    "Tracer", "NullTracer", "NULL_TRACER", "Span", "SpanRecord",
    "as_tracer",
    "MetricsRegistry", "Counter", "Gauge", "Histogram", "METRICS",
    "DEFAULT_BUCKETS",
    "Budget", "BudgetExceededError",
    "to_jsonl", "from_jsonl", "to_chrome", "to_text", "write_trace",
    "TRACE_FORMATS", "render_prometheus",
    "FlightRecorder", "RequestRecord", "RECORDER_SCHEMA_VERSION",
]
