"""Hierarchical trace spans for the rewriting pipeline.

Every phase of the rewriting algorithm is worst-case exponential
(Section 5.1), so understanding *where* a run spends its time matters as
much as the result.  A :class:`Tracer` records a tree of **spans** --
named enter/exit intervals with wall-clock timing, structured attributes
(``span.set``) and counters (``span.add``) -- that the exporters in
:mod:`repro.obs.export` turn into JSON-lines, Chrome trace-event, or
human-readable tree form.

The disabled path must be free: library entry points default to
:data:`NULL_TRACER`, whose ``span()`` returns a shared no-op context
manager without allocating anything.  Hot loops can additionally guard
on ``tracer.enabled`` before building attribute dictionaries.

Tracers are single-threaded by design (one tracer per pipeline run);
use one tracer per thread when running concurrently.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterator

__all__ = ["SpanRecord", "Span", "Tracer", "NullTracer", "NULL_TRACER",
           "as_tracer"]


@dataclass
class SpanRecord:
    """One completed (or still-open) span.

    Times are seconds relative to the tracer's epoch; ``end`` is ``None``
    while the span is open.  Records are stored in *start* order, which
    together with ``parent_id`` fully determines the tree.
    """

    span_id: int
    parent_id: int | None
    name: str
    start: float
    end: float | None = None
    attrs: dict = field(default_factory=dict)
    counters: dict = field(default_factory=dict)

    @property
    def duration(self) -> float:
        """Elapsed seconds (0.0 while the span is still open)."""
        return 0.0 if self.end is None else self.end - self.start

    def to_json(self) -> dict:
        return {
            "id": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "start_ms": self.start * 1e3,
            "end_ms": None if self.end is None else self.end * 1e3,
            "duration_ms": self.duration * 1e3,
            "attrs": dict(self.attrs),
            "counters": dict(self.counters),
        }


class Span:
    """Context-manager handle for one live span."""

    __slots__ = ("_tracer", "record")

    def __init__(self, tracer: "Tracer", record: SpanRecord) -> None:
        self._tracer = tracer
        self.record = record

    def set(self, key: str, value) -> None:
        """Attach a structured attribute to the span."""
        self.record.attrs[key] = value

    def add(self, counter: str, amount: int | float = 1) -> None:
        """Bump a per-span counter."""
        counters = self.record.counters
        counters[counter] = counters.get(counter, 0) + amount

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            self.record.attrs.setdefault("error", exc_type.__name__)
        self._tracer._exit(self.record)
        return False


class Tracer:
    """Collects a tree of spans for one pipeline run."""

    enabled = True

    def __init__(self, clock=time.perf_counter) -> None:
        self._clock = clock
        self.epoch = clock()
        self.spans: list[SpanRecord] = []
        self._stack: list[int] = []
        self._next_id = 0

    def span(self, name: str, **attrs) -> Span:
        """Open a span nested under the currently-open one."""
        record = SpanRecord(
            span_id=self._next_id,
            parent_id=self._stack[-1] if self._stack else None,
            name=name,
            start=self._clock() - self.epoch,
            attrs=attrs,
        )
        self._next_id += 1
        self.spans.append(record)
        self._stack.append(record.span_id)
        return Span(self, record)

    def _exit(self, record: SpanRecord) -> None:
        record.end = self._clock() - self.epoch
        # Exceptions may unwind several spans; pop through to this one.
        # A span exiting twice or out of order is no longer on the stack;
        # popping anyway would drain unrelated open spans.
        if record.span_id not in self._stack:
            return
        while self._stack:
            span_id = self._stack.pop()
            if span_id == record.span_id:
                break

    # -- tree accessors ----------------------------------------------------

    def roots(self) -> list[SpanRecord]:
        return [s for s in self.spans if s.parent_id is None]

    def children(self, record: SpanRecord) -> list[SpanRecord]:
        return [s for s in self.spans if s.parent_id == record.span_id]

    def walk(self) -> Iterator[tuple[SpanRecord, int]]:
        """Depth-first (record, depth) pairs in start order."""
        by_parent: dict[int | None, list[SpanRecord]] = {}
        for record in self.spans:
            by_parent.setdefault(record.parent_id, []).append(record)

        def visit(parent_id, depth):
            for record in by_parent.get(parent_id, ()):
                yield record, depth
                yield from visit(record.span_id, depth + 1)

        yield from visit(None, 0)


class _NullSpan:
    """Shared, allocation-free stand-in for a disabled span."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set(self, key: str, value) -> None:
        pass

    def add(self, counter: str, amount: int | float = 1) -> None:
        pass


_NULL_SPAN = _NullSpan()


class NullTracer:
    """The zero-overhead disabled tracer: every span is the same no-op."""

    __slots__ = ()
    enabled = False
    spans: tuple = ()

    def span(self, name: str, **attrs) -> _NullSpan:
        return _NULL_SPAN

    def roots(self) -> list:
        return []

    def children(self, record) -> list:
        return []

    def walk(self) -> Iterator:
        return iter(())


NULL_TRACER = NullTracer()


def as_tracer(tracer: Tracer | None) -> Tracer | NullTracer:
    """Normalize an optional tracer argument to a usable tracer."""
    return NULL_TRACER if tracer is None else tracer
