"""Trace exporters: JSON-lines, Chrome trace-event format, text tree.

Three consumers, three formats:

* **jsonl** -- one JSON object per span per line, machine-friendly and
  streamable; :func:`from_jsonl` round-trips it back into records.
* **chrome** -- the Trace Event Format (``ph: "X"`` complete events)
  that Perfetto and ``chrome://tracing`` load directly.
* **text** -- an indented span tree with durations, for terminals.
"""

from __future__ import annotations

import json
from pathlib import Path

from .trace import SpanRecord, Tracer

__all__ = ["to_jsonl", "from_jsonl", "to_chrome", "to_text",
           "write_trace", "TRACE_FORMATS"]

TRACE_FORMATS = ("jsonl", "chrome", "text")


def to_jsonl(tracer: Tracer) -> str:
    """One JSON object per span, in start order."""
    return "\n".join(json.dumps(span.to_json(), default=str)
                     for span in tracer.spans)


def from_jsonl(text: str) -> list[SpanRecord]:
    """Rebuild span records from :func:`to_jsonl` output."""
    records: list[SpanRecord] = []
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        data = json.loads(line)
        start = data["start_ms"] / 1e3
        # Older traces lack end_ms; fall back to start + duration then
        # (which cannot distinguish an open span from a zero-length one).
        end_ms = data.get("end_ms", data["duration_ms"] + data["start_ms"])
        records.append(SpanRecord(
            span_id=data["id"],
            parent_id=data["parent"],
            name=data["name"],
            start=start,
            end=None if end_ms is None else end_ms / 1e3,
            attrs=data.get("attrs", {}),
            counters=data.get("counters", {}),
        ))
    return records


def to_chrome(tracer: Tracer) -> str:
    """Chrome trace-event JSON (timestamps/durations in microseconds)."""
    events = []
    for span in tracer.spans:
        args = {**span.attrs, **span.counters}
        events.append({
            "name": span.name,
            "ph": "X",
            "ts": span.start * 1e6,
            "dur": span.duration * 1e6,
            "pid": 1,
            "tid": 1,
            "args": args,
        })
    return json.dumps({"traceEvents": events, "displayTimeUnit": "ms"},
                      default=str)


def _annotations(span: SpanRecord) -> str:
    parts = [f"{key}={value}" for key, value in span.attrs.items()]
    parts += [f"{key}={value}" for key, value in span.counters.items()]
    return ("  [" + " ".join(parts) + "]") if parts else ""


def to_text(tracer: Tracer) -> str:
    """Indented human-readable span tree."""
    lines = []
    for span, depth in tracer.walk():
        duration = f"{span.duration * 1e3:.3f}ms" if span.end is not None \
            else "(open)"
        lines.append(f"{'  ' * depth}{span.name} {duration}"
                     f"{_annotations(span)}")
    return "\n".join(lines)


_EXPORTERS = {"jsonl": to_jsonl, "chrome": to_chrome, "text": to_text}


def write_trace(tracer: Tracer, path: str,
                trace_format: str = "jsonl") -> None:
    """Serialize *tracer* to *path* in the chosen format."""
    try:
        exporter = _EXPORTERS[trace_format]
    except KeyError:
        raise ValueError(f"unknown trace format {trace_format!r}; "
                         f"expected one of {TRACE_FORMATS}") from None
    Path(path).write_text(exporter(tracer) + "\n", encoding="utf-8")
