"""Trace and metrics exporters.

Traces -- three consumers, three formats:

* **jsonl** -- one JSON object per span per line, machine-friendly and
  streamable; :func:`from_jsonl` round-trips it back into records.
* **chrome** -- the Trace Event Format (``ph: "X"`` complete events)
  that Perfetto and ``chrome://tracing`` load directly.
* **text** -- an indented span tree with durations, for terminals.

Metrics -- :func:`render_prometheus` turns a
:class:`~repro.obs.metrics.MetricsRegistry` into the Prometheus text
exposition format (version 0.0.4): one ``# TYPE`` line per metric
family, ``_total`` counters, unsuffixed gauges, and cumulative
``_bucket{le=...}`` / ``_sum`` / ``_count`` series per histogram, in
stable sorted order.
"""

from __future__ import annotations

import json
import re
from pathlib import Path

from .metrics import MetricsRegistry
from .trace import SpanRecord, Tracer

__all__ = ["to_jsonl", "from_jsonl", "to_chrome", "to_text",
           "write_trace", "TRACE_FORMATS", "render_prometheus"]

TRACE_FORMATS = ("jsonl", "chrome", "text")


def to_jsonl(tracer: Tracer) -> str:
    """One JSON object per span, in start order."""
    return "\n".join(json.dumps(span.to_json(), default=str)
                     for span in tracer.spans)


def from_jsonl(text: str) -> list[SpanRecord]:
    """Rebuild span records from :func:`to_jsonl` output."""
    records: list[SpanRecord] = []
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        data = json.loads(line)
        start = data["start_ms"] / 1e3
        # Older traces lack end_ms; fall back to start + duration then
        # (which cannot distinguish an open span from a zero-length one).
        end_ms = data.get("end_ms", data["duration_ms"] + data["start_ms"])
        records.append(SpanRecord(
            span_id=data["id"],
            parent_id=data["parent"],
            name=data["name"],
            start=start,
            end=None if end_ms is None else end_ms / 1e3,
            attrs=data.get("attrs", {}),
            counters=data.get("counters", {}),
        ))
    return records


def to_chrome(tracer: Tracer) -> str:
    """Chrome trace-event JSON (timestamps/durations in microseconds)."""
    events = []
    for span in tracer.spans:
        args = {**span.attrs, **span.counters}
        events.append({
            "name": span.name,
            "ph": "X",
            "ts": span.start * 1e6,
            "dur": span.duration * 1e6,
            "pid": 1,
            "tid": 1,
            "args": args,
        })
    return json.dumps({"traceEvents": events, "displayTimeUnit": "ms"},
                      default=str)


def _annotations(span: SpanRecord) -> str:
    parts = [f"{key}={value}" for key, value in span.attrs.items()]
    parts += [f"{key}={value}" for key, value in span.counters.items()]
    return ("  [" + " ".join(parts) + "]") if parts else ""


def to_text(tracer: Tracer) -> str:
    """Indented human-readable span tree."""
    lines = []
    for span, depth in tracer.walk():
        duration = f"{span.duration * 1e3:.3f}ms" if span.end is not None \
            else "(open)"
        lines.append(f"{'  ' * depth}{span.name} {duration}"
                     f"{_annotations(span)}")
    return "\n".join(lines)


_EXPORTERS = {"jsonl": to_jsonl, "chrome": to_chrome, "text": to_text}


# --------------------------------------------------------------------------
# Prometheus text exposition (metrics)
# --------------------------------------------------------------------------

#: Prefix for every exposed metric family.
PROM_NAMESPACE = "repro"

_INVALID_METRIC_CHARS = re.compile(r"[^a-zA-Z0-9_:]")


def prometheus_name(name: str) -> str:
    """``cache.hits`` -> ``repro_cache_hits`` (valid exposition name)."""
    sanitized = _INVALID_METRIC_CHARS.sub("_", name)
    if not sanitized or not (sanitized[0].isalpha() or sanitized[0] in "_:"):
        sanitized = "_" + sanitized
    return f"{PROM_NAMESPACE}_{sanitized}"


def _escape_label_value(value: str) -> str:
    return (value.replace("\\", r"\\").replace('"', r'\"')
            .replace("\n", r"\n"))


def _label_block(labels, extra: tuple[tuple[str, str], ...] = ()) -> str:
    pairs = tuple(labels) + extra
    if not pairs:
        return ""
    inner = ",".join(f'{key}="{_escape_label_value(str(value))}"'
                     for key, value in pairs)
    return "{" + inner + "}"


def _format_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value) if isinstance(value, float) else str(value)


def render_prometheus(registry: MetricsRegistry) -> str:
    """The registry in Prometheus text exposition format.

    Counters get a ``_total`` suffix; gauges keep their bare name;
    histograms expand into the ``_bucket`` (cumulative, ``le``-labeled,
    ``+Inf`` included) / ``_sum`` / ``_count`` triple.  Families are
    sorted by name and series by label set, so output order is
    deterministic -- the golden-file tests rely on it.
    """
    collected = registry.collect()
    lines: list[str] = []

    families: dict[str, list] = {}
    for counter in collected["counters"]:
        families.setdefault(counter.name, []).append(counter)
    for family_name in sorted(families):
        prom = prometheus_name(family_name) + "_total"
        lines.append(f"# TYPE {prom} counter")
        for counter in families[family_name]:
            lines.append(f"{prom}{_label_block(counter.labels)} "
                         f"{_format_value(counter.value)}")

    gauge_families: dict[str, list] = {}
    for gauge in collected["gauges"]:
        gauge_families.setdefault(gauge.name, []).append(gauge)
    for family_name in sorted(gauge_families):
        prom = prometheus_name(family_name)
        lines.append(f"# TYPE {prom} gauge")
        for gauge in gauge_families[family_name]:
            lines.append(f"{prom}{_label_block(gauge.labels)} "
                         f"{_format_value(gauge.value)}")

    histogram_families: dict[str, list] = {}
    for histogram in collected["histograms"]:
        histogram_families.setdefault(histogram.name, []).append(histogram)
    for family_name in sorted(histogram_families):
        prom = prometheus_name(family_name)
        lines.append(f"# TYPE {prom} histogram")
        for histogram in histogram_families[family_name]:
            for bound, cumulative in histogram.cumulative():
                le = (("le", _format_value(bound)),)
                lines.append(
                    f"{prom}_bucket{_label_block(histogram.labels, le)} "
                    f"{cumulative}")
            lines.append(f"{prom}_sum{_label_block(histogram.labels)} "
                         f"{_format_value(histogram.total)}")
            lines.append(f"{prom}_count{_label_block(histogram.labels)} "
                         f"{histogram.count}")
    return "\n".join(lines) + ("\n" if lines else "")


def write_trace(tracer: Tracer, path: str,
                trace_format: str = "jsonl") -> None:
    """Serialize *tracer* to *path* in the chosen format."""
    try:
        exporter = _EXPORTERS[trace_format]
    except KeyError:
        raise ValueError(f"unknown trace format {trace_format!r}; "
                         f"expected one of {TRACE_FORMATS}") from None
    Path(path).write_text(exporter(tracer) + "\n", encoding="utf-8")
