"""Random OEM databases and satisfiable random queries.

Used by the property-based tests (soundness E12, evaluator cross-check
E13): generate a random tree or DAG, then *sample* queries from the data
so their results are non-trivial, and random views likewise.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING

from ..oem.builder import DatabaseBuilder
from ..oem.model import OemDatabase, Oid
from ..tsl.ast import Condition, ObjectPattern, Query, SetPattern
from ..logic.terms import Constant, FunctionTerm, Variable

if TYPE_CHECKING:
    from ..rewriting.constraints import Dtd


@dataclass(frozen=True)
class RandomOemConfig:
    """Knobs for the random database generator."""

    roots: int = 3
    max_depth: int = 4
    max_fanout: int = 3
    labels: tuple[str, ...] = ("a", "b", "c", "d", "e")
    values: tuple[str, ...] = ("u", "v", "w", "x")
    share_probability: float = 0.0   # >0 produces DAGs
    atomic_probability: float = 0.5


def generate_random_database(config: RandomOemConfig = RandomOemConfig(),
                             seed: int = 0,
                             name: str = "db") -> OemDatabase:
    """A random rooted tree (or DAG when ``share_probability > 0``)."""
    rng = random.Random(seed)
    builder = DatabaseBuilder(name)
    created: list[Oid] = []

    def build(depth: int) -> Oid:
        label = rng.choice(config.labels)
        is_leaf = (depth >= config.max_depth
                   or rng.random() < config.atomic_probability)
        if is_leaf:
            oid = builder.atomic(label, rng.choice(config.values))
            created.append(oid)
            return oid
        oid = builder.set(label)
        for _ in range(rng.randint(1, config.max_fanout)):
            if created and rng.random() < config.share_probability:
                child = rng.choice(created)
            else:
                child = build(depth + 1)
            builder.edge(oid, child)
        created.append(oid)
        return oid

    for _ in range(config.roots):
        builder.root(build(1))
    return builder.finish()


@dataclass(frozen=True)
class RandomQueryConfig:
    """Knobs for sampling queries from a database.

    ``conjunctive`` restricts sampling to *conjunctive TSL*: head values
    copy only atomic leaves, so the answer never hangs source subgraphs
    (no copy semantics) -- the fragment for which the rewriting algorithm
    is complete (Theorem 5.5) and the oracles' primary target.
    """

    conditions: int = 2
    max_depth: int = 3
    constant_probability: float = 0.4
    label_variable_probability: float = 0.2
    conjunctive: bool = False


def _sample_path(db: OemDatabase, rng: random.Random,
                 max_depth: int) -> list[Oid]:
    node = rng.choice(db.roots)
    path = [node]
    while len(path) < max_depth and not db.is_atomic(node):
        children = db.children(node)
        if not children:
            break
        node = rng.choice(children)
        path.append(node)
    return path


def sample_query(db: OemDatabase,
                 config: RandomQueryConfig = RandomQueryConfig(),
                 seed: int = 0) -> Query:
    """Sample a satisfiable query by walking random root-to-node paths.

    Object ids become variables; labels become constants or variables;
    the leaf value becomes the observed constant (with some probability)
    or a variable.  The head copies every sampled leaf into a flat record
    so the query exercises head construction.
    """
    rng = random.Random(seed)
    variable_count = [0]

    def fresh(stem: str) -> Variable:
        variable_count[0] += 1
        return Variable(f"{stem}{variable_count[0]}")

    conditions: list[Condition] = []
    head_children: list[ObjectPattern] = []
    oid_vars: dict[Oid, Variable] = {}
    for _ in range(config.conditions):
        walk = _sample_path(db, rng, config.max_depth)
        pattern: ObjectPattern | None = None
        for position, node in enumerate(reversed(walk)):
            is_leaf = position == 0
            oid_var = oid_vars.setdefault(node, fresh("O"))
            if rng.random() < config.label_variable_probability:
                label = fresh("L")
            else:
                label = Constant(db.label(node))
            if not is_leaf:
                assert pattern is not None
                value: object = SetPattern((pattern,))
            elif (db.is_atomic(node)
                    and rng.random() < config.constant_probability):
                value = Constant(db.atomic_value(node))
            else:
                value = fresh("V")
                if not config.conjunctive or db.is_atomic(node):
                    out_oid = FunctionTerm("out", (oid_var,))
                    if all(child.oid != out_oid for child in head_children):
                        head_children.append(ObjectPattern(
                            out_oid, Constant("item"), value))
            pattern = ObjectPattern(oid_var, label, value)
        assert pattern is not None
        conditions.append(Condition(pattern, db.name))
    root_var = conditions[0].pattern.oid
    head = ObjectPattern(FunctionTerm("ans", (root_var,)),
                         Constant("result"),
                         SetPattern(tuple(head_children)))
    return Query(head, tuple(conditions))


def sample_conjunctive_query(db: OemDatabase,
                             config: RandomQueryConfig = RandomQueryConfig(),
                             seed: int = 0) -> Query:
    """Like :func:`sample_query` but restricted to conjunctive TSL.

    The head copies only atomic leaf values; set values observed by the
    body stay body-only, so evaluation never hangs source subgraphs off
    the answer.  This is the fragment the rewriting algorithm is complete
    for, and the default diet of the :mod:`repro.oracle` fuzzer.
    """
    return sample_query(db, replace(config, conjunctive=True), seed)


def generate_conforming_database(dtd: "Dtd", seed: int = 0,
                                 roots: int = 3,
                                 root_label: str | None = None,
                                 name: str = "db",
                                 values: tuple[str, ...] = ("u", "v", "w",
                                                            "x"),
                                 max_depth: int = 8) -> OemDatabase:
    """A random database conforming to *dtd* (Section 3.3 constraints).

    Every required child (multiplicity ``1``/``+``) is materialized, each
    optional/starred child with a coin flip, so label inference and the
    labeled-FD chase are sound on the result.  ``root_label`` defaults to
    an element that is not a child of any other element (falling back to
    the first declared element).  Recursive DTDs are truncated at
    *max_depth* by emitting atomic leaves, which breaks conformance below
    that depth -- keep recursive content shallow or raise *max_depth*.
    """
    rng = random.Random(seed)
    if root_label is None:
        child_names = {spec.name
                       for children in dtd.elements.values()
                       for spec in children or ()}
        top = sorted(set(dtd.elements) - child_names)
        if not top:
            top = sorted(dtd.elements)
        if not top:
            raise ValueError("DTD declares no elements")
        root_label = top[0]
    builder = DatabaseBuilder(name)

    def build(label: str, depth: int) -> Oid:
        if dtd.is_atomic(label) or depth >= max_depth:
            return builder.atomic(label, rng.choice(values))
        oid = builder.set(label)
        for spec in dtd.children_of(label):
            if spec.multiplicity == "1":
                count = 1
            elif spec.multiplicity == "?":
                count = rng.randint(0, 1)
            elif spec.multiplicity == "+":
                count = rng.randint(1, 2)
            else:  # "*"
                count = rng.randint(0, 2)
            for _ in range(count):
                builder.edge(oid, build(spec.name, depth + 1))
        return oid

    for _ in range(roots):
        builder.root(build(root_label, 1))
    return builder.finish()


def exposing_view(query: Query, name: str = "V",
                  functor: str = "xrow") -> Query:
    """A view over *query*'s body exposing every body variable.

    Every binding travels in the head oid term ``xrow(V1..Vn)``, so the
    view retains everything the query observes and an equivalent
    rewriting of *query* over the view exists by construction -- the
    completeness property tests (E12) rely on this.
    """
    body_vars = tuple(sorted(query.body_variables(),
                             key=lambda v: v.name))
    head = ObjectPattern(FunctionTerm(functor, body_vars),
                         Constant("row"), Constant("ok"))
    return Query(head, query.body, name=name)
