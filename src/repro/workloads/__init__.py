"""Synthetic workload generators for examples, tests, and benchmarks."""

from .biblio import (CONFERENCES, conference_query, conference_view,
                     figure3_database, generate_bibliography,
                     sigmod_97_query, year_view)
from .people import (generate_people, people_dtd, query_q3, query_q5,
                     query_q7, view_v1)
from .random_oem import (RandomOemConfig, RandomQueryConfig,
                         exposing_view, generate_conforming_database,
                         generate_random_database, sample_conjunctive_query,
                         sample_query)
from .querygen import (chain_database, chain_query, chain_view,
                       condition_view, fanout_probe_query, fanout_view,
                       k_conditions_database, k_conditions_query,
                       star_database, star_query, star_view)

__all__ = [
    "figure3_database", "generate_bibliography", "conference_query",
    "conference_view", "year_view", "sigmod_97_query", "CONFERENCES",
    "generate_people", "people_dtd", "view_v1", "query_q3", "query_q5",
    "query_q7",
    "RandomOemConfig", "RandomQueryConfig", "generate_random_database",
    "generate_conforming_database", "sample_query",
    "sample_conjunctive_query", "exposing_view",
    "chain_query", "chain_view", "star_query", "star_view",
    "k_conditions_query", "condition_view", "fanout_view",
    "fanout_probe_query", "chain_database", "star_database",
    "k_conditions_database",
]
