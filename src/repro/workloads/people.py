"""Person databases conforming to the Section 3.3 DTD, plus the paper's
view (V1) and queries (Q3), (Q5), (Q7).

The DTD::

    <!ELEMENT p (name, phone, address*)>
    <!ELEMENT name (last, first, middle?, alias?)>
    <!ELEMENT alias (last, first)>
    ...

so every generated ``p`` object has exactly one ``name`` (with ``last``
and ``first``, optional ``middle``/``alias``), exactly one ``phone``, and
zero or more ``address`` subobjects.
"""

from __future__ import annotations

import random

from ..oem.builder import DatabaseBuilder
from ..oem.model import OemDatabase
from ..rewriting.constraints import Dtd, paper_dtd
from ..tsl.ast import Query
from ..tsl.parser import parse_query

LAST_NAMES = ("stanford", "gupta", "chen", "smith", "widom", "ullman",
              "papakonstantinou", "vassalos", "leland", "jones")

FIRST_NAMES = ("leland", "amy", "wei", "john", "jennifer", "jeff",
               "yannis", "vasilis", "jane", "david")

CITIES = ("palo alto", "athens", "san diego", "seattle", "boston")


def generate_people(count: int, seed: int = 0,
                    name: str = "db") -> OemDatabase:
    """*count* ``p`` objects conforming to the paper's DTD."""
    rng = random.Random(seed)
    builder = DatabaseBuilder(name)
    for index in range(count):
        person = builder.set("p", oid=f"p{index}")
        builder.root(person)
        name_obj = builder.set("name")
        builder.edge(person, name_obj)
        builder.edge(name_obj,
                     builder.atomic("last", rng.choice(LAST_NAMES)))
        builder.edge(name_obj,
                     builder.atomic("first", rng.choice(FIRST_NAMES)))
        if rng.random() < 0.3:
            builder.edge(name_obj, builder.atomic("middle", "m"))
        if rng.random() < 0.2:
            alias = builder.set("alias")
            builder.edge(name_obj, alias)
            builder.edge(alias,
                         builder.atomic("last", rng.choice(LAST_NAMES)))
            builder.edge(alias,
                         builder.atomic("first", rng.choice(FIRST_NAMES)))
        builder.edge(person, builder.atomic(
            "phone", f"650-{rng.randint(1000, 9999)}"))
        for _ in range(rng.randint(0, 2)):
            builder.edge(person, builder.atomic(
                "address", rng.choice(CITIES)))
    return builder.finish()


def people_dtd(source: str = "db") -> Dtd:
    """The Section 3.3 DTD as structural constraints."""
    return paper_dtd(source)


def view_v1(source: str = "db") -> Query:
    """(V1): groups labels under ``pr`` and values under ``v`` objects.

    "(V1) loses information in the sense that it only shows the labels
    and values that appear in db but the label-value correspondence has
    disappeared."
    """
    return parse_query(
        f"<g(P') p {{<pp(P',Y') pr Y'> <h(X') v Z'>}}> :- "
        f"<P' p {{<X' Y' Z'>}}>@{source}", name="V1")


def query_q3(value: str = "leland", source: str = "db") -> Query:
    """(Q3): does the value appear (under any label) on some person?"""
    return parse_query(
        f"<f(P) stanford yes> :- <P p {{<X Y {value}>}}>@{source}")


def query_q5(source: str = "db") -> Query:
    """(Q5): a person with a subobject containing <last stanford>."""
    return parse_query(
        f"<f(P) stanford yes> :- "
        f"<P p {{<X Y {{<Z last stanford>}}>}}>@{source}")


def query_q7(source: str = "db") -> Query:
    """(Q7): like (Q5) but the middle label must be ``name``.

    Not rewritable over (V1) without the DTD (Example 3.3); rewritable
    with it (Example 3.5).
    """
    return parse_query(
        f"<f(P) stanford yes> :- "
        f"<P p {{<X name {{<Z last stanford>}}>}}>@{source}")
