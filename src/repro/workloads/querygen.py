"""Parametric query/view families for the complexity benchmarks (E5-E9).

Section 5.1 shows each phase of the rewriting algorithm is worst-case
exponential; these generators produce the inputs that exhibit (or avoid)
the blowups:

* ``chain(n)``    -- one condition, n nested levels, distinct labels:
  mapping discovery stays polynomial.
* ``star(b)``     -- b branches with *identical* shape: self-similarity
  makes the number of containment mappings grow like b! / exponentially.
* ``k_conditions(k)`` -- k flat conditions: the candidate space of
  Step 1B is the powerset, ~2^k.
* ``fanout_view(f)`` / ``fanout_query(f)`` -- fused view heads that give
  composition f-way resolution choices per goal.
"""

from __future__ import annotations

from ..logic.terms import Constant, FunctionTerm, Variable
from ..tsl.ast import Condition, ObjectPattern, Query, SetPattern
from ..oem.builder import DatabaseBuilder
from ..oem.model import OemDatabase


def _var(name: str) -> Variable:
    return Variable(name)


def chain_query(depth: int, source: str = "db") -> Query:
    """One root-to-leaf chain of *depth* distinct labels ``l1..l<depth>``."""
    assert depth >= 1
    leaf: object = _var("V")
    pattern = ObjectPattern(_var(f"X{depth}"), Constant(f"l{depth}"), leaf)
    for level in range(depth - 1, 0, -1):
        pattern = ObjectPattern(_var(f"X{level}"), Constant(f"l{level}"),
                                SetPattern((pattern,)))
    head = ObjectPattern(FunctionTerm("f", (_var("X1"),)),
                         Constant("result"), _var("V"))
    return Query(head, (Condition(pattern, source),))


def chain_view(depth: int, source: str = "db", name: str = "V") -> Query:
    """A view exposing the same chain, copying the leaf."""
    query = chain_query(depth, source)
    head = ObjectPattern(FunctionTerm("v", (_var("X1"),)),
                         Constant("row"), _var("V"))
    return Query(head, query.body, name=name)


def star_query(branches: int, source: str = "db",
               distinct_labels: bool = False) -> Query:
    """*branches* conditions of identical shape on the same root.

    With identical labels every view branch maps onto every query branch:
    the number of containment mappings explodes combinatorially -- the
    Section 5.1 worst case.  ``distinct_labels=True`` gives the benign
    variant for comparison.
    """
    assert branches >= 1
    conditions = []
    for index in range(1, branches + 1):
        label = f"b{index}" if distinct_labels else "b"
        pattern = ObjectPattern(
            _var("R"), Constant("root"),
            SetPattern((ObjectPattern(_var(f"X{index}"), Constant(label),
                                      _var(f"V{index}")),)))
        conditions.append(Condition(pattern, source))
    children = tuple(
        ObjectPattern(FunctionTerm(f"o{index}", (_var(f"X{index}"),)),
                      Constant("item"), _var(f"V{index}"))
        for index in range(1, branches + 1))
    head = ObjectPattern(FunctionTerm("f", (_var("R"),)),
                         Constant("result"), SetPattern(children))
    return Query(head, tuple(conditions))


def star_view(branches: int, source: str = "db", name: str = "V",
              distinct_labels: bool = False) -> Query:
    """A view with the same star body, exposing each branch."""
    query = star_query(branches, source, distinct_labels)
    children = tuple(
        ObjectPattern(FunctionTerm(f"w{index}", (_var(f"X{index}"),)),
                      Constant("col"), _var(f"V{index}"))
        for index in range(1, branches + 1))
    head = ObjectPattern(FunctionTerm("v", (_var("R"),)),
                         Constant("row"), SetPattern(children))
    return Query(head, query.body, name=name)


def k_conditions_query(k: int, source: str = "db") -> Query:
    """k independent flat conditions ``<Pi ci Vi>`` (Step 1B's k)."""
    assert k >= 1
    conditions = tuple(
        Condition(ObjectPattern(_var(f"P{index}"), Constant(f"c{index}"),
                                _var(f"V{index}")), source)
        for index in range(1, k + 1))
    children = tuple(
        ObjectPattern(FunctionTerm(f"h{index}", (_var(f"P{index}"),)),
                      Constant("item"), _var(f"V{index}"))
        for index in range(1, k + 1))
    head = ObjectPattern(FunctionTerm("f", (_var("P1"),)),
                         Constant("result"), SetPattern(children))
    return Query(head, conditions)


def condition_view(index: int, source: str = "db") -> Query:
    """A view exporting exactly condition ``<P c<index> V>``."""
    body = (Condition(ObjectPattern(_var("P"), Constant(f"c{index}"),
                                    _var("V")), source),)
    head = ObjectPattern(FunctionTerm(f"view{index}", (_var("P"),)),
                         Constant("row"), _var("V"))
    return Query(head, body, name=f"V{index}")


def fanout_view(fanout: int, source: str = "db", name: str = "V") -> Query:
    """A view whose head fuses *fanout* sibling components per object.

    Every component shares the parent oid term, so a condition chain over
    the view resolves against ``fanout`` member rules at each level --
    composition explores the product (E7).
    """
    assert fanout >= 1
    children = tuple(
        ObjectPattern(FunctionTerm("m", (_var(f"C{index}"),)),
                      Constant("part"), _var(f"W{index}"))
        for index in range(1, fanout + 1))
    head = ObjectPattern(FunctionTerm("v", (_var("R"),)),
                         Constant("row"), SetPattern(children))
    conditions = tuple(
        Condition(ObjectPattern(
            _var("R"), Constant("root"),
            SetPattern((ObjectPattern(_var(f"C{index}"), Constant("part"),
                                      _var(f"W{index}")),))), source)
        for index in range(1, fanout + 1))
    return Query(head, conditions, name=name)


def fanout_probe_query(source: str = "V") -> Query:
    """A probe navigating one fused component of :func:`fanout_view`."""
    pattern = ObjectPattern(
        FunctionTerm("v", (_var("R"),)), Constant("row"),
        SetPattern((ObjectPattern(FunctionTerm("m", (_var("C"),)),
                                  Constant("part"), _var("W")),)))
    head = ObjectPattern(FunctionTerm("f", (_var("C"),)),
                         Constant("result"), _var("W"))
    return Query(head, (Condition(pattern, source),))


def chain_database(depth: int, width: int, seed_values: int = 3,
                   name: str = "db") -> OemDatabase:
    """A database of *width* chains matching :func:`chain_query`."""
    builder = DatabaseBuilder(name)
    for column in range(width):
        previous = None
        for level in range(1, depth + 1):
            if level == depth:
                node = builder.atomic(f"l{level}",
                                      f"val{column % seed_values}")
            else:
                node = builder.set(f"l{level}")
            if previous is None:
                builder.root(node)
            else:
                builder.edge(previous, node)
            previous = node
    return builder.finish()


def star_database(branches: int, width: int, name: str = "db",
                  distinct_labels: bool = False) -> OemDatabase:
    """A database of *width* roots each with *branches* children."""
    builder = DatabaseBuilder(name)
    for column in range(width):
        root = builder.set("root")
        builder.root(root)
        for index in range(1, branches + 1):
            label = f"b{index}" if distinct_labels else "b"
            builder.edge(root, builder.atomic(label, f"val{index}"))
    return builder.finish()


def k_conditions_database(k: int, width: int,
                          name: str = "db") -> OemDatabase:
    """Roots labeled ``c1..ck`` matching :func:`k_conditions_query`."""
    builder = DatabaseBuilder(name)
    for index in range(1, k + 1):
        for column in range(width):
            builder.root(builder.atomic(f"c{index}", f"val{column}"))
    return builder.finish()
