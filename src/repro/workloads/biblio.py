"""Bibliographic workloads (Figure 3 and the running TSIMMIS example).

Provides the paper's Figure 3 objects verbatim, a scalable synthetic
bibliography generator, and the standard queries and views of the
"SIGMOD 97" scenario used throughout Section 1 and by benchmarks E10/E11.
"""

from __future__ import annotations

import random

from ..oem.builder import DatabaseBuilder, build_database, obj
from ..oem.model import OemDatabase
from ..tsl.ast import Query
from ..tsl.parser import parse_query

CONFERENCES = ("sigmod", "vldb", "pods", "icde", "kdd", "edbt", "icdt")

FIRST_NAMES = ("ashish", "yannis", "vasilis", "hector", "jennifer", "jeff",
               "serge", "dan", "mary", "alin", "sophie", "ramana")

LAST_NAMES = ("gupta", "papakonstantinou", "vassalos", "garcia-molina",
              "widom", "ullman", "abiteboul", "suciu", "fernandez",
              "deutsch", "cluet", "yerneni")

TITLE_WORDS = ("constraint", "views", "semistructured", "query", "rewriting",
               "mediation", "optimization", "integration", "caching",
               "wrappers", "containment", "chase")


def figure3_database(name: str = "db") -> OemDatabase:
    """The example OEM objects of Figure 3 (bibliographic data)."""
    return build_database(name, [
        obj("person", [
            obj("name", "A. Gupta"),
        ], oid="per1"),
        obj("pub", [
            obj("author", "A. Gupta", oid="auth1"),
            obj("title", "Constraint Views", oid="title1"),
            obj("booktitle", "SIGMOD", oid="bt1"),
            obj("year", 1993, oid="year1"),
        ], oid="pub1"),
    ])


def generate_bibliography(publications: int, seed: int = 0,
                          name: str = "db",
                          year_range: tuple[int, int] = (1990, 1999),
                          sigmod_fraction: float = 0.2) -> OemDatabase:
    """A synthetic bibliography with *publications* pub root objects.

    Each publication has a title, 1-3 authors, a booktitle, and a year.
    Roughly ``sigmod_fraction`` of the publications are SIGMOD papers so
    caching/selectivity experiments have a predictable hit population.
    """
    rng = random.Random(seed)
    builder = DatabaseBuilder(name)
    for index in range(publications):
        pub = builder.set("pub", oid=f"pub{index}")
        builder.root(pub)
        title = " ".join(rng.sample(TITLE_WORDS, 3)) + f" #{index}"
        builder.edge(pub, builder.atomic("title", title))
        for author_index in range(rng.randint(1, 3)):
            full = (f"{rng.choice(FIRST_NAMES)} "
                    f"{rng.choice(LAST_NAMES)}")
            builder.edge(pub, builder.atomic("author", full))
        if rng.random() < sigmod_fraction:
            conference = "sigmod"
        else:
            conference = rng.choice(CONFERENCES[1:])
        builder.edge(pub, builder.atomic("booktitle", conference))
        year = rng.randint(*year_range)
        builder.edge(pub, builder.atomic("year", year))
    return builder.finish()


def conference_query(conference: str, year: int | None = None,
                     source: str = "db") -> Query:
    """All publications of *conference* (optionally of one year), copied."""
    conditions = [f"<P pub {{<B booktitle {conference}>}}>@{source}"]
    if year is not None:
        conditions.append(f"<P pub {{<Y year {year}>}}>@{source}")
    conditions.append(f"<P pub {{<X L W>}}>@{source}")
    body = " AND ".join(conditions)
    return parse_query(f"<hit(P) pub {{<c(P,L,W) L W>}}> :- {body}")


def conference_view(conference: str, name: str,
                    source: str = "db") -> Query:
    """A cached-query/view statement: all *conference* publications."""
    return parse_query(
        f"<v(P) pub {{<cv(P,L,W) L W>}}> :- "
        f"<P pub {{<B booktitle {conference}>}}>@{source} AND "
        f"<P pub {{<X L W>}}>@{source}", name=name)


def year_view(year: int, name: str, source: str = "db") -> Query:
    """A view keeping all publications of one year."""
    return parse_query(
        f"<v(P) pub {{<cv(P,L,W) L W>}}> :- "
        f"<P pub {{<Y year {year}>}}>@{source} AND "
        f"<P pub {{<X L W>}}>@{source}", name=name)


def sigmod_97_query(source: str = "db") -> Query:
    """The running example: all SIGMOD 1997 publications."""
    return conference_query("sigmod", 1997, source)
