"""Heuristic condition ordering for evaluation (a small optimizer).

TSL conjunction is order-independent semantically (tested as a property),
but evaluation cost is not: starting with the most selective condition
and then following bound object-id variables turns a cross product into
an index-driven join (the evaluator short-circuits when a condition's
top-level oid is already bound).

The heuristic mirrors Figure 2's optimizer box in miniature:

1. score each condition by its constants (leaf constants select hardest,
   label constants next) and its depth;
2. greedily pick the highest-scoring condition among those *connected*
   to already-bound variables (sharing any variable), falling back to
   the best unconnected one when none connects.
"""

from __future__ import annotations

from ..logic.terms import Constant, Term, Variable
from .ast import Condition, Query
from .normalize import condition_paths


def condition_score(condition: Condition) -> float:
    """Higher = more selective (evaluate earlier)."""
    score = 0.0
    for path in condition_paths(condition):
        if isinstance(path.leaf, Term) and isinstance(path.leaf, Constant):
            score += 4.0
        for _, label in path.steps:
            if isinstance(label, Constant):
                score += 1.0
        if path.steps and path.steps[0][0].is_ground():
            score += 8.0  # ground root oid: a direct lookup
        score += 0.25 * len(path.steps)
    return score


def _condition_variables(condition: Condition) -> set[Variable]:
    return set(condition.variables())


def order_conditions(query: Query) -> Query:
    """Reorder the body greedily: selective first, then stay connected."""
    remaining = list(query.body)
    if len(remaining) <= 1:
        return query
    ordered: list[Condition] = []
    bound: set[Variable] = set()
    while remaining:
        connected = [c for c in remaining
                     if _condition_variables(c) & bound]
        pool = connected or remaining
        best = max(pool, key=condition_score)
        remaining.remove(best)
        ordered.append(best)
        bound |= _condition_variables(best)
    return Query(query.head, tuple(ordered), name=query.name)


def plan_report(query: Query) -> list[tuple[str, float]]:
    """The chosen order with per-condition scores (for explain output)."""
    planned = order_conditions(query)
    return [(str(condition), condition_score(condition))
            for condition in planned.body]
