"""Well-formedness checks for TSL queries (Section 2).

* **Safety**: every variable in the head appears in the body -- "the same
  simple syntactic test that is used by [36] to define safety of
  conjunctive queries".
* **Head oid freshness**: terms in head object-id fields are unique, and
  are function terms or constants (never bare variables), forcing fresh
  answer oids and answer *trees*.
* **Oid-variable discipline**: object-id variables and label/value
  variables are disjoint (``Vo ∩ Vc = ∅``).  Section 5 points out this is
  what rules out hidden functional dependencies like the one in
  ``<X Y {<Y Z W>}>`` and keeps the rewriting algorithm complete.
* **Acyclic patterns**: body patterns may not look for cycles in the
  database; the parent/child relation induced on oid terms by the body
  must be acyclic (required for chase termination, Section 3.2).
* **Field shapes**: labels are variables or constants; term-shaped values
  are variables or constants (function terms belong in oid fields only).

The checks themselves live in :mod:`repro.analysis.passes.wellformed` as
diagnostic generators (codes TSL001-TSL005); this module raises the
classic exception API from the first error found, so the exceptions now
carry the :class:`~repro.span.Span` and diagnostic code of the offending
construct.
"""

from __future__ import annotations

from typing import Iterable

from ..analysis.diagnostics import Diagnostic
from ..analysis.passes.wellformed import (acyclicity_diagnostics,
                                          data_variables,
                                          field_shape_diagnostics,
                                          head_oid_diagnostics,
                                          oid_discipline_diagnostics,
                                          oid_variables, safety_diagnostics,
                                          wellformed_diagnostics)
from ..errors import (CyclicPatternError, OidDisciplineError, SafetyError,
                      ValidationError)
from .ast import Query

__all__ = [
    "validate", "is_safe", "check_safety", "check_head_oids",
    "check_oid_discipline", "check_acyclic", "check_field_shapes",
    "oid_variables", "data_variables",
]

_CODE_ERRORS: dict[str, type[ValidationError]] = {
    "TSL001": SafetyError,
    "TSL002": OidDisciplineError,
    "TSL003": CyclicPatternError,
    "TSL004": ValidationError,
    "TSL005": ValidationError,
}


def _raise_first(diagnostics: Iterable[Diagnostic]) -> None:
    for diag in diagnostics:
        error_type = _CODE_ERRORS.get(diag.code, ValidationError)
        raise error_type(diag.message, span=diag.span, code=diag.code)


def check_safety(query: Query) -> None:
    """Raise :class:`SafetyError` if a head variable is not in the body."""
    _raise_first(safety_diagnostics(query))


def check_head_oids(query: Query) -> None:
    """Head oid terms must be unique and fresh-id-producing."""
    _raise_first(head_oid_diagnostics(query))


def check_oid_discipline(query: Query) -> None:
    """Raise :class:`OidDisciplineError` when Vo and Vc intersect."""
    _raise_first(oid_discipline_diagnostics(query))


def check_acyclic(query: Query) -> None:
    """The oid parent/child relation induced by the body must be acyclic."""
    _raise_first(acyclicity_diagnostics(query))


def check_field_shapes(query: Query) -> None:
    """Labels and term values must be variables or constants."""
    _raise_first(field_shape_diagnostics(query))


def validate(query: Query) -> Query:
    """Run every check; return the query unchanged when well-formed."""
    _raise_first(wellformed_diagnostics(query))
    return query


def is_safe(query: Query) -> bool:
    """Predicate form of :func:`check_safety`."""
    return not (query.head_variables() - query.body_variables())
