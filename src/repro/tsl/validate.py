"""Well-formedness checks for TSL queries (Section 2).

* **Safety**: every variable in the head appears in the body -- "the same
  simple syntactic test that is used by [36] to define safety of
  conjunctive queries".
* **Head oid freshness**: terms in head object-id fields are unique, and
  are function terms or constants (never bare variables), forcing fresh
  answer oids and answer *trees*.
* **Oid-variable discipline**: object-id variables and label/value
  variables are disjoint (``Vo ∩ Vc = ∅``).  Section 5 points out this is
  what rules out hidden functional dependencies like the one in
  ``<X Y {<Y Z W>}>`` and keeps the rewriting algorithm complete.
* **Acyclic patterns**: body patterns may not look for cycles in the
  database; the parent/child relation induced on oid terms by the body
  must be acyclic (required for chase termination, Section 3.2).
* **Field shapes**: labels are variables or constants; term-shaped values
  are variables or constants (function terms belong in oid fields only).
"""

from __future__ import annotations

from ..errors import (CyclicPatternError, OidDisciplineError, SafetyError,
                      ValidationError)
from ..logic.terms import FunctionTerm, Term, Variable
from .ast import ObjectPattern, Query, SetPattern


def oid_variables(query: Query) -> set[Variable]:
    """Variables standing alone in an object-id field (head or body).

    Arguments *inside* function-term oids do not count: the paper's view
    (V1) uses ``pp(P',Y')`` as a head oid with the label variable ``Y'``
    as an argument, so the ``Vo ∩ Vc = ∅`` discipline can only concern
    bare oid variables -- which is also exactly what rules out the hidden
    functional dependency of ``<X Y {<Y Z W>}>`` (Section 5).
    """
    out: set[Variable] = set()
    for pattern in _all_patterns(query):
        if isinstance(pattern.oid, Variable):
            out.add(pattern.oid)
    return out


def data_variables(query: Query) -> set[Variable]:
    """Variables occurring in label or value fields (head or body)."""
    out: set[Variable] = set()
    for pattern in _all_patterns(query):
        out.update(pattern.label.variables())
        if isinstance(pattern.value, Term):
            out.update(pattern.value.variables())
    return out


def _all_patterns(query: Query):
    yield from query.head.nested_patterns()
    for condition in query.body:
        yield from condition.pattern.nested_patterns()


def check_safety(query: Query) -> None:
    """Raise :class:`SafetyError` if a head variable is not in the body."""
    missing = query.head_variables() - query.body_variables()
    if missing:
        names = ", ".join(sorted(v.name for v in missing))
        raise SafetyError(f"head variables not bound in body: {names}")


def check_head_oids(query: Query) -> None:
    """Head oid terms must be unique and fresh-id-producing."""
    seen: set[Term] = set()
    for pattern in query.head.nested_patterns():
        oid = pattern.oid
        if isinstance(oid, Variable):
            raise ValidationError(
                f"head object-id {oid} is a bare variable; head oids must "
                "be function terms or constants so answers get fresh ids")
        if oid in seen:
            raise ValidationError(
                f"head object-id term {oid} is not unique in the head")
        seen.add(oid)


def check_oid_discipline(query: Query) -> None:
    """Raise :class:`OidDisciplineError` when Vo and Vc intersect."""
    overlap = oid_variables(query) & data_variables(query)
    if overlap:
        names = ", ".join(sorted(v.name for v in overlap))
        raise OidDisciplineError(
            f"variables used both as object ids and as labels/values: {names}")


def check_acyclic(query: Query) -> None:
    """The oid parent/child relation induced by the body must be acyclic."""
    edges: dict[Term, set[Term]] = {}
    for condition in query.body:
        _collect_edges(condition.pattern, edges)
    _require_dag(edges)


def _collect_edges(pattern: ObjectPattern,
                   edges: dict[Term, set[Term]]) -> None:
    if isinstance(pattern.value, SetPattern):
        for child in pattern.value.patterns:
            edges.setdefault(pattern.oid, set()).add(child.oid)
            _collect_edges(child, edges)


def _require_dag(edges: dict[Term, set[Term]]) -> None:
    WHITE, GRAY, BLACK = 0, 1, 2
    color: dict[Term, int] = {}

    def visit(node: Term) -> None:
        color[node] = GRAY
        for succ in edges.get(node, ()):
            state = color.get(succ, WHITE)
            if state == GRAY:
                raise CyclicPatternError(
                    f"body patterns look for a cycle through oid term {succ}")
            if state == WHITE:
                visit(succ)
        color[node] = BLACK

    for node in list(edges):
        if color.get(node, WHITE) == WHITE:
            visit(node)


def check_field_shapes(query: Query) -> None:
    """Labels and term values must be variables or constants."""
    for pattern in _all_patterns(query):
        if isinstance(pattern.label, FunctionTerm):
            raise ValidationError(
                f"label field {pattern.label} is a function term")
        if isinstance(pattern.value, FunctionTerm):
            # Function terms denote oids; an atomic value is atomic data.
            raise ValidationError(
                f"value field {pattern.value} is a function term")


def validate(query: Query) -> Query:
    """Run every check; return the query unchanged when well-formed."""
    check_field_shapes(query)
    check_safety(query)
    check_head_oids(query)
    check_oid_discipline(query)
    check_acyclic(query)
    return query


def is_safe(query: Query) -> bool:
    """Predicate form of :func:`check_safety`."""
    return not (query.head_variables() - query.body_variables())
