"""Pretty printer for TSL: the inverse of :mod:`repro.tsl.parser`.

``parse_query(print_query(q)) == q`` holds for every well-formed query;
constants that would not re-lex as constants (spaces, uppercase initials,
punctuation) are quoted.
"""

from __future__ import annotations

from ..logic.terms import Constant, FunctionTerm, Term, Variable
from .ast import Condition, ObjectPattern, Query, SetPattern, SetPatternTerm

_BARE_START = set("abcdefghijklmnopqrstuvwxyz_&")
_BARE_BODY = _BARE_START | set(
    "ABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789-'")


def _is_bare_constant(text: str) -> bool:
    if not text or text[0] not in _BARE_START:
        return False
    if text.upper() == "AND":
        return False
    return all(ch in _BARE_BODY for ch in text)


def print_term(term: Term) -> str:
    """Render a term in parseable TSL syntax."""
    if isinstance(term, Variable):
        return term.name
    if isinstance(term, Constant):
        if isinstance(term.value, int):
            return str(term.value)
        text = str(term.value)
        if _is_bare_constant(text):
            return text
        escaped = text.replace('"', "'")
        return f'"{escaped}"'
    if isinstance(term, FunctionTerm):
        inner = ",".join(print_term(arg) for arg in term.args)
        return f"{term.functor}({inner})"
    if isinstance(term, SetPatternTerm):
        return print_set_pattern(term.pattern)
    return str(term)


def print_set_pattern(setpat: SetPattern) -> str:
    inner = " ".join(print_pattern(p) for p in setpat.patterns)
    return "{" + inner + "}"


def print_pattern(pattern: ObjectPattern) -> str:
    """Render an object pattern in parseable TSL syntax."""
    if isinstance(pattern.value, SetPattern):
        value = print_set_pattern(pattern.value)
    else:
        value = print_term(pattern.value)
    return (f"<{print_term(pattern.oid)} {print_term(pattern.label)} "
            f"{value}>")


def print_condition(condition: Condition) -> str:
    return f"{print_pattern(condition.pattern)}@{condition.source}"


def print_query(query: Query, multiline: bool = False) -> str:
    """Render a query in parseable TSL syntax."""
    separator = " AND\n    " if multiline else " AND "
    body = separator.join(print_condition(c) for c in query.body)
    joiner = " :-\n    " if multiline else " :- "
    return f"{print_pattern(query.head)}{joiner}{body}"


def print_program(rules) -> str:
    """Render a union of rules, separated by ``;``."""
    return ";\n".join(print_query(rule) for rule in rules)
