"""TSL, the Tree Specification Language (Section 2), and its machinery."""

from .ast import (Condition, ObjectPattern, Query, SetPattern,
                  SetPatternTerm, make_condition, pattern_depth,
                  pattern_size, query_size)
from .parser import parse_pattern, parse_program, parse_query, parse_term
from .printer import (print_condition, print_pattern, print_program,
                      print_query, print_term)
from .normalize import (Path, condition_paths, head_paths, is_normal_form,
                        is_single_path, normalize, path_to_condition,
                        query_paths, single_path_count, split_pattern)
from .validate import (check_acyclic, check_head_oids, check_oid_discipline,
                       check_safety, data_variables, is_safe, oid_variables,
                       validate)
from .evaluator import body_assignments, evaluate, evaluate_program
from .decompose import ComponentQuery, decompose, decompose_program
from .pathexpr import (expand_rpe_query, label_sequences,
                       parse_path_expression)
from .explain import Explanation, explain
from .planner import condition_score, order_conditions, plan_report

__all__ = [
    "Condition", "ObjectPattern", "Query", "SetPattern", "SetPatternTerm",
    "make_condition", "pattern_depth", "pattern_size", "query_size",
    "parse_query", "parse_pattern", "parse_term", "parse_program",
    "print_query", "print_pattern", "print_term", "print_condition",
    "print_program",
    "Path", "normalize", "is_normal_form", "is_single_path",
    "single_path_count", "query_paths", "condition_paths", "head_paths",
    "path_to_condition", "split_pattern",
    "validate", "check_safety", "check_head_oids", "check_oid_discipline",
    "check_acyclic", "is_safe", "oid_variables", "data_variables",
    "evaluate", "evaluate_program", "body_assignments",
    "ComponentQuery", "decompose", "decompose_program",
    "parse_path_expression", "label_sequences", "expand_rpe_query",
    "explain", "Explanation",
    "order_conditions", "condition_score", "plan_report",
]
