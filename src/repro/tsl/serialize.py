"""Structural JSON (de)serialization of TSL queries.

The TSL printer/parser round-trips every query a *user* can write, but
the rewriting machinery manufactures queries whose variables carry
rename-apart suffixes (``P~8``) that the lexer rightly refuses, and
whose head oids may box set patterns (:class:`SetPatternTerm`, the
Example 3.2 set mappings) that have no surface syntax at all.  The
persistence layer (:mod:`repro.storage.registry`) stores such queries
-- composition rules are rename-apart artifacts -- so it needs a codec
that is total over the AST, not over the surface syntax.  This one
mirrors the term codec of :mod:`repro.oem.serialize`: structural,
byte-stable under ``sort_keys``, and exact (spans excepted -- they are
parser metadata, excluded from AST equality).
"""

from __future__ import annotations

from typing import Any

from ..errors import TslError
from ..logic.terms import FunctionTerm
from ..oem.serialize import term_from_json, term_to_json
from .ast import Condition, ObjectPattern, Query, SetPattern, SetPatternTerm


def _tsl_term_to_json(term: Any) -> Any:
    """The OEM term codec, extended with boxed set patterns.

    Function terms recurse here (not into the OEM codec) so a
    :class:`SetPatternTerm` nested inside a head oid's arguments is
    reached.
    """
    if isinstance(term, SetPatternTerm):
        return {"sp": [pattern_to_json(p) for p in term.pattern.patterns]}
    if isinstance(term, FunctionTerm):
        return {"f": term.functor,
                "a": [_tsl_term_to_json(t) for t in term.args]}
    return term_to_json(term)


def _tsl_term_from_json(data: Any) -> Any:
    if isinstance(data, dict) and "sp" in data:
        return SetPatternTerm(SetPattern(tuple(pattern_from_json(p)
                                               for p in data["sp"])))
    if isinstance(data, dict) and "f" in data:
        return FunctionTerm(data["f"],
                            tuple(_tsl_term_from_json(t)
                                  for t in data["a"]))
    return term_from_json(data)


def pattern_to_json(pattern: ObjectPattern) -> dict[str, Any]:
    """Encode an object pattern (set values nest recursively)."""
    if isinstance(pattern.value, SetPattern):
        value: Any = {"set": [pattern_to_json(p)
                              for p in pattern.value.patterns]}
    else:
        value = _tsl_term_to_json(pattern.value)
    return {"oid": _tsl_term_to_json(pattern.oid),
            "label": _tsl_term_to_json(pattern.label),
            "value": value}


def pattern_from_json(data: dict[str, Any]) -> ObjectPattern:
    value = data["value"]
    if isinstance(value, dict) and "set" in value:
        decoded: Any = SetPattern(tuple(pattern_from_json(p)
                                        for p in value["set"]))
    else:
        decoded = _tsl_term_from_json(value)
    return ObjectPattern(_tsl_term_from_json(data["oid"]),
                         _tsl_term_from_json(data["label"]), decoded)


def query_to_json(query: Query) -> dict[str, Any]:
    """Encode a query; total over the AST (unlike the TSL printer)."""
    return {
        "head": pattern_to_json(query.head),
        "body": [{"pattern": pattern_to_json(c.pattern),
                  "source": c.source} for c in query.body],
        "name": query.name,
    }


def query_from_json(data: Any) -> Query:
    """Decode :func:`query_to_json` output back to an identical query."""
    if not isinstance(data, dict) or "head" not in data:
        raise TslError(f"malformed query encoding: {data!r}")
    return Query(
        pattern_from_json(data["head"]),
        tuple(Condition(pattern_from_json(c["pattern"]), c["source"])
              for c in data["body"]),
        name=data.get("name"),
    )
