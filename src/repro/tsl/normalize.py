"""Normal form conversion and path extraction (Section 2).

*Normal Form TSL Queries* are those "in whose body all set-valued value
fields contain at most one object pattern"; a branching condition is split
into one condition per root-to-leaf path, duplicating the shared prefix.
For example (Q1) normalizes to (Q2)::

    <P person {<G gender female> <X Y Z>}>@db
      ==>
    <P person {<G gender female>}>@db  AND  <P person {<X Y Z>}>@db

A normalized condition is a *chain*; :class:`Path` is its flat view, used
throughout the rewriting machinery (mappings, composition, equivalence).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from ..logic.terms import Term
from .ast import Condition, ObjectPattern, PatternValue, Query, SetPattern


@dataclass(frozen=True, slots=True)
class Path:
    """A single-path condition, flattened.

    ``steps`` lists ``(oid, label)`` pairs from the top-level object down;
    ``leaf`` is the value field of the deepest pattern: a term, or the
    empty set pattern ``{}`` (which asserts "is a set object").
    """

    steps: tuple[tuple[Term, Term], ...]
    leaf: PatternValue
    source: str

    def __post_init__(self) -> None:
        assert self.steps, "a path has at least one step"

    @property
    def depth(self) -> int:
        return len(self.steps)

    def __str__(self) -> str:
        return f"{_path_pattern(self.steps, self.leaf)}@{self.source}"


def path_pattern(steps: tuple[tuple[Term, Term], ...],
                 leaf: PatternValue) -> ObjectPattern:
    """Rebuild the chain-shaped object pattern for (a suffix of) a path."""
    return _path_pattern(steps, leaf)


def _path_pattern(steps: tuple[tuple[Term, Term], ...],
                  leaf: PatternValue) -> ObjectPattern:
    oid, label = steps[-1]
    pattern = ObjectPattern(oid, label, leaf)
    for oid, label in reversed(steps[:-1]):
        pattern = ObjectPattern(oid, label, SetPattern((pattern,)))
    return pattern


def split_pattern(pattern: ObjectPattern) -> list[ObjectPattern]:
    """Split a body pattern into its root-to-leaf single-path patterns."""
    return [_path_pattern(path.steps, path.leaf)
            for path in pattern_paths(pattern, source="")]


def pattern_paths(pattern: ObjectPattern, source: str) -> list[Path]:
    """Enumerate the root-to-leaf paths of a (possibly branching) pattern."""
    paths: list[Path] = []

    def walk(node: ObjectPattern,
             prefix: tuple[tuple[Term, Term], ...]) -> None:
        steps = prefix + ((node.oid, node.label),)
        value = node.value
        if isinstance(value, SetPattern) and value.patterns:
            for child in value.patterns:
                walk(child, steps)
        else:
            paths.append(Path(steps, value, source))

    walk(pattern, ())
    return paths


def condition_paths(condition: Condition) -> list[Path]:
    """Enumerate the single paths of one condition."""
    return pattern_paths(condition.pattern, condition.source)


def query_paths(query: Query) -> list[Path]:
    """Enumerate every single path in the query body, deduplicated."""
    seen: set[Path] = set()
    ordered: list[Path] = []
    for condition in query.body:
        for path in condition_paths(condition):
            if path not in seen:
                seen.add(path)
                ordered.append(path)
    return ordered


def path_to_condition(path: Path) -> Condition:
    """Rebuild the chain-shaped condition a path denotes."""
    return Condition(_path_pattern(path.steps, path.leaf), path.source)


def normalize(query: Query) -> Query:
    """Return the normal-form equivalent of *query* (body split to paths).

    The head is untouched (normal form is a body property).  Duplicate
    path conditions are removed -- conjunction is idempotent.
    """
    body = tuple(path_to_condition(p) for p in query_paths(query))
    return Query(query.head, body, name=query.name)


def is_normal_form(query: Query) -> bool:
    """True iff every body set-value field has at most one nested pattern."""
    for condition in query.body:
        for pattern in condition.pattern.nested_patterns():
            value = pattern.value
            if isinstance(value, SetPattern) and len(value.patterns) > 1:
                return False
    return True


def is_single_path(query: Query) -> bool:
    """True iff the (normalized) body consists of exactly one condition."""
    return len(query_paths(query)) == 1


def single_path_count(query: Query) -> int:
    """The number k of single-path conditions in the body (Section 3.4)."""
    return len(query_paths(query))


def head_paths(query: Query) -> Iterator[Path]:
    """Enumerate the root-to-leaf paths of the *head* pattern.

    Heads are never normalized, but composition unifies view-condition
    paths against view-head paths, so the flat view is needed there too.
    The pseudo-source is the empty string.
    """
    return iter(pattern_paths(query.head, source=""))
