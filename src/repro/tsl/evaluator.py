"""TSL evaluation with minimal-model semantics (Section 2).

The meaning of a query body is the set of assignments from variables to
object ids, labels, atomic values, and set values (subgraphs) that satisfy
every condition; a condition's top-level pattern matches the *root* objects
of its source.  The head then constructs the answer graph: one object per
(head object pattern, assignment) pair, keyed by the ground head oid term.
Assignments producing the same oid term "fuse" their set values; when a
head value variable is bound to a set value, the source subgraph hangs off
the constructed node (copy semantics -- the answer can be a graph).

Programs (unions of rules) evaluate into a single fused answer, which is
what Section 4's equivalence notion compares.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping, Union

from ..errors import FusionConflictError, OemError, TslError
from ..logic.subst import Substitution
from ..logic.unify import unify
from ..logic.terms import Constant, SetValue, Term, Variable
from ..obs import NULL_TRACER
from ..oem.model import OemDatabase, Oid
from .ast import Condition, ObjectPattern, Query, SetPattern

Sources = Mapping[str, OemDatabase]

ANSWER_NAME = "answer"


def _as_sources(sources: Union[OemDatabase, Sources]) -> Sources:
    if isinstance(sources, OemDatabase):
        return {sources.name: sources}
    return sources


# --------------------------------------------------------------------------
# Body matching
# --------------------------------------------------------------------------

def _unify_field(pattern_term: Term, ground: Term,
                 subst: Substitution) -> Substitution | None:
    """Match one pattern field against a ground term under *subst*."""
    bound = subst.apply(pattern_term)
    if bound == ground:
        return subst
    if isinstance(bound, Variable):
        return subst.bind(bound, ground)
    return unify(bound, ground, subst)


def _match_pattern(db: OemDatabase, oid: Oid, pattern: ObjectPattern,
                   subst: Substitution) -> Iterator[Substitution]:
    """Yield extensions of *subst* matching *pattern* at object *oid*."""
    after_oid = _unify_field(pattern.oid, oid, subst)
    if after_oid is None:
        return
    after_label = _unify_field(pattern.label, Constant(db.label(oid)),
                               after_oid)
    if after_label is None:
        return
    value = pattern.value
    if isinstance(value, SetPattern):
        if db.is_atomic(oid):
            return
        yield from _match_set(db, db.children(oid), value.patterns,
                              after_label)
        return
    if db.is_atomic(oid):
        ground: Term = Constant(db.atomic_value(oid))
    else:
        ground = SetValue(frozenset(db.children(oid)), db.name)
    final = _unify_field(value, ground, after_label)
    if final is not None:
        yield final


def _match_set(db: OemDatabase, children: tuple[Oid, ...],
               patterns: tuple[ObjectPattern, ...],
               subst: Substitution) -> Iterator[Substitution]:
    """Match each nested pattern to *some* child (set containment).

    Distinct nested patterns may match the same child; all combinations
    are enumerated (backtracking join).
    """
    if not patterns:
        yield subst
        return
    first, rest = patterns[0], patterns[1:]
    for child in _candidate_children(db, children, first, subst):
        for extended in _match_pattern(db, child, first, subst):
            yield from _match_set(db, children, rest, extended)


def _candidate_children(db: OemDatabase, children: tuple[Oid, ...],
                        pattern: ObjectPattern,
                        subst: Substitution) -> tuple[Oid, ...]:
    bound_oid = subst.apply(pattern.oid)
    if bound_oid.is_ground():
        return (bound_oid,) if bound_oid in children else ()
    return children


def _match_condition(condition: Condition, sources: Sources,
                     subst: Substitution) -> Iterator[Substitution]:
    try:
        db = sources[condition.source]
    except KeyError:
        known = ", ".join(sorted(sources)) or "(none)"
        raise TslError(f"unknown source {condition.source!r}; "
                       f"available: {known}") from None
    bound_oid = subst.apply(condition.pattern.oid)
    if bound_oid.is_ground():
        candidates: Iterable[Oid] = (
            (bound_oid,) if bound_oid in db and db.is_root(bound_oid) else ())
    else:
        candidates = db.roots
    for root in candidates:
        yield from _match_pattern(db, root, condition.pattern, subst)


def body_assignments(query: Query,
                     sources: Union[OemDatabase, Sources],
                     reorder: bool = True) -> list[Substitution]:
    """Return the satisfying assignments of the query body, deduplicated.

    With *reorder* (the default) conditions are evaluated selective-first
    and connected-next (:mod:`repro.tsl.planner`); conjunction order is
    semantically irrelevant, so this only affects cost.
    """
    sources = _as_sources(sources)
    if reorder and len(query.body) > 1:
        from .planner import order_conditions
        query = order_conditions(query)
    current: list[Substitution] = [Substitution()]
    for condition in query.body:
        extended: list[Substitution] = []
        for subst in current:
            extended.extend(_match_condition(condition, sources, subst))
        current = extended
        if not current:
            return []
    seen: set[Substitution] = set()
    unique: list[Substitution] = []
    for subst in current:
        if subst not in seen:
            seen.add(subst)
            unique.append(subst)
    return unique


# --------------------------------------------------------------------------
# Head construction
# --------------------------------------------------------------------------

def _instantiate_head(answer: OemDatabase, pattern: ObjectPattern,
                      subst: Substitution, sources: Sources) -> Oid:
    oid = subst.apply(pattern.oid)
    if not oid.is_ground():
        raise TslError(f"head oid {pattern.oid} not grounded by assignment")
    label_term = subst.apply(pattern.label)
    if not isinstance(label_term, Constant):
        raise TslError(f"head label {pattern.label} not grounded to a "
                       "constant by assignment")
    label = label_term.value
    value = pattern.value
    try:
        if isinstance(value, SetPattern):
            answer.add_set(oid, label)
            for child in value.patterns:
                child_oid = _instantiate_head(answer, child, subst, sources)
                answer.add_child(oid, child_oid)
        else:
            ground = subst.apply(value)
            if isinstance(ground, Constant):
                answer.add_atomic(oid, label, ground.value)
            elif isinstance(ground, SetValue):
                answer.add_set(oid, label)
                source_db = sources[ground.source]
                for member in sorted(ground.members, key=str):
                    source_db.copy_subgraph_into(answer, member)
                    answer.add_child(oid, member)
            else:
                raise TslError(
                    f"head value {value} not grounded by assignment")
    except OemError as exc:
        raise FusionConflictError(
            f"fusing head object {oid}: {exc}") from exc
    return oid


def evaluate(query: Query,
             sources: Union[OemDatabase, Sources],
             answer_name: str = ANSWER_NAME, *,
             tracer=None) -> OemDatabase:
    """Evaluate one TSL rule and return the answer database."""
    return evaluate_program([query], sources, answer_name, tracer=tracer)


def evaluate_program(rules: Iterable[Query],
                     sources: Union[OemDatabase, Sources],
                     answer_name: str = ANSWER_NAME, *,
                     tracer=None) -> OemDatabase:
    """Evaluate a union of rules into one fused answer database.

    Per Section 2, when two assignments (possibly from different rules)
    produce the same oid, "the same object is returned, and the values of
    the two objects are fused".

    *tracer* records one ``evaluate.rule`` span per rule with the
    assignment count, under an ``evaluate`` root span.
    """
    tracer = tracer or NULL_TRACER
    sources = _as_sources(sources)
    answer = OemDatabase(answer_name)
    rules = list(rules)
    with tracer.span("evaluate", rules=len(rules)) as span:
        for rule in rules:
            with tracer.span("evaluate.rule",
                             rule=rule.name or "?") as rule_span:
                assignments = 0
                for assignment in body_assignments(rule, sources):
                    root_oid = _instantiate_head(answer, rule.head,
                                                 assignment, sources)
                    answer.add_root(root_oid)
                    assignments += 1
                rule_span.set("assignments", assignments)
        answer.check_integrity()
        span.set("objects", answer.stats()["objects"])
    return answer
