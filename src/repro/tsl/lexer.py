"""Tokenizer for the TSL text syntax.

Token kinds: punctuation (``< > { } ( ) , :- @``), the keyword ``AND``
(case-insensitive), integer and quoted-string literals, and identifiers.
Identifiers may contain letters, digits, underscores, hyphens, and
apostrophes (the paper writes primed variables like ``X'``); they must not
start with a digit or hyphen.

The variable/constant split follows the Datalog convention: identifiers
beginning with an uppercase letter are variables, everything else is a
constant.  (The paper uses single capital letters for variables, which this
convention subsumes.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from ..errors import TslSyntaxError
from ..span import Span

PUNCTUATION = {"<", ">", "{", "}", "(", ")", ",", "@", "."}

_IDENT_START = set("abcdefghijklmnopqrstuvwxyz"
                   "ABCDEFGHIJKLMNOPQRSTUVWXYZ_&$")
_IDENT_BODY = _IDENT_START | set("0123456789-'")


@dataclass(frozen=True, slots=True)
class Token:
    kind: str          # one of: punct, turnstile, and, ident, int, string, eof
    text: str
    line: int
    column: int

    def __str__(self) -> str:
        return f"{self.kind}({self.text!r})"

    @property
    def width(self) -> int:
        """Width in source columns (string literals include their quotes)."""
        return len(self.text) + (2 if self.kind == "string" else 0)

    @property
    def end_column(self) -> int:
        return self.column + self.width

    @property
    def span(self) -> Span:
        """The source span this token covers (tokens never span lines)."""
        return Span(self.line, self.column, self.line, self.end_column)


def tokenize(text: str, *, start_line: int = 1, start_column: int = 1,
             source: str | None = None) -> Iterator[Token]:
    """Yield tokens for *text*, ending with a single ``eof`` token.

    ``start_line``/``start_column`` offset the reported positions, for
    callers lexing a slice of a larger document (``parse_program``).
    ``source`` is the full document used for error excerpts; it defaults
    to *text* itself.
    """
    if source is None:
        source = text
    line = start_line
    column = start_column
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch == "\n":
            line += 1
            column = 1
            i += 1
            continue
        if ch in " \t\r":
            i += 1
            column += 1
            continue
        if ch == "%":  # comment to end of line, as in the paper's listings
            while i < n and text[i] != "\n":
                i += 1
            continue
        start_col = column
        if text.startswith(":-", i):
            yield Token("turnstile", ":-", line, start_col)
            i += 2
            column += 2
            continue
        if ch in PUNCTUATION:
            yield Token("punct", ch, line, start_col)
            i += 1
            column += 1
            continue
        if ch in "'\"":
            quote = ch
            j = i + 1
            while j < n and text[j] != quote:
                if text[j] == "\n":
                    raise TslSyntaxError("unterminated string literal",
                                         line, start_col, source=source)
                j += 1
            if j >= n:
                raise TslSyntaxError("unterminated string literal",
                                     line, start_col, source=source)
            yield Token("string", text[i + 1:j], line, start_col)
            column += j + 1 - i
            i = j + 1
            continue
        if ch.isdigit() or (ch == "-" and i + 1 < n and text[i + 1].isdigit()):
            j = i + 1
            while j < n and text[j].isdigit():
                j += 1
            yield Token("int", text[i:j], line, start_col)
            column += j - i
            i = j
            continue
        if ch in _IDENT_START:
            j = i + 1
            while j < n and text[j] in _IDENT_BODY:
                j += 1
            word = text[i:j]
            kind = "and" if word.upper() == "AND" else "ident"
            yield Token(kind, word, line, start_col)
            column += j - i
            i = j
            continue
        raise TslSyntaxError(f"unexpected character {ch!r}", line, start_col,
                             source=source)
    yield Token("eof", "", line, column)
