"""Decomposition of TSL queries into graph component queries (Section 4).

TSL equivalence is complicated because query heads construct arbitrary
answer graphs and different rules can contribute different parts of the
same graph.  Every rule is therefore decomposed into finer-grain rules,
one per component of the result graph:

* one **top** rule per rule -- the root of the constructed graph;
* one **member** rule per object-subobject edge in the head;
* one **object** rule per head object pattern -- its label and value
  (set-valued head objects get the value ``{}``: their members are
  described by the member rules).

Example 4.1 of the paper is reproduced verbatim in the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Literal

from ..logic.terms import Term
from .ast import Condition, PatternValue, Query, SetPattern

ComponentKind = Literal["top", "member", "object"]

EMPTY_SET = SetPattern(())


@dataclass(frozen=True, slots=True)
class ComponentQuery:
    """A graph component query: a reduced rule over the same body.

    ``head_terms`` holds the "predicate arguments": ``(t,)`` for a top
    rule, ``(parent, child)`` for a member rule, and ``(oid, label)`` for
    an object rule whose value is carried in ``value`` (a term, or the
    empty set pattern for set-valued objects).
    """

    kind: ComponentKind
    head_terms: tuple[Term, ...]
    value: PatternValue | None
    body: tuple[Condition, ...]

    def __str__(self) -> str:
        body = " AND ".join(str(c) for c in self.body)
        if self.kind == "top":
            head = f"top({self.head_terms[0]})"
        elif self.kind == "member":
            head = f"member({self.head_terms[0]},{self.head_terms[1]})"
        else:
            oid, label = self.head_terms
            head = f"<{oid} {label} {self.value}>"
        return f"{head} :- {body}"


def decompose(query: Query) -> list[ComponentQuery]:
    """Decompose one rule into its graph component queries."""
    components: list[ComponentQuery] = [
        ComponentQuery("top", (query.head.oid,), None, query.body)
    ]
    for pattern in query.head.nested_patterns():
        if isinstance(pattern.value, SetPattern):
            for child in pattern.value.patterns:
                components.append(ComponentQuery(
                    "member", (pattern.oid, child.oid), None, query.body))
            value: PatternValue = EMPTY_SET
        else:
            value = pattern.value
        components.append(ComponentQuery(
            "object", (pattern.oid, pattern.label), value, query.body))
    return components


def decompose_program(rules: Iterable[Query]) -> list[ComponentQuery]:
    """Decompose a union of rules (compositions are unions, Section 4)."""
    components: list[ComponentQuery] = []
    for rule in rules:
        components.extend(decompose(rule))
    return components
