"""Abstract syntax of TSL, the Tree Specification Language (Section 2).

A TSL query is a rule ``head :- body`` in the style of Datalog.  Head and
body are built from *object patterns* ``<object-id label value>`` whose
value field is either a term (variable, atomic constant, or function term)
or a *set value pattern* containing zero or more object patterns.

All AST nodes are immutable and hashable so they can key dictionaries in
the rewriting machinery.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Mapping, Sequence, Union

from ..logic.subst import Substitution
from ..logic.terms import Term, Variable
from ..span import Span

DEFAULT_SOURCE = "db"


@dataclass(frozen=True, slots=True)
class SetPattern:
    """A set value pattern: zero or more nested object patterns."""

    patterns: tuple["ObjectPattern", ...] = ()
    # Source spans are parser-attached and excluded from equality/hashing,
    # so rewriting machinery that rebuilds or compares patterns is
    # unaffected; rebuilt nodes simply have span None.
    span: Span | None = field(default=None, compare=False, repr=False)

    def substitute(self, subst: Substitution) -> "SetPattern":
        return SetPattern(tuple(p.substitute(subst) for p in self.patterns),
                          span=self.span)

    def variables(self) -> Iterator[Variable]:
        for p in self.patterns:
            yield from p.variables()

    def __str__(self) -> str:
        inner = " ".join(str(p) for p in self.patterns)
        return "{" + inner + "}"


PatternValue = Union[Term, SetPattern]


@dataclass(frozen=True, slots=True)
class ObjectPattern:
    """An object pattern ``<oid label value>``."""

    oid: Term
    label: Term
    value: PatternValue
    span: Span | None = field(default=None, compare=False, repr=False)

    def substitute(self, subst: Substitution) -> "ObjectPattern":
        value = self.value
        if isinstance(value, SetPattern):
            value = value.substitute(subst)
        else:
            value = subst.apply(value)
            # A set mapping may send a value variable to a set pattern
            # (Example 3.2); Substitution stores those via SetPatternTerm.
            if isinstance(value, SetPatternTerm):
                value = value.pattern
        oid = subst.apply(self.oid)
        label = subst.apply(self.label)
        if isinstance(oid, SetPatternTerm) or isinstance(label, SetPatternTerm):
            from ..errors import ValidationError
            raise ValidationError(
                "a set pattern was substituted into an oid or label field",
                span=self.span)
        return ObjectPattern(oid, label, value, span=self.span)

    def variables(self) -> Iterator[Variable]:
        yield from self.oid.variables()
        yield from self.label.variables()
        if isinstance(self.value, SetPattern):
            yield from self.value.variables()
        else:
            yield from self.value.variables()

    def oid_variables(self) -> Iterator[Variable]:
        """Yield variables appearing in object-id fields, recursively."""
        yield from self.oid.variables()
        if isinstance(self.value, SetPattern):
            for p in self.value.patterns:
                yield from p.oid_variables()

    def nested_patterns(self) -> Iterator["ObjectPattern"]:
        """Yield this pattern and every nested pattern, preorder."""
        yield self
        if isinstance(self.value, SetPattern):
            for p in self.value.patterns:
                yield from p.nested_patterns()

    def has_set_value(self) -> bool:
        return isinstance(self.value, SetPattern)

    def __str__(self) -> str:
        return f"<{self.oid} {self.label} {self.value}>"


@dataclass(frozen=True, slots=True)
class SetPatternTerm(Term):
    """Adapter wrapping a :class:`SetPattern` so it can sit in a substitution.

    The paper's *set mappings* (Section 3.1) let a value variable map to a
    set pattern; substitutions map variables to terms, so the pattern is
    boxed.  :meth:`ObjectPattern.substitute` unboxes it when it lands in a
    value field; it is an error for one to land in an oid or label field.
    """

    pattern: SetPattern

    def is_ground(self) -> bool:
        return not any(True for _ in self.pattern.variables())

    def variables(self) -> Iterator[Variable]:
        yield from self.pattern.variables()

    def substitute(self, mapping: Mapping[Variable, Term]) -> Term:
        subst = Substitution(mapping)
        return SetPatternTerm(self.pattern.substitute(subst))

    def __str__(self) -> str:
        return str(self.pattern)


@dataclass(frozen=True, slots=True)
class Condition:
    """A body condition: an object pattern applied to a named data source."""

    pattern: ObjectPattern
    source: str = DEFAULT_SOURCE
    span: Span | None = field(default=None, compare=False, repr=False)

    def substitute(self, subst: Substitution) -> "Condition":
        return Condition(self.pattern.substitute(subst), self.source,
                         span=self.span)

    def variables(self) -> Iterator[Variable]:
        return self.pattern.variables()

    def __str__(self) -> str:
        return f"{self.pattern}@{self.source}"


@dataclass(frozen=True, slots=True)
class Query:
    """A TSL rule: a head object pattern and a conjunction of conditions."""

    head: ObjectPattern
    body: tuple[Condition, ...]
    name: str | None = field(default=None, compare=False)
    span: Span | None = field(default=None, compare=False, repr=False)

    def substitute(self, subst: Substitution) -> "Query":
        return Query(self.head.substitute(subst),
                     tuple(c.substitute(subst) for c in self.body),
                     name=self.name, span=self.span)

    def head_variables(self) -> set[Variable]:
        return set(self.head.variables())

    def body_variables(self) -> set[Variable]:
        out: set[Variable] = set()
        for c in self.body:
            out.update(c.variables())
        return out

    def all_variables(self) -> set[Variable]:
        return self.head_variables() | self.body_variables()

    def sources(self) -> set[str]:
        return {c.source for c in self.body}

    def rename_apart(self, suffix: str) -> "Query":
        """Rename every variable ``X`` to ``X<suffix>`` (fresh copies)."""
        mapping = Substitution({
            v: Variable(v.name + suffix) for v in self.all_variables()})
        return self.substitute(mapping)

    def __str__(self) -> str:
        body = " AND ".join(str(c) for c in self.body)
        return f"{self.head} :- {body}"


Program = Sequence[Query]


def make_condition(pattern: ObjectPattern,
                   source: str = DEFAULT_SOURCE) -> Condition:
    """Convenience constructor mirroring the paper's ``pattern@source``."""
    return Condition(pattern, source)


def pattern_depth(pattern: ObjectPattern) -> int:
    """Depth of nesting: 1 for a flat pattern."""
    if isinstance(pattern.value, SetPattern) and pattern.value.patterns:
        return 1 + max(pattern_depth(p) for p in pattern.value.patterns)
    return 1


def pattern_size(pattern: ObjectPattern) -> int:
    """Total number of object patterns in the tree."""
    return sum(1 for _ in pattern.nested_patterns())


def query_size(query: Query) -> int:
    """Total number of object patterns in head and body."""
    total = pattern_size(query.head)
    for c in query.body:
        total += pattern_size(c.pattern)
    return total


def fresh_variable_factory(taken: set[Variable], stem: str = "W"):
    """Return a callable producing variables not in *taken*.

    Produced variables are added to *taken* so successive calls are fresh
    with respect to each other as well.
    """
    counter = [0]

    def fresh() -> Variable:
        while True:
            counter[0] += 1
            candidate = Variable(f"{stem}_{counter[0]}")
            if candidate not in taken:
                taken.add(candidate)
                return candidate

    return fresh
