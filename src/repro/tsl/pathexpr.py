"""Regular path expressions over labels (Section 7 future work).

"We are working on extensions to the algorithm so that it can handle
extensions to TSL, such as regular path expressions in the query body."
This module provides the natural bounded-expansion semantics: a regular
expression over labels expands -- up to a configurable depth -- into the
finite union of plain TSL single-path queries it denotes, which then
flows through the existing evaluator, rewriter, and equivalence test
(unions are first-class everywhere, Section 4).

Syntax::

    expr   := seq ('|' seq)*
    seq    := item ('.' item)*
    item   := atom ('*' | '+' | '?')?
    atom   := label | '_' | '(' expr ')'

``_`` is a wildcard (matches any one label; it expands to a fresh label
variable).  Examples: ``person.name.last``, ``pub.(ref)*.title``,
``_.(a|b).c``.

Bounded expansion is exact for databases whose depth is below the bound
and a sound under-approximation otherwise -- the classic compromise;
[5]'s exact rewriting of regular expressions covers only queries that
consist of a single regular path, as the related-work section notes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Union

from ..errors import TslSyntaxError
from ..logic.terms import Constant, FunctionTerm, Term, Variable
from .ast import (Condition, ObjectPattern, PatternValue, Query, SetPattern,
                  fresh_variable_factory)

WILDCARD = "_"


# --------------------------------------------------------------------------
# Regular expression AST
# --------------------------------------------------------------------------

@dataclass(frozen=True, slots=True)
class Label:
    name: str  # a concrete label, or WILDCARD

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True, slots=True)
class Concat:
    parts: tuple["Rpe", ...]

    def __str__(self) -> str:
        return ".".join(
            f"({part})" if isinstance(part, Alternation) else str(part)
            for part in self.parts)


@dataclass(frozen=True, slots=True)
class Alternation:
    options: tuple["Rpe", ...]

    def __str__(self) -> str:
        return "|".join(str(o) for o in self.options)


@dataclass(frozen=True, slots=True)
class Star:
    inner: "Rpe"
    at_least_one: bool = False

    def __str__(self) -> str:
        suffix = "+" if self.at_least_one else "*"
        return f"({self.inner}){suffix}"


@dataclass(frozen=True, slots=True)
class Optional_:
    inner: "Rpe"

    def __str__(self) -> str:
        return f"({self.inner})?"


Rpe = Union[Label, Concat, Alternation, Star, Optional_]


# --------------------------------------------------------------------------
# Parser
# --------------------------------------------------------------------------

class _RpeParser:
    def __init__(self, text: str) -> None:
        self._text = text
        self._pos = 0

    def parse(self) -> Rpe:
        expr = self._alternation()
        self._skip_spaces()
        if self._pos != len(self._text):
            raise TslSyntaxError(
                f"unexpected {self._text[self._pos]!r} in path expression")
        return expr

    def _skip_spaces(self) -> None:
        while self._pos < len(self._text) and self._text[self._pos] == " ":
            self._pos += 1

    def _peek(self) -> str:
        self._skip_spaces()
        if self._pos < len(self._text):
            return self._text[self._pos]
        return ""

    def _alternation(self) -> Rpe:
        options = [self._sequence()]
        while self._peek() == "|":
            self._pos += 1
            options.append(self._sequence())
        if len(options) == 1:
            return options[0]
        return Alternation(tuple(options))

    def _sequence(self) -> Rpe:
        parts = [self._item()]
        while self._peek() == ".":
            self._pos += 1
            parts.append(self._item())
        if len(parts) == 1:
            return parts[0]
        return Concat(tuple(parts))

    def _item(self) -> Rpe:
        atom = self._atom()
        while self._peek() and self._peek() in "*+?":
            mark = self._peek()
            self._pos += 1
            if mark == "*":
                atom = Star(atom)
            elif mark == "+":
                atom = Star(atom, at_least_one=True)
            else:
                atom = Optional_(atom)
        return atom

    def _atom(self) -> Rpe:
        ch = self._peek()
        if ch == "(":
            self._pos += 1
            inner = self._alternation()
            if self._peek() != ")":
                raise TslSyntaxError("unbalanced '(' in path expression")
            self._pos += 1
            return inner
        start = self._pos
        while (self._pos < len(self._text)
               and (self._text[self._pos].isalnum()
                    or self._text[self._pos] in "_-")):
            self._pos += 1
        word = self._text[start:self._pos]
        if not word:
            raise TslSyntaxError(
                f"expected a label at position {self._pos} of path "
                "expression")
        return Label(word)


def parse_path_expression(text: str) -> Rpe:
    """Parse a regular path expression such as ``pub.(ref)*.title``."""
    return _RpeParser(text).parse()


# --------------------------------------------------------------------------
# Bounded expansion
# --------------------------------------------------------------------------

def _nullable(expr: Rpe) -> bool:
    if isinstance(expr, Label):
        return False
    if isinstance(expr, Concat):
        return all(_nullable(p) for p in expr.parts)
    if isinstance(expr, Alternation):
        return any(_nullable(o) for o in expr.options)
    if isinstance(expr, Star):
        return not expr.at_least_one or _nullable(expr.inner)
    if isinstance(expr, Optional_):
        return True
    raise TypeError(f"unknown RPE node {expr!r}")


def _reject_nullable_stars(expr: Rpe) -> None:
    """Stars over nullable expressions expand forever; reject upfront."""
    if isinstance(expr, Star):
        if _nullable(expr.inner):
            raise TslSyntaxError(
                f"star over a nullable expression: ({expr.inner})*")
        _reject_nullable_stars(expr.inner)
    elif isinstance(expr, Concat):
        for part in expr.parts:
            _reject_nullable_stars(part)
    elif isinstance(expr, Alternation):
        for option in expr.options:
            _reject_nullable_stars(option)
    elif isinstance(expr, Optional_):
        _reject_nullable_stars(expr.inner)


def label_sequences(expr: Rpe, max_length: int) -> list[tuple[str, ...]]:
    """All label sequences of length <= max_length denoted by *expr*."""
    _reject_nullable_stars(expr)
    results: set[tuple[str, ...]] = set()

    def walk(node: Rpe, prefix: tuple[str, ...],
             continuation: Sequence[Rpe]) -> None:
        if len(prefix) > max_length:
            return
        if isinstance(node, Label):
            advance(prefix + (node.name,), continuation)
        elif isinstance(node, Concat):
            advance(prefix, tuple(node.parts) + tuple(continuation))
        elif isinstance(node, Alternation):
            for option in node.options:
                walk(option, prefix, continuation)
        elif isinstance(node, Optional_):
            advance(prefix, continuation)
            walk(node.inner, prefix, continuation)
        elif isinstance(node, Star):
            if not node.at_least_one:
                advance(prefix, continuation)
            walk(node.inner, prefix,
                 (Star(node.inner),) + tuple(continuation))
        else:  # pragma: no cover - exhaustive
            raise TypeError(f"unknown RPE node {node!r}")

    def advance(prefix: tuple[str, ...],
                continuation: Sequence[Rpe]) -> None:
        if len(prefix) > max_length:
            return
        if not continuation:
            if prefix:
                results.add(prefix)
            return
        walk(continuation[0], prefix, continuation[1:])

    advance((), (expr,))
    return sorted(results)


def sequence_condition(labels: tuple[str, ...], leaf: PatternValue,
                       source: str, fresh, root_var: Variable
                       ) -> Condition:
    """Build the chain condition for one expanded label sequence."""
    assert labels
    oids = [root_var] + [fresh() for _ in labels[1:]]
    label_terms: list[Term] = [
        fresh() if name == WILDCARD else Constant(name)
        for name in labels]
    pattern = ObjectPattern(oids[-1], label_terms[-1], leaf)
    for oid, label in zip(reversed(oids[:-1]), reversed(label_terms[:-1])):
        pattern = ObjectPattern(oid, label, SetPattern((pattern,)))
    return Condition(pattern, source)


def expand_rpe_query(expression: str | Rpe, leaf: PatternValue,
                     source: str = "db", max_depth: int = 6,
                     answer_label: str = "hit") -> list[Query]:
    """Expand a regular-path query into a union of plain TSL rules.

    Each rule matches one label sequence denoted by the expression (up to
    *max_depth* labels) from a root object down, binds the endpoint's
    value to *leaf*, and returns ``<hit(Root,End) <answer_label> leaf>``
    objects -- the "endpoints" shape of the related work [5].  The union
    evaluates with :func:`repro.tsl.evaluator.evaluate_program` and
    rewrites with the standard machinery, union rule by union rule.
    """
    if isinstance(expression, str):
        expression = parse_path_expression(expression)
    taken: set[Variable] = set()
    fresh = fresh_variable_factory(taken, stem="N")
    root_var = Variable("Root")
    taken.add(root_var)
    rules: list[Query] = []
    for labels in label_sequences(expression, max_depth):
        sequence_fresh = fresh_variable_factory(set(taken), stem="N")
        leaf_value = leaf
        condition = sequence_condition(labels, leaf_value, source,
                                       sequence_fresh, root_var)
        end_oid = _deepest_oid(condition.pattern)
        head = ObjectPattern(
            FunctionTerm("hit", (root_var, end_oid)),
            Constant(answer_label), leaf_value)
        rules.append(Query(head, (condition,)))
    return rules


def _deepest_oid(pattern: ObjectPattern) -> Term:
    node = pattern
    while isinstance(node.value, SetPattern) and node.value.patterns:
        node = node.value.patterns[0]
    return node.oid
