"""Recursive-descent parser for TSL text (Section 2 syntax).

Grammar::

    query     := pattern ':-' condition ('AND' condition)*
    condition := pattern ('@' ident)?
    pattern   := '<' term term value '>'
    value     := term | setpattern
    setpattern:= '{' pattern* '}'
    term      := ident [ '(' term (',' term)* ')' ] | int | string

Identifiers starting with an uppercase letter are variables; all other
identifiers, integers, and quoted strings are constants.  An identifier
followed by ``(`` is a function term.  A condition without ``@source``
defaults to source ``db``.

Example (query (Q2) of the paper)::

    parse_query('''
        <f(P) female {<f(X) Y Z>}> :-
            <P person {<G gender female>}>@db AND
            <P person {<X Y Z>}>@db
    ''')
"""

from __future__ import annotations

from ..errors import TslSyntaxError
from ..logic.terms import Constant, FunctionTerm, Term, Variable
from .ast import (DEFAULT_SOURCE, Condition, ObjectPattern, PatternValue,
                  Query, SetPattern)
from .lexer import Token, tokenize


class _Parser:
    def __init__(self, text: str) -> None:
        self._tokens = list(tokenize(text))
        self._pos = 0

    # -- token helpers -------------------------------------------------------

    def _peek(self) -> Token:
        return self._tokens[self._pos]

    def _advance(self) -> Token:
        token = self._tokens[self._pos]
        if token.kind != "eof":
            self._pos += 1
        return token

    def _expect_punct(self, text: str) -> Token:
        token = self._peek()
        if token.kind != "punct" or token.text != text:
            raise TslSyntaxError(f"expected {text!r}, found {token.text!r}",
                                 token.line, token.column)
        return self._advance()

    # -- grammar ------------------------------------------------------------

    def parse_query(self, name: str | None = None) -> Query:
        head = self.parse_pattern()
        token = self._peek()
        if token.kind != "turnstile":
            raise TslSyntaxError(f"expected ':-', found {token.text!r}",
                                 token.line, token.column)
        self._advance()
        body = [self.parse_condition()]
        while self._peek().kind == "and":
            self._advance()
            body.append(self.parse_condition())
        self._expect_eof()
        return Query(head, tuple(body), name=name)

    def parse_condition(self) -> Condition:
        pattern = self.parse_pattern()
        source = DEFAULT_SOURCE
        token = self._peek()
        if token.kind == "punct" and token.text == "@":
            self._advance()
            ident = self._peek()
            if ident.kind != "ident":
                raise TslSyntaxError(
                    f"expected source name after '@', found {ident.text!r}",
                    ident.line, ident.column)
            source = self._advance().text
        return Condition(pattern, source)

    def parse_pattern(self) -> ObjectPattern:
        self._expect_punct("<")
        oid = self.parse_term()
        label = self.parse_term()
        value = self.parse_value()
        self._expect_punct(">")
        return ObjectPattern(oid, label, value)

    def parse_value(self) -> PatternValue:
        token = self._peek()
        if token.kind == "punct" and token.text == "{":
            return self.parse_set_pattern()
        return self.parse_term()

    def parse_set_pattern(self) -> SetPattern:
        self._expect_punct("{")
        patterns = []
        while True:
            token = self._peek()
            if token.kind == "punct" and token.text == "}":
                self._advance()
                return SetPattern(tuple(patterns))
            patterns.append(self.parse_pattern())

    def parse_term(self) -> Term:
        token = self._peek()
        if token.kind == "int":
            self._advance()
            return Constant(int(token.text))
        if token.kind == "string":
            self._advance()
            return Constant(token.text)
        if token.kind == "ident":
            self._advance()
            after = self._peek()
            if after.kind == "punct" and after.text == "(":
                return self._parse_function_args(token.text)
            if token.text[0].isupper() or token.text[0] == "$":
                # "$"-prefixed variables are the *parameters* of
                # parameterized capability views (Section 1).
                return Variable(token.text)
            return Constant(token.text)
        raise TslSyntaxError(f"expected a term, found {token.text!r}",
                             token.line, token.column)

    def _parse_function_args(self, functor: str) -> FunctionTerm:
        self._expect_punct("(")
        args = [self.parse_term()]
        while True:
            token = self._peek()
            if token.kind == "punct" and token.text == ",":
                self._advance()
                args.append(self.parse_term())
                continue
            self._expect_punct(")")
            return FunctionTerm(functor, tuple(args))

    def _expect_eof(self) -> None:
        token = self._peek()
        if token.kind != "eof":
            raise TslSyntaxError(f"unexpected trailing input {token.text!r}",
                                 token.line, token.column)


def parse_query(text: str, name: str | None = None) -> Query:
    """Parse a single TSL rule from text."""
    return _Parser(text).parse_query(name)


def parse_pattern(text: str) -> ObjectPattern:
    """Parse a standalone object pattern (useful in tests)."""
    parser = _Parser(text)
    pattern = parser.parse_pattern()
    parser._expect_eof()
    return pattern


def parse_term(text: str) -> Term:
    """Parse a standalone term (useful in tests)."""
    parser = _Parser(text)
    term = parser.parse_term()
    parser._expect_eof()
    return term


def parse_program(text: str) -> list[Query]:
    """Parse several rules separated by ``;`` -- a union query.

    Compositions of a query with views can be unions of rules (Section 4
    compares *sets* of component queries), so programs are first-class.
    """
    rules = []
    for chunk in text.split(";"):
        if chunk.strip():
            rules.append(parse_query(chunk))
    return rules
