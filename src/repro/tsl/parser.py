"""Recursive-descent parser for TSL text (Section 2 syntax).

Grammar::

    query     := pattern ':-' condition ('AND' condition)*
    condition := pattern ('@' ident)?
    pattern   := '<' term term value '>'
    value     := term | setpattern
    setpattern:= '{' pattern* '}'
    term      := ident [ '(' term (',' term)* ')' ] | int | string

Identifiers starting with an uppercase letter are variables; all other
identifiers, integers, and quoted strings are constants.  An identifier
followed by ``(`` is a function term.  A condition without ``@source``
defaults to source ``db``.

Every produced AST node and term carries the :class:`~repro.span.Span`
of the text it was parsed from (spans are ``compare=False``, so parsed
and hand-built queries still compare equal).  Every
:class:`~repro.errors.TslSyntaxError` reports ``line:column`` and quotes
the offending source line with a caret underline.

Example (query (Q2) of the paper)::

    parse_query('''
        <f(P) female {<f(X) Y Z>}> :-
            <P person {<G gender female>}>@db AND
            <P person {<X Y Z>}>@db
    ''')
"""

from __future__ import annotations

from ..errors import TslSyntaxError
from ..logic.terms import Constant, FunctionTerm, Term, Variable
from .ast import (DEFAULT_SOURCE, Condition, ObjectPattern, PatternValue,
                  Query, SetPattern)
from .lexer import Token, tokenize


class _Parser:
    def __init__(self, text: str, *, source_text: str | None = None,
                 start_line: int = 1, start_column: int = 1) -> None:
        # source_text is the complete document (it differs from text when
        # parsing one rule of a ';'-separated program); error excerpts
        # quote it, and start_line/start_column make positions absolute.
        self._source = text if source_text is None else source_text
        self._tokens = list(tokenize(text, start_line=start_line,
                                     start_column=start_column,
                                     source=self._source))
        self._pos = 0

    # -- token helpers -------------------------------------------------------

    def _peek(self) -> Token:
        return self._tokens[self._pos]

    def _advance(self) -> Token:
        token = self._tokens[self._pos]
        if token.kind != "eof":
            self._pos += 1
        return token

    def _error(self, message: str, token: Token) -> TslSyntaxError:
        return TslSyntaxError(message, token.line, token.column,
                              end_line=token.line,
                              end_column=token.end_column,
                              source=self._source)

    def _expect_punct(self, text: str) -> Token:
        token = self._peek()
        if token.kind != "punct" or token.text != text:
            found = token.text if token.kind != "eof" else "end of input"
            raise self._error(f"expected {text!r}, found {found!r}", token)
        return self._advance()

    # -- grammar ------------------------------------------------------------

    def parse_query(self, name: str | None = None) -> Query:
        head = self.parse_pattern()
        token = self._peek()
        if token.kind != "turnstile":
            raise self._error(f"expected ':-', found {token.text!r}", token)
        self._advance()
        body = [self.parse_condition()]
        while self._peek().kind == "and":
            self._advance()
            body.append(self.parse_condition())
        self._expect_eof()
        span = None
        if head.span is not None:
            span = head.span.to(body[-1].span)
        return Query(head, tuple(body), name=name, span=span)

    def parse_condition(self) -> Condition:
        pattern = self.parse_pattern()
        source = DEFAULT_SOURCE
        span = pattern.span
        token = self._peek()
        if token.kind == "punct" and token.text == "@":
            self._advance()
            ident = self._peek()
            if ident.kind != "ident":
                raise self._error(
                    f"expected source name after '@', found {ident.text!r}",
                    ident)
            source = self._advance().text
            if span is not None:
                span = span.to(ident.span)
        return Condition(pattern, source, span=span)

    def parse_pattern(self) -> ObjectPattern:
        lt = self._expect_punct("<")
        oid = self.parse_term()
        label = self.parse_term()
        value = self.parse_value()
        gt = self._expect_punct(">")
        return ObjectPattern(oid, label, value, span=lt.span.to(gt.span))

    def parse_value(self) -> PatternValue:
        token = self._peek()
        if token.kind == "punct" and token.text == "{":
            return self.parse_set_pattern()
        return self.parse_term()

    def parse_set_pattern(self) -> SetPattern:
        brace = self._expect_punct("{")
        patterns = []
        while True:
            token = self._peek()
            if token.kind == "punct" and token.text == "}":
                self._advance()
                return SetPattern(tuple(patterns),
                                  span=brace.span.to(token.span))
            patterns.append(self.parse_pattern())

    def parse_term(self) -> Term:
        token = self._peek()
        if token.kind == "int":
            self._advance()
            return Constant(int(token.text), span=token.span)
        if token.kind == "string":
            self._advance()
            return Constant(token.text, span=token.span)
        if token.kind == "ident":
            self._advance()
            after = self._peek()
            if after.kind == "punct" and after.text == "(":
                return self._parse_function_args(token)
            if token.text[0].isupper() or token.text[0] == "$":
                # "$"-prefixed variables are the *parameters* of
                # parameterized capability views (Section 1).
                return Variable(token.text, span=token.span)
            return Constant(token.text, span=token.span)
        found = token.text if token.kind != "eof" else "end of input"
        raise self._error(f"expected a term, found {found!r}", token)

    def _parse_function_args(self, functor: Token) -> FunctionTerm:
        self._expect_punct("(")
        args = [self.parse_term()]
        while True:
            token = self._peek()
            if token.kind == "punct" and token.text == ",":
                self._advance()
                args.append(self.parse_term())
                continue
            rparen = self._expect_punct(")")
            return FunctionTerm(functor.text, tuple(args),
                                span=functor.span.to(rparen.span))

    def _expect_eof(self) -> None:
        token = self._peek()
        if token.kind != "eof":
            raise self._error(f"unexpected trailing input {token.text!r}",
                              token)


def parse_query(text: str, name: str | None = None) -> Query:
    """Parse a single TSL rule from text."""
    return _Parser(text).parse_query(name)


def parse_pattern(text: str) -> ObjectPattern:
    """Parse a standalone object pattern (useful in tests)."""
    parser = _Parser(text)
    pattern = parser.parse_pattern()
    parser._expect_eof()
    return pattern


def parse_term(text: str) -> Term:
    """Parse a standalone term (useful in tests)."""
    parser = _Parser(text)
    term = parser.parse_term()
    parser._expect_eof()
    return term


def parse_program(text: str) -> list[Query]:
    """Parse several rules separated by ``;`` -- a union query.

    Compositions of a query with views can be unions of rules (Section 4
    compares *sets* of component queries), so programs are first-class.

    Spans and error positions are absolute within *text*: each chunk is
    parsed with its real starting line/column, so an error in the third
    rule points at the third rule, not at a line number relative to the
    last ``;``.
    """
    rules = []
    line, column = 1, 1
    for chunk in text.split(";"):
        if chunk.strip():
            parser = _Parser(chunk, source_text=text,
                             start_line=line, start_column=column)
            rules.append(parser.parse_query())
        for ch in chunk:
            if ch == "\n":
                line += 1
                column = 1
            else:
                column += 1
        column += 1  # the ';' separator itself
    return rules
