"""Explain TSL evaluation: the satisfying assignments, as a table.

The meaning of a query body is its set of assignments (Section 2); this
module surfaces them for debugging -- which source objects matched, what
each variable bound to, and which head objects each assignment produced.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..logic.subst import Substitution
from ..logic.terms import SetValue, Variable
from ..oem.model import OemDatabase
from .ast import Query
from .evaluator import Sources, body_assignments, evaluate
from .printer import print_query


@dataclass
class Explanation:
    """The assignments behind one evaluation, plus the answer."""

    query: Query
    assignments: list[Substitution]
    answer: OemDatabase

    @property
    def variables(self) -> list[Variable]:
        names: set[Variable] = set()
        for assignment in self.assignments:
            names.update(assignment)
        return sorted(names, key=lambda v: v.name)

    def rows(self) -> list[dict[str, str]]:
        """One row per assignment, variable name -> rendered binding."""
        out = []
        for assignment in self.assignments:
            row = {}
            for variable in self.variables:
                bound = assignment.get(variable)
                if bound is None:
                    row[variable.name] = "-"
                elif isinstance(bound, SetValue):
                    members = ", ".join(sorted(str(m)
                                               for m in bound.members))
                    row[variable.name] = "{" + members + "}"
                else:
                    row[variable.name] = str(bound)
            out.append(row)
        return out

    def render(self) -> str:
        """A fixed-width table of the assignments."""
        lines = [print_query(self.query), ""]
        variables = [v.name for v in self.variables]
        if not variables or not self.assignments:
            lines.append("(no satisfying assignments)")
            return "\n".join(lines)
        rows = self.rows()
        widths = {name: max(len(name),
                            *(len(row[name]) for row in rows))
                  for name in variables}
        header = "  ".join(name.ljust(widths[name]) for name in variables)
        lines.append(header)
        lines.append("  ".join("-" * widths[name] for name in variables))
        for row in rows:
            lines.append("  ".join(row[name].ljust(widths[name])
                                   for name in variables))
        lines.append("")
        lines.append(f"{len(rows)} assignment(s), "
                     f"{len(self.answer.roots)} answer root(s)")
        return "\n".join(lines)


def explain(query: Query, sources: OemDatabase | Sources) -> Explanation:
    """Evaluate *query* and return its assignments alongside the answer."""
    assignments = body_assignments(query, sources)
    answer = evaluate(query, sources)
    return Explanation(query, assignments, answer)
