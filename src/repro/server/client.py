"""Stdlib HTTP client helpers for a live repro server.

``python -m repro top`` and ``python -m repro metrics --url`` share
this module: tiny urllib fetchers, a parser for the Prometheus text
exposition ``/metrics`` emits, a bucket-quantile estimator matching the
server-side :meth:`~repro.obs.metrics.Histogram.quantile`, and the
``top`` dashboard renderer (pure data -> text, so tests can drive it
without a terminal).
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request

__all__ = ["ClientError", "fetch_text", "fetch_json", "parse_prometheus",
           "quantile_from_buckets", "gather_status", "render_dashboard"]


class ClientError(RuntimeError):
    """A fetch from the live server failed (connection or HTTP error)."""


def fetch_text(url: str, timeout: float = 10.0) -> str:
    try:
        with urllib.request.urlopen(url, timeout=timeout) as response:
            return response.read().decode("utf-8")
    except (urllib.error.URLError, OSError, ValueError) as exc:
        raise ClientError(f"fetching {url}: {exc}") from exc


def fetch_json(url: str, timeout: float = 10.0) -> object:
    text = fetch_text(url, timeout=timeout)
    try:
        return json.loads(text)
    except json.JSONDecodeError as exc:
        raise ClientError(f"{url} did not return JSON: {exc}") from exc


def _parse_labels(block: str) -> dict[str, str]:
    """``endpoint="POST /rewrite",le="0.5"`` -> dict (handles escapes)."""
    labels: dict[str, str] = {}
    index = 0
    while index < len(block):
        equals = block.find("=", index)
        if equals < 0:
            break
        name = block[index:equals].strip().lstrip(",").strip()
        index = equals + 1
        if index >= len(block) or block[index] != '"':
            break
        index += 1
        value_chars: list[str] = []
        while index < len(block):
            char = block[index]
            if char == "\\" and index + 1 < len(block):
                escaped = block[index + 1]
                value_chars.append({"n": "\n"}.get(escaped, escaped))
                index += 2
                continue
            if char == '"':
                index += 1
                break
            value_chars.append(char)
            index += 1
        labels[name] = "".join(value_chars)
    return labels


def _parse_value(text: str) -> float:
    if text == "+Inf":
        return float("inf")
    if text == "-Inf":
        return float("-inf")
    return float(text)


def parse_prometheus(text: str) -> dict:
    """Parse the text exposition into counters/gauges/histograms.

    Returns ``{"counters": {...}, "gauges": {...}, "histograms": {...}}``
    where counter/gauge keys are ``name{k="v",...}`` exactly as exposed,
    and each histogram (keyed by its label set minus ``le``) carries
    ``{"buckets": [(bound, cumulative), ...], "sum": s, "count": n}``.
    """
    types: dict[str, str] = {}
    counters: dict[str, float] = {}
    gauges: dict[str, float] = {}
    histograms: dict[str, dict] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split()
            if len(parts) >= 4 and parts[1] == "TYPE":
                types[parts[2]] = parts[3]
            continue
        try:
            series, value_text = line.rsplit(" ", 1)
            value = _parse_value(value_text)
        except ValueError:
            continue
        brace = series.find("{")
        if brace >= 0:
            name = series[:brace]
            labels = _parse_labels(series[brace + 1:series.rfind("}")])
        else:
            name, labels = series, {}
        for suffix in ("_bucket", "_sum", "_count"):
            base = name[:-len(suffix)] if name.endswith(suffix) else None
            if base is not None and types.get(base) == "histogram":
                plain = {k: v for k, v in labels.items() if k != "le"}
                key = base + _labels_suffix(plain)
                entry = histograms.setdefault(
                    key, {"buckets": [], "sum": 0.0, "count": 0})
                if suffix == "_bucket":
                    entry["buckets"].append(
                        (_parse_value(labels.get("le", "+Inf")),
                         int(value)))
                elif suffix == "_sum":
                    entry["sum"] = value
                else:
                    entry["count"] = int(value)
                break
        else:
            key = name + _labels_suffix(labels)
            if types.get(name) == "gauge":
                gauges[key] = value
            else:
                counters[key] = value
    for entry in histograms.values():
        entry["buckets"].sort(key=lambda pair: pair[0])
    return {"counters": counters, "gauges": gauges,
            "histograms": histograms}


def _labels_suffix(labels: dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{k}="{v}"' for k, v in sorted(labels.items()))
    return "{" + inner + "}"


def quantile_from_buckets(buckets: list[tuple[float, int]],
                          q: float) -> float | None:
    """Estimate the *q*-quantile from cumulative (bound, count) pairs.

    Same linear interpolation as
    :meth:`repro.obs.metrics.Histogram.quantile`, minus the min/max
    clamp (a scrape doesn't carry the observed extremes), so it is the
    client-side ``histogram_quantile`` estimate.
    """
    if not buckets or buckets[-1][1] == 0:
        return None
    total = buckets[-1][1]
    rank = q * total
    previous_bound, previous_cumulative = 0.0, 0
    for bound, cumulative in buckets:
        if cumulative >= rank and cumulative > previous_cumulative:
            if bound == float("inf"):
                return previous_bound
            fraction = (rank - previous_cumulative) \
                / (cumulative - previous_cumulative)
            return previous_bound + (bound - previous_bound) * fraction
        if bound != float("inf"):
            previous_bound = bound
        previous_cumulative = cumulative
    return previous_bound


# --------------------------------------------------------------------------
# The `repro top` dashboard
# --------------------------------------------------------------------------

def gather_status(base_url: str, timeout: float = 10.0) -> dict:
    """One poll of a live server: health, ring, caches, metrics."""
    base = base_url.rstrip("/")
    return {
        "base_url": base,
        "healthz": fetch_json(f"{base}/healthz", timeout=timeout),
        "requests": fetch_json(f"{base}/debug/requests", timeout=timeout),
        "cache": fetch_json(f"{base}/debug/cache", timeout=timeout),
        "metrics": parse_prometheus(
            fetch_text(f"{base}/metrics", timeout=timeout)),
    }


def _endpoint_latencies(metrics: dict) -> list[tuple[str, dict]]:
    rows = []
    for key, entry in sorted(metrics["histograms"].items()):
        if not key.startswith("repro_server_seconds{"):
            continue
        labels = _parse_labels(key[key.find("{") + 1:key.rfind("}")])
        endpoint = labels.get("endpoint", "?")
        rows.append((endpoint, entry))
    return rows


def _fmt_ms(seconds: float | None) -> str:
    return "-" if seconds is None else f"{seconds * 1e3:.1f}ms"


def render_dashboard(status: dict) -> str:
    """The ``repro top`` screen for one :func:`gather_status` poll."""
    healthz = status["healthz"]
    metrics = status["metrics"]
    pool = healthz.get("pool", {})
    recorder = status["requests"].get("recorder", {})
    counters = metrics["counters"]
    total_requests = sum(
        value for key, value in counters.items()
        if key.startswith("repro_server_requests_total"))
    shed = counters.get("repro_server_shed_total", 0)
    shed_rate = (shed / (total_requests + shed)) \
        if (total_requests + shed) else 0.0

    lines = [
        f"repro top -- {status['base_url']}  "
        f"{time.strftime('%Y-%m-%dT%H:%M:%S')}",
        f"requests: {int(total_requests)} served, {int(shed)} shed "
        f"({shed_rate:.1%}), in flight {healthz.get('in_flight', 0)}, "
        f"queue {pool.get('pending', 0)}, active {pool.get('active', 0)}",
        f"sessions: {healthz.get('sessions', 0)} live / "
        f"{pool.get('max_sessions', '?')} max  "
        f"(created {pool.get('created', 0)}, reused "
        f"{pool.get('reused', 0)}, evicted {pool.get('evicted', 0)})",
        f"recorder: {recorder.get('size', 0)}/"
        f"{recorder.get('capacity', 0)} records, "
        f"{recorder.get('recorded', 0)} recorded, "
        f"{recorder.get('dropped', 0)} dropped",
        "",
        "latency            p50      p90      p99    count",
    ]
    for endpoint, entry in _endpoint_latencies(metrics):
        quantiles = [quantile_from_buckets(entry["buckets"], q)
                     for q in (0.50, 0.90, 0.99)]
        lines.append(f"  {endpoint:<16} "
                     + " ".join(f"{_fmt_ms(value):>8}"
                                for value in quantiles)
                     + f" {entry['count']:>8}")

    tables = status["cache"].get("tables", {})
    if tables:
        lines.append("")
        lines.append("cache table        size     hits   misses  hit rate")
        for table, stats in sorted(tables.items()):
            rate = stats.get("hit_rate")
            rate_text = "-" if rate is None else f"{rate:.1%}"
            lines.append(f"  {table:<16} {stats['size']:>6} "
                         f"{stats['hits']:>8} {stats['misses']:>8} "
                         f"{rate_text:>9}")

    records = status["requests"].get("requests", [])
    slowest = sorted(records, key=lambda r: r.get("duration_ms", 0.0),
                     reverse=True)[:5]
    if slowest:
        lines.append("")
        lines.append("slowest recent requests")
        for record in slowest:
            lines.append(
                f"  {record.get('request_id', '?'):<18} "
                f"{record.get('endpoint', '?'):<18} "
                f"{record.get('status', '?'):>4} "
                f"{record.get('duration_ms', 0.0):>8.1f}ms "
                f"memo={record.get('memo')} "
                f"stop={record.get('stop_reason')}")
    return "\n".join(lines)
