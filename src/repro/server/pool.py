"""A pool of shared rewrite sessions keyed by canonical view-set hash.

The edgedb architecture this follows keeps a pool of long-lived
compiler workers behind the I/O loop, sharing a normalized-query cache;
here the normalized key is the canonical hash of
:mod:`repro.rewriting.canon` and the long-lived worker state is a
:class:`~repro.rewriting.session.RewriteSession` (prepared views + memo
tables, all thread-safe since the locking work described in that
module).

Two requests naming the *same view set* -- even with views spelled in
different variable names or conjunct orders, since the key is built
from canonical query hashes -- are served by one session, so the
second request hits the memo tables the first one warmed.  The session
map is a bounded LRU: a multi-tenant server that sees many distinct
view sets sheds the coldest.

CPU-bound work (TSL parsing, the exponential search, evaluation) runs
on a ``ThreadPoolExecutor`` owned by the pool; the asyncio front-end
submits through :meth:`SessionPool.submit` and never blocks the event
loop on a rewrite.
"""

from __future__ import annotations

import asyncio
import threading
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from hashlib import blake2b
from typing import Mapping

from ..rewriting import RewriteSession
from ..rewriting.canon import query_key
from ..rewriting.chase import StructuralConstraints
from ..rewriting.session import DEFAULT_MEMO_SIZE
from ..tsl.ast import Query

#: Default number of worker threads (the compiler-pool size).
DEFAULT_WORKERS = 4

#: Default cap on distinct (view set, constraints) sessions kept warm.
DEFAULT_MAX_SESSIONS = 32


def config_key(views: Mapping[str, Query],
               dtd_text: str | None) -> str:
    """The canonical hash of a (view set, constraints) configuration.

    Built from each view's *canonical* query hash, so alpha-variant or
    conjunct-reordered spellings of the same configuration share a
    session (and therefore its memo tables).
    """
    digest = blake2b(digest_size=16)
    for name in sorted(views):
        digest.update(name.encode("utf-8"))
        digest.update(b"\x00")
        digest.update(query_key(views[name]).encode("ascii"))
        digest.update(b"\x01")
    if dtd_text is not None:
        digest.update(dtd_text.encode("utf-8"))
    return digest.hexdigest()


class SessionPool:
    """Shared sessions + the worker threads that drive them.

    With a :class:`~repro.storage.registry.SessionRegistry` attached,
    sessions become durable: a newly created session is warmed from its
    persisted result memo (same config key), and a session is written
    back when evicted from the LRU and on :meth:`save_sessions` --
    so a restarted server answers a previously rewritten query as a
    memo hit.
    """

    def __init__(self, *, workers: int = DEFAULT_WORKERS,
                 max_sessions: int = DEFAULT_MAX_SESSIONS,
                 memo_size: int = DEFAULT_MEMO_SIZE,
                 metrics=None, registry=None,
                 store_version: int | None = None) -> None:
        self.workers = max(1, workers)
        self.max_sessions = max(1, max_sessions)
        self.memo_size = memo_size
        self.metrics = metrics
        self.registry = registry
        self.store_version = store_version
        self.created = 0
        self.reused = 0
        self.evicted = 0
        self.loaded_entries = 0
        self._sessions: "OrderedDict[str, RewriteSession]" = OrderedDict()
        self._lock = threading.Lock()
        self._pending = 0   # submitted, waiting for a worker
        self._active = 0    # executing on a worker right now
        self._executor = ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="repro-serve")

    # -- session lifecycle ---------------------------------------------------

    def session_for(self, views: Mapping[str, Query],
                    constraints: StructuralConstraints | None,
                    key: str) -> RewriteSession:
        """The shared session for configuration *key* (LRU, created once).

        Callable from any worker thread.  The session is created under
        the pool lock (cheap -- views are chased lazily on first use),
        and the coldest session is dropped beyond ``max_sessions``
        (persisted first when a registry is attached).
        """
        with self._lock:
            session = self._sessions.get(key)
            if session is not None:
                self._sessions.move_to_end(key)
                self.reused += 1
                if self.metrics is not None:
                    self.metrics.increment("server.sessions.reused")
                return session
            session = RewriteSession(views, constraints,
                                     memo_size=self.memo_size,
                                     metrics=self.metrics)
            if self.registry is not None:
                loaded = self.registry.load_into(key, session,
                                                 self.store_version)
                self.loaded_entries += loaded["entries"]
                if self.metrics is not None and loaded["entries"]:
                    self.metrics.increment("server.sessions.memo_loaded",
                                           loaded["entries"])
            self._sessions[key] = session
            self.created += 1
            if self.metrics is not None:
                self.metrics.increment("server.sessions.created")
            while len(self._sessions) > self.max_sessions:
                cold_key, cold = self._sessions.popitem(last=False)
                if self.registry is not None:
                    self.registry.save(cold_key, cold, self.store_version
                                       if self.store_version is not None
                                       else 0)
                self.evicted += 1
                if self.metrics is not None:
                    self.metrics.increment("server.sessions.evicted")
            return session

    def save_sessions(self) -> dict:
        """Persist every live session's result memo (no-op without a
        registry).  Returns ``{"sessions": n, "entries": n}``."""
        stats = {"sessions": 0, "entries": 0}
        if self.registry is None:
            return stats
        with self._lock:
            items = list(self._sessions.items())
        for key, session in items:
            saved = self.registry.save(key, session, self.store_version
                                       if self.store_version is not None
                                       else 0)
            stats["sessions"] += 1
            stats["entries"] += saved["entries"]
        return stats

    def stats(self) -> dict:
        """Occupancy and lifecycle counters (feeds ``GET /healthz``)."""
        with self._lock:
            return {"sessions": len(self._sessions),
                    "max_sessions": self.max_sessions,
                    "workers": self.workers,
                    "created": self.created,
                    "reused": self.reused,
                    "evicted": self.evicted,
                    "memo_entries_loaded": self.loaded_entries,
                    "pending": self._pending,
                    "active": self._active,
                    "persistent": self.registry is not None}

    def queue_stats(self) -> dict:
        """Point-in-time executor load (feeds the runtime gauges)."""
        with self._lock:
            return {"pending": self._pending, "active": self._active}

    def debug_info(self) -> list[dict]:
        """Per-session memo-table statistics, coldest first.

        Session stats are gathered *outside* the pool lock (the
        documented locking order puts memo-table locks below it).
        """
        with self._lock:
            items = list(self._sessions.items())
        return [{"config_key": key, "tables": session.stats()}
                for key, session in items]

    def __len__(self) -> int:
        with self._lock:
            return len(self._sessions)

    # -- work dispatch -------------------------------------------------------

    def submit(self, fn, *args):
        """Run *fn* on a pool worker; awaitable from the event loop.

        Tracks queue depth (submitted but not yet started) and active
        worker count for the ``server.queue.depth`` /
        ``server.pool.active`` gauges.
        """
        loop = asyncio.get_running_loop()
        with self._lock:
            self._pending += 1

        def run():
            with self._lock:
                self._pending -= 1
                self._active += 1
            try:
                return fn(*args)
            finally:
                with self._lock:
                    self._active -= 1

        return loop.run_in_executor(self._executor, run)

    def shutdown(self) -> None:
        self._executor.shutdown(wait=True, cancel_futures=True)
