"""Rewrite-as-a-service: the concurrent HTTP front-end (``repro serve``).

The Section 1 mediator, served over the wire: an asyncio I/O loop
(:mod:`repro.server.app`) in front of a pool of worker threads sharing
canonically-keyed rewrite sessions (:mod:`repro.server.pool`), with the
request/response schemas and the shared-renderer error model in
:mod:`repro.server.schemas` and an in-process harness for tests and
load generation in :mod:`repro.server.testing`.  See
``docs/SERVING.md``.
"""

from .app import (REASONS, ReproServer, RequestContext, ServerConfig,
                  normalize_endpoint)
from .pool import (DEFAULT_MAX_SESSIONS, DEFAULT_WORKERS, SessionPool,
                   config_key)
from .schemas import (SERVE_SCHEMA_VERSION, BadRequestError,
                      EvaluateRequest, RewriteRequest)
from .testing import ServerThread, running_server

__all__ = [
    "ReproServer", "ServerConfig", "RequestContext", "REASONS",
    "normalize_endpoint",
    "SessionPool", "config_key", "DEFAULT_WORKERS",
    "DEFAULT_MAX_SESSIONS",
    "RewriteRequest", "EvaluateRequest", "BadRequestError",
    "SERVE_SCHEMA_VERSION",
    "ServerThread", "running_server",
]
