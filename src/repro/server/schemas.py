"""Wire schemas for the rewrite service: request parsing + error model.

Every POST body is a JSON object; responses are JSON stamped with
``SERVE_SCHEMA_VERSION``.  Parsing is two-layered:

* **shape validation** -- field presence and JSON types.  Violations
  raise :class:`BadRequestError` with a plain message (HTTP 400).
* **TSL parsing** -- queries/views/DTD text go through the same
  parse + validate pipeline as the CLI, and syntax/validation failures
  are rendered through the shared :mod:`repro.analysis` diagnostic
  renderer (caret excerpt in ``message``, machine-readable
  ``diagnostics``), exactly the ``repro lint``/``rewrite`` error
  surface, over HTTP 400.

The request dataclasses carry *parsed* payloads (ASTs, constraint
objects, decoded databases); the HTTP layer never re-parses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from ..analysis import Diagnostic, Severity, render_text
from ..errors import ReproError, TslError
from ..oem.model import OemDatabase
from ..oem.serialize import database_from_json
from ..rewriting import StructuralConstraints, parse_dtd
from ..tsl import parse_query, validate
from ..tsl.ast import Query

#: Bumped when a response payload shape changes incompatibly.
SERVE_SCHEMA_VERSION = 1

#: Diagnostic code under which bare syntax errors are reported (shared
#: with the CLI's lint report).
SYNTAX_CODE = "TSL000"


class BadRequestError(ReproError):
    """A request failed validation; maps to HTTP 400.

    ``diagnostics`` carries the structured findings when the failure
    came from TSL parsing/validation (empty for shape errors).
    """

    def __init__(self, message: str,
                 diagnostics: list[dict] | None = None) -> None:
        super().__init__(message)
        self.message = message
        self.diagnostics = diagnostics or []

    def to_json(self) -> dict:
        return {"error": {"message": self.message,
                          "diagnostics": self.diagnostics}}


def _tsl_error(exc: TslError, text: str, file: str) -> BadRequestError:
    """The 400 payload for a TSL parse/validation failure in *file*."""
    code = getattr(exc, "code", None) or SYNTAX_CODE
    message = getattr(exc, "message", None) or str(exc)
    diag = Diagnostic(code, Severity.ERROR, message,
                      span=getattr(exc, "span", None), file=file)
    return BadRequestError(render_text(diag, text=text),
                           diagnostics=[diag.to_dict()])


def _require_object(data: Any, what: str) -> Mapping[str, Any]:
    if not isinstance(data, Mapping):
        raise BadRequestError(f"{what} must be a JSON object, "
                              f"got {type(data).__name__}")
    return data


def _get_str(data: Mapping[str, Any], key: str, *,
             required: bool = True) -> str | None:
    value = data.get(key)
    if value is None:
        if required:
            raise BadRequestError(f"missing required field {key!r}")
        return None
    if not isinstance(value, str):
        raise BadRequestError(f"field {key!r} must be a string")
    return value


def _get_bool(data: Mapping[str, Any], key: str,
              default: bool = False) -> bool:
    value = data.get(key, default)
    if not isinstance(value, bool):
        raise BadRequestError(f"field {key!r} must be a boolean")
    return value


def _get_number(data: Mapping[str, Any], key: str,
                integral: bool = False):
    value = data.get(key)
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise BadRequestError(f"field {key!r} must be a number")
    if integral and not isinstance(value, int):
        raise BadRequestError(f"field {key!r} must be an integer")
    if value <= 0:
        raise BadRequestError(f"field {key!r} must be positive")
    return value


def parse_query_text(text: str, *, file: str = "query",
                     name: str | None = None,
                     validated: bool = True) -> Query:
    """Parse (and for the target query, validate) one TSL text.

    Failures map to HTTP 400 through the shared diagnostic renderer.
    Views are parsed but not validated, mirroring the CLI's
    ``--view NAME=FILE`` handling.
    """
    try:
        query = parse_query(text, name=name)
        return validate(query) if validated else query
    except TslError as exc:
        raise _tsl_error(exc, text, file) from exc


def _parse_views(data: Mapping[str, Any]) -> dict[str, Query]:
    raw = data.get("views")
    if raw is None:
        raise BadRequestError("missing required field 'views'")
    views_obj = _require_object(raw, "field 'views'")
    views: dict[str, Query] = {}
    for name, text in views_obj.items():
        if not isinstance(text, str):
            raise BadRequestError(
                f"view {name!r} must be TSL text (a string)")
        views[name] = parse_query_text(text, file=f"view:{name}",
                                       name=name, validated=False)
    # An empty view set is legal (the rewrite just finds nothing), so
    # corpus cases replay over the wire exactly as in-process.
    return views


def _parse_dtd(data: Mapping[str, Any]) -> tuple[str | None,
                                                 StructuralConstraints | None]:
    text = _get_str(data, "dtd", required=False)
    if text is None:
        return None, None
    try:
        return text, parse_dtd(text)
    except ReproError as exc:
        raise BadRequestError(f"field 'dtd' is not a valid DTD: {exc}") \
            from exc


@dataclass
class RewriteRequest:
    """Parsed ``POST /rewrite`` (and ``POST /explain``) body."""

    query: Query
    views: dict[str, Query]
    dtd_text: str | None
    constraints: StructuralConstraints | None
    total_only: bool = False
    max_candidates: int | None = None
    budget_ms: float | None = None
    max_steps: int | None = None
    explain: bool = False
    #: The flags tuple the session memo keys results under -- must
    #: mirror ``rewrite()``'s (heuristic, total_only, prune_subsumed,
    #: first_only, max_candidates) order.
    flags: tuple = field(init=False)

    def __post_init__(self) -> None:
        self.flags = (True, self.total_only, True, False,
                      self.max_candidates)

    @classmethod
    def from_json(cls, data: Any, *,
                  explain: bool = False) -> "RewriteRequest":
        body = _require_object(data, "request body")
        query = parse_query_text(_get_str(body, "query"))
        views = _parse_views(body)
        dtd_text, constraints = _parse_dtd(body)
        return cls(
            query=query,
            views=views,
            dtd_text=dtd_text,
            constraints=constraints,
            total_only=_get_bool(body, "total_only"),
            max_candidates=_get_number(body, "max_candidates",
                                       integral=True),
            budget_ms=_get_number(body, "budget_ms"),
            max_steps=_get_number(body, "max_steps", integral=True),
            explain=explain or _get_bool(body, "explain"),
        )


@dataclass
class EvaluateRequest:
    """Parsed ``POST /evaluate`` body: one query over an inline database."""

    query: Query
    database: OemDatabase
    budget_ms: float | None = None

    @classmethod
    def from_json(cls, data: Any) -> "EvaluateRequest":
        body = _require_object(data, "request body")
        query = parse_query_text(_get_str(body, "query"))
        raw_db = body.get("database")
        if raw_db is None:
            raise BadRequestError("missing required field 'database'")
        try:
            database = database_from_json(
                dict(_require_object(raw_db, "field 'database'")))
        except (ReproError, KeyError, TypeError, ValueError) as exc:
            raise BadRequestError(
                f"field 'database' is not a valid OEM encoding: "
                f"{exc}") from exc
        return cls(query=query, database=database,
                   budget_ms=_get_number(body, "budget_ms"))
