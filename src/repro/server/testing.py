"""Test/benchmark harness: run a :class:`ReproServer` in-process.

The server is asyncio; tests and the ``bench_serve`` load generator are
synchronous and multi-threaded.  :class:`ServerThread` bridges the two:
it runs the event loop on a daemon thread, exposes the bound (ephemeral)
port, and gives callers a tiny synchronous JSON client over
``http.client`` so concurrent load is just "many threads, one
:meth:`ServerThread.request` each".
"""

from __future__ import annotations

import asyncio
import http.client
import json
import threading
from contextlib import contextmanager

from .app import ReproServer, ServerConfig

__all__ = ["ServerThread", "running_server"]


class ServerThread:
    """A live server on an ephemeral port, driven from a daemon thread."""

    def __init__(self, config: ServerConfig | None = None, *,
                 metrics=None) -> None:
        config = config or ServerConfig(port=0)
        self.server = ReproServer(config, metrics=metrics)
        self._loop: asyncio.AbstractEventLoop | None = None
        self._ready = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True,
                                        name="repro-serve-loop")

    # -- lifecycle -----------------------------------------------------------

    def _run(self) -> None:
        self._loop = asyncio.new_event_loop()
        asyncio.set_event_loop(self._loop)
        self._loop.run_until_complete(self.server.start())
        self._ready.set()
        try:
            self._loop.run_forever()
        finally:
            # Cancel lingering keep-alive connection handlers before
            # closing, so shutdown is silent.
            pending = [task for task in asyncio.all_tasks(self._loop)
                       if not task.done()]
            for task in pending:
                task.cancel()
            if pending:
                self._loop.run_until_complete(
                    asyncio.gather(*pending, return_exceptions=True))
            self._loop.run_until_complete(self.server.stop())
            self._loop.close()

    def start(self) -> "ServerThread":
        self._thread.start()
        if not self._ready.wait(timeout=10):
            raise RuntimeError("server failed to start within 10s")
        return self

    def stop(self) -> None:
        if self._loop is not None:
            self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=10)

    @property
    def port(self) -> int:
        return self.server.port

    @property
    def registry(self):
        return self.server.registry

    # -- synchronous client --------------------------------------------------

    def request(self, method: str, path: str, payload: dict | None = None,
                *, headers: dict | None = None,
                timeout: float = 30.0) -> tuple[int, object]:
        """One HTTP round trip; returns (status, decoded JSON or text)."""
        status, _response_headers, decoded = self.request_full(
            method, path, payload, headers=headers, timeout=timeout)
        return status, decoded

    def request_full(self, method: str, path: str,
                     payload: dict | None = None, *,
                     headers: dict | None = None,
                     timeout: float = 30.0) -> tuple[int, dict, object]:
        """Like :meth:`request`, also returning the response headers.

        Header names are lower-cased in the returned dict, so tests can
        read ``headers["x-repro-request-id"]`` regardless of casing.
        """
        conn = http.client.HTTPConnection("127.0.0.1", self.port,
                                          timeout=timeout)
        try:
            body = None
            request_headers = dict(headers or {})
            if payload is not None:
                body = json.dumps(payload).encode("utf-8")
                request_headers.setdefault("Content-Type",
                                           "application/json")
            conn.request(method, path, body=body, headers=request_headers)
            response = conn.getresponse()
            raw = response.read()
            response_headers = {name.lower(): value
                                for name, value in response.getheaders()}
            content_type = response_headers.get("content-type", "")
            if content_type.startswith("application/json"):
                decoded: object = json.loads(raw.decode("utf-8"))
            else:
                decoded = raw.decode("utf-8")
            return response.status, response_headers, decoded
        finally:
            conn.close()

    def post(self, path: str, payload: dict, **kwargs):
        return self.request("POST", path, payload, **kwargs)

    def get(self, path: str, **kwargs):
        return self.request("GET", path, None, **kwargs)


@contextmanager
def running_server(config: ServerConfig | None = None, *, metrics=None):
    """``with running_server() as srv: srv.post("/rewrite", ...)``."""
    thread = ServerThread(config, metrics=metrics).start()
    try:
        yield thread
    finally:
        thread.stop()
