"""Rewrite-as-a-service: an asyncio HTTP/JSON front-end.

The paper's Section 1 deployment is a *mediator serving clients*; this
module is that front-end: a single-threaded asyncio I/O loop in front
of a :class:`~repro.server.pool.SessionPool` of worker threads driving
shared, canonically-keyed :class:`~repro.rewriting.RewriteSession`\\ s.

Endpoints (all JSON; see ``docs/SERVING.md`` for the full schemas):

* ``POST /rewrite``   -- find equivalent rewritings; ``"explain": true``
  attaches the EXPLAIN decision log, byte-identical to the in-process
  ``rewrite(..., explain=...)`` output (memo replays included).
* ``POST /explain``   -- the decision log alone (``repro explain``).
* ``POST /evaluate``  -- evaluate a query over an inline OEM database.
* ``GET /metrics``    -- Prometheus text exposition of the server
  registry (request counters, shed counter, ``phase.seconds``, and the
  runtime gauges refreshed at scrape time).
* ``GET /healthz``    -- liveness + pool occupancy.
* ``GET /debug/*``    -- flight-recorder introspection (see below).

**Flight recorder and trace propagation.**  Every request is assigned
(or accepts, via ``X-Repro-Request-Id`` / ``traceparent``) a request id
and trace context, carried through the worker threads into a
per-request :class:`~repro.obs.Tracer` so queued/rewrite/chase spans
stitch into one tree, and echoed in the response headers and the JSONL
access log.  Completed requests land in a bounded
:class:`~repro.obs.FlightRecorder` ring; slow or failed requests (and
explain requests) additionally retain their full span tree and EXPLAIN
JSON.  ``GET /debug/requests[/<id>]``, ``/debug/slow``,
``/debug/cache``, ``/debug/sessions``, and ``/debug/store`` expose the
ring, memo-table hit rates, per-session state, and the persistent
store; ``python -m repro top`` renders them as a live dashboard.

**Admission control and load shedding.**  POST requests are admitted up
to ``max_pending`` in flight (queued + executing); beyond that the
server answers ``429`` immediately and counts ``server.shed``.  Each
admitted request gets a :class:`~repro.obs.Budget` whose deadline
starts *at admission*, so time spent queued behind other requests
counts against it -- a request that waits out its deadline is answered
``408`` by the first cooperative-cancellation check without consuming a
worker.  A search truncated by its deadline or step budget also maps to
``408``, with the partial (sound but possibly incomplete) result in the
body -- the *partial-result contract*: a 408 body is trustworthy as far
as it goes.

The HTTP implementation is deliberately minimal (stdlib-only
HTTP/1.1 with keep-alive and Content-Length framing); the interesting
machinery is the pool behind it.
"""

from __future__ import annotations

import asyncio
import json
import os
import re
import sys
import time
from dataclasses import dataclass, field

from ..errors import (BudgetExceededError, ChaseContradictionError,
                      ReproError, RewritingError)
from ..obs import (NULL_TRACER, Budget, FlightRecorder, MetricsRegistry,
                   Tracer, render_prometheus)
from ..obs.recorder import (DEFAULT_CAPACITY, DEFAULT_SLOW_MS,
                            RECORDER_SCHEMA_VERSION, RequestRecord,
                            aggregate_phases)
from ..obs.recorder import now as _wall_clock
from ..oem.serialize import database_to_json
from ..rewriting import Explanation
from ..rewriting.canon import query_key
from ..tsl import print_query
from .pool import (DEFAULT_MAX_SESSIONS, DEFAULT_WORKERS, SessionPool,
                   config_key)
from .schemas import (SERVE_SCHEMA_VERSION, BadRequestError,
                      EvaluateRequest, RewriteRequest)

__all__ = ["ServerConfig", "ReproServer", "RequestContext", "REASONS",
           "normalize_endpoint"]

REASONS = {
    200: "OK", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 408: "Request Timeout",
    413: "Payload Too Large", 422: "Unprocessable Entity",
    429: "Too Many Requests", 500: "Internal Server Error",
}

#: Budget stop reasons that map to the 408 partial-result contract.
_BUDGET_REASONS = ("deadline", "steps", "budget")

#: RewriteStats fields summarized into flight-recorder records.
_RECORD_COUNTERS = ("mappings", "views_pruned_signature", "index_hits",
                    "index_skips", "candidates_enumerated",
                    "candidates_tested", "rewritings")

#: The fixed endpoint label set -- everything else is folded into
#: ``<other>`` so a 404 scan cannot mint one counter per probed URL.
_KNOWN_ENDPOINTS = frozenset({
    "/healthz", "/metrics", "/rewrite", "/explain", "/evaluate",
    "/debug/requests", "/debug/slow", "/debug/cache",
    "/debug/sessions", "/debug/store"})

_REQUEST_ID_RE = re.compile(r"[A-Za-z0-9._-]{1,128}")
_HEX_RE = re.compile(r"[0-9a-f]+")


def normalize_endpoint(path: str) -> str:
    """Collapse *path* onto the bounded endpoint label set.

    Known routes keep their own label, ``/debug/requests/<id>`` becomes
    ``/debug/requests/:id``, and everything else -- including every URL
    a scanner probes -- is ``<other>``, keeping metric label
    cardinality bounded.
    """
    if path in _KNOWN_ENDPOINTS:
        return path
    if path.startswith("/debug/requests/"):
        return "/debug/requests/:id"
    return "<other>"


@dataclass
class RequestContext:
    """Per-request identity and provenance, threaded loop -> worker.

    Carries the (assigned or client-supplied) request id, the
    ``traceparent`` trace id, and the per-request tracer whose span
    tree stitches queued -> rewrite -> chase phases together.  Workers
    fill in the provenance fields (config/query keys, memo disposition,
    truncation) that the flight recorder and access log consume.

    The tracer is single-threaded by design; the event loop and the
    worker touch it strictly sequentially (admit -> execute -> finish),
    never concurrently.
    """

    request_id: str
    trace_id: str
    span_id: str
    tracer: object
    root_span: object
    explain_requested: bool = False
    config_key: str | None = None
    query_key: str | None = None
    memo: str | None = None
    truncated: bool = False
    stop_reason: str | None = None
    counters: dict = field(default_factory=dict)
    explanation: Explanation | None = None

    def traceparent(self) -> str:
        return f"00-{self.trace_id}-{self.span_id}-01"


@dataclass
class ServerConfig:
    """Tunables of one server instance."""

    host: str = "127.0.0.1"
    port: int = 8080              # 0 picks an ephemeral port
    workers: int = DEFAULT_WORKERS
    max_pending: int = 64         # admitted in-flight cap; beyond -> 429
    max_sessions: int = DEFAULT_MAX_SESSIONS
    memo_size: int | None = None  # None -> session default
    default_budget_ms: float | None = None
    default_max_steps: int | None = None
    max_body_bytes: int = 16 * 1024 * 1024
    cache_dir: str | None = None  # persistent session memos (repro db init)
    recorder: bool = True         # always-on flight recorder
    recorder_capacity: int = DEFAULT_CAPACITY
    slow_ms: float = DEFAULT_SLOW_MS   # tail-capture latency threshold
    capture_explain: bool = True  # retain EXPLAIN for tail-captured requests
    access_log: str | None = None  # JSONL access log path ("-" -> stderr)


def _json_bytes(payload: dict) -> bytes:
    return (json.dumps(payload, indent=2) + "\n").encode("utf-8")


class ReproServer:
    """One serving instance: asyncio front-end + session pool."""

    def __init__(self, config: ServerConfig | None = None, *,
                 metrics: MetricsRegistry | None = None) -> None:
        self.config = config or ServerConfig()
        self.registry = metrics if metrics is not None else MetricsRegistry()
        pool_kwargs = {"workers": self.config.workers,
                       "max_sessions": self.config.max_sessions,
                       "metrics": self.registry}
        if self.config.memo_size is not None:
            pool_kwargs["memo_size"] = self.config.memo_size
        self.layout = None
        if self.config.cache_dir is not None:
            from ..storage import SessionRegistry, StorageLayout
            from ..storage.durable import current_store_version
            self.layout = StorageLayout(self.config.cache_dir)
            if not self.layout.exists():
                self.layout.create("db", cache_shards=8)
            pool_kwargs["registry"] = SessionRegistry(self.layout)
            pool_kwargs["store_version"] = \
                current_store_version(self.layout)
        self.pool = SessionPool(**pool_kwargs)
        self.recorder = FlightRecorder(
            capacity=self.config.recorder_capacity,
            slow_ms=self.config.slow_ms,
            enabled=self.config.recorder)
        self._access_log = None
        self._in_flight = 0
        self._server: asyncio.AbstractServer | None = None
        self.port: int | None = None

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        if self.config.access_log and self._access_log is None:
            if self.config.access_log == "-":
                self._access_log = sys.stderr
            else:
                self._access_log = open(self.config.access_log, "a",
                                        encoding="utf-8")
        self._server = await asyncio.start_server(
            self._handle_client, self.config.host, self.config.port)
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        self.pool.save_sessions()   # durable memos survive the restart
        self.pool.shutdown()
        if self._access_log is not None and self._access_log is not sys.stderr:
            self._access_log.close()
        self._access_log = None

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        async with self._server:
            await self._server.serve_forever()

    # -- HTTP plumbing -------------------------------------------------------

    async def _handle_client(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                request = await self._read_request(reader)
                if request is None:
                    break
                method, path, headers, body = request
                ctx = self._request_context(headers)
                started = time.perf_counter()
                try:
                    status, payload, content_type = await self._dispatch(
                        method, path, body, ctx)
                except Exception as exc:  # last-resort 500
                    status = 500
                    payload = _json_bytes(
                        {"error": {"message": f"internal error: {exc}"}})
                    content_type = "application/json"
                elapsed = time.perf_counter() - started
                self._observe(method, path, status, elapsed)
                self._finish_request(ctx, method, path, status, elapsed)
                keep_alive = headers.get("connection", "").lower() \
                    != "close"
                await self._write_response(
                    writer, status, payload, content_type, keep_alive,
                    extra_headers=(
                        ("X-Repro-Request-Id", ctx.request_id),
                        ("Traceparent", ctx.traceparent())))
                if not keep_alive:
                    break
        except (asyncio.IncompleteReadError, ConnectionError):
            pass
        except asyncio.CancelledError:
            pass  # server shutdown cancelled this connection
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except ConnectionError:
                pass

    async def _read_request(self, reader: asyncio.StreamReader):
        """One HTTP/1.1 request, or None at end of stream."""
        try:
            request_line = await reader.readline()
        except (ConnectionError, asyncio.LimitOverrunError):
            return None
        if not request_line.strip():
            return None
        try:
            method, path, _version = \
                request_line.decode("latin-1").split(None, 2)
        except ValueError:
            return None
        headers: dict[str, str] = {}
        while True:
            line = await reader.readline()
            if not line.strip():
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        if length > self.config.max_body_bytes:
            return method, path, {"connection": "close"}, b"\x00toolarge"
        body = await reader.readexactly(length) if length else b""
        return method, path.split("?", 1)[0], headers, body

    async def _write_response(self, writer: asyncio.StreamWriter,
                              status: int, payload: bytes,
                              content_type: str,
                              keep_alive: bool,
                              extra_headers: tuple = ()) -> None:
        reason = REASONS.get(status, "Unknown")
        connection = "keep-alive" if keep_alive else "close"
        extras = "".join(f"{name}: {value}\r\n"
                         for name, value in extra_headers)
        head = (f"HTTP/1.1 {status} {reason}\r\n"
                f"Content-Type: {content_type}\r\n"
                f"Content-Length: {len(payload)}\r\n"
                f"{extras}"
                f"Connection: {connection}\r\n\r\n")
        writer.write(head.encode("latin-1") + payload)
        await writer.drain()

    def _observe(self, method: str, path: str, status: int,
                 seconds: float) -> None:
        endpoint = f"{method} {normalize_endpoint(path)}"
        labels = {"endpoint": endpoint, "status": str(status)}
        self.registry.increment("server.requests", labels=labels)
        self.registry.observe("server.seconds", seconds,
                              labels={"endpoint": endpoint})

    # -- request identity + flight recording ---------------------------------

    def _request_context(self, headers: dict) -> RequestContext:
        """Assign/accept the request id and trace context.

        ``X-Repro-Request-Id`` is taken verbatim when well-formed (so a
        caller can correlate its own logs), else generated.  A
        ``traceparent`` header contributes its trace id; the span id is
        always ours (we are a new span in the caller's trace).
        """
        supplied = (headers.get("x-repro-request-id") or "").strip()
        if _REQUEST_ID_RE.fullmatch(supplied):
            request_id = supplied
        else:
            request_id = os.urandom(8).hex()
        trace_id = None
        parts = (headers.get("traceparent") or "").strip().split("-")
        if len(parts) == 4 and len(parts[1]) == 32 \
                and _HEX_RE.fullmatch(parts[1]) and parts[1] != "0" * 32:
            trace_id = parts[1]
        if trace_id is None:
            trace_id = os.urandom(16).hex()
        span_id = os.urandom(8).hex()
        if self.recorder.enabled:
            tracer = Tracer()
            root = tracer.span("request", request_id=request_id,
                               trace_id=trace_id)
        else:
            tracer = NULL_TRACER
            root = tracer.span("request")
        return RequestContext(request_id=request_id, trace_id=trace_id,
                              span_id=span_id, tracer=tracer,
                              root_span=root)

    def _finish_request(self, ctx: RequestContext, method: str,
                        path: str, status: int, seconds: float) -> None:
        """Close the request span, record it, and write the access log."""
        ctx.root_span.set("status", status)
        ctx.root_span.__exit__(None, None, None)
        if self.recorder.enabled:
            slow = self.recorder.is_slow(seconds)
            error = status >= 400
            record = RequestRecord(
                request_id=ctx.request_id, trace_id=ctx.trace_id,
                method=method, path=path,
                endpoint=f"{method} {normalize_endpoint(path)}",
                status=status, ts=_wall_clock(), seconds=seconds,
                config_key=ctx.config_key, query_key=ctx.query_key,
                memo=ctx.memo, truncated=ctx.truncated,
                stop_reason=ctx.stop_reason,
                phases=aggregate_phases(ctx.tracer.spans),
                counters=dict(ctx.counters), slow=slow, error=error)
            if slow or error or ctx.explain_requested:
                # Tail-based capture: retain the full span tree (and the
                # EXPLAIN document when one was recorded) only where the
                # detail pays off.
                record.trace = [span.to_json()
                                for span in ctx.tracer.spans]
                if ctx.explanation is not None:
                    record.explain = ctx.explanation.to_json()
            self.recorder.record(record)
        self._log_access(ctx, method, path, status, seconds)

    def _log_access(self, ctx: RequestContext, method: str, path: str,
                    status: int, seconds: float) -> None:
        if self._access_log is None:
            return
        entry = {"ts": round(_wall_clock(), 6),
                 "request_id": ctx.request_id,
                 "trace_id": ctx.trace_id,
                 "method": method, "path": path, "status": status,
                 "duration_ms": round(seconds * 1e3, 3),
                 "memo": ctx.memo, "stop_reason": ctx.stop_reason}
        try:
            self._access_log.write(json.dumps(entry, sort_keys=True)
                                   + "\n")
            self._access_log.flush()
        except OSError:
            pass  # a full disk must not take the server down

    # -- routing + admission control -----------------------------------------

    async def _dispatch(self, method: str, path: str, body: bytes,
                        ctx: RequestContext) -> tuple[int, bytes, str]:
        if body == b"\x00toolarge":
            return 413, _json_bytes(
                {"error": {"message": "request body too large"}}), \
                "application/json"
        if path == "/healthz":
            if method != "GET":
                return self._method_not_allowed()
            health = {"status": "ok", "sessions": len(self.pool),
                      "in_flight": self._in_flight,
                      "pool": self.pool.stats(),
                      "recorder": self.recorder.stats()}
            store = self._store_status()
            if store is not None:
                health["store"] = store
            return 200, _json_bytes(health), "application/json"
        if path == "/metrics":
            if method != "GET":
                return self._method_not_allowed()
            self._refresh_gauges()
            text = render_prometheus(self.registry)
            return 200, text.encode("utf-8"), \
                "text/plain; version=0.0.4; charset=utf-8"
        if path.startswith("/debug/"):
            if method != "GET":
                return self._method_not_allowed()
            return self._debug_endpoint(path)
        if path in ("/rewrite", "/explain", "/evaluate"):
            if method != "POST":
                return self._method_not_allowed()
            return await self._admit(path, body, ctx)
        return 404, _json_bytes(
            {"error": {"message": f"no such endpoint: {path}"}}), \
            "application/json"

    # -- debug introspection -------------------------------------------------

    def _debug_endpoint(self, path: str) -> tuple[int, bytes, str]:
        """The ``/debug`` family: schema-versioned recorder + state JSON."""
        payload: dict = {"schema_version": RECORDER_SCHEMA_VERSION}
        if path == "/debug/requests":
            payload["recorder"] = self.recorder.stats()
            payload["requests"] = [r.to_json()
                                   for r in self.recorder.snapshot()]
        elif path.startswith("/debug/requests/"):
            request_id = path[len("/debug/requests/"):]
            record = self.recorder.get(request_id)
            if record is None:
                return 404, _json_bytes(
                    {"error": {"message":
                               f"no such request: {request_id}"}}), \
                    "application/json"
            payload["request"] = record.to_json(detail=True)
        elif path == "/debug/slow":
            payload["slow_ms"] = self.recorder.slow_ms
            payload["requests"] = [r.to_json(detail=True)
                                   for r in self.recorder.slow_requests()]
        elif path == "/debug/cache":
            payload["tables"] = self._cache_status()
        elif path == "/debug/sessions":
            payload["pool"] = self.pool.stats()
            payload["sessions"] = self.pool.debug_info()
        elif path == "/debug/store":
            store = self._store_status()
            payload["persistent"] = store is not None
            payload["store"] = store
        else:
            return 404, _json_bytes(
                {"error": {"message": f"no such endpoint: {path}"}}), \
                "application/json"
        return 200, _json_bytes(payload), "application/json"

    def _cache_status(self) -> dict:
        """Memo-table statistics aggregated across live sessions."""
        totals: dict[str, dict] = {}
        for info in self.pool.debug_info():
            for table, stats in info["tables"].items():
                agg = totals.setdefault(table, {
                    "size": 0, "capacity": 0, "hits": 0, "misses": 0,
                    "evictions": 0})
                for field_name in agg:
                    agg[field_name] += stats.get(field_name, 0)
        for agg in totals.values():
            lookups = agg["hits"] + agg["misses"]
            agg["hit_rate"] = (agg["hits"] / lookups) if lookups else None
        return totals

    def _refresh_gauges(self) -> None:
        """Set the point-in-time gauges a ``/metrics`` scrape reports."""
        registry = self.registry
        queue = self.pool.queue_stats()
        registry.set_gauge("server.in_flight", self._in_flight)
        registry.set_gauge("server.queue.depth", queue["pending"])
        registry.set_gauge("server.pool.active", queue["active"])
        registry.set_gauge("server.sessions.live", len(self.pool))
        recorder = self.recorder.stats()
        registry.set_gauge("recorder.requests", recorder["size"])
        tables: dict[str, int] = {}
        for info in self.pool.debug_info():
            for table, stats in info["tables"].items():
                tables[table] = tables.get(table, 0) + stats["size"]
        for table, size in sorted(tables.items()):
            registry.set_gauge("server.memo.entries", size,
                               labels={"table": table})
        if self.layout is not None:
            store = self._store_status()
            if store is not None and "shard_entries" in store:
                for index, entries in enumerate(store["shard_entries"]):
                    registry.set_gauge("store.shard.entries", entries,
                                       labels={"shard": str(index)})
                registry.set_gauge("store.persisted_sessions",
                                   store["persisted_sessions"])
                registry.set_gauge("store.persisted_memo_entries",
                                   store["persisted_memo_entries"])

    def _store_status(self) -> dict | None:
        """The ``store`` section of ``/healthz`` (persistent mode only).

        Everything here is read from the storage directory, so it
        reflects what a restart would find: the store version, cache
        shard occupancy, persisted session memos, and the newest flush
        timestamp (the max mtime over cache/session documents).
        """
        if self.layout is None:
            return None
        from ..storage.durable import current_store_version
        from ..errors import StorageError
        layout = self.layout
        try:
            manifest = layout.read_manifest()
            version = current_store_version(layout)
        except StorageError as exc:
            return {"root": str(layout.root), "error": str(exc)}
        shards = []
        last_flush: float | None = None
        for index in range(manifest.get("cache_shards", 0)):
            path = layout.shard_path(index)
            if not path.exists():
                shards.append(0)
                continue
            last_flush = max(last_flush or 0.0, path.stat().st_mtime)
            try:
                document = json.loads(path.read_text(encoding="utf-8"))
                shards.append(len(document.get("entries", [])))
            except (OSError, ValueError):
                shards.append(0)
        sessions = self.pool.registry.stats() \
            if self.pool.registry is not None else {"sessions": 0,
                                                    "entries": {}}
        if layout.sessions_dir.exists():
            for path in layout.sessions_dir.glob("session-*.json"):
                last_flush = max(last_flush or 0.0,
                                 path.stat().st_mtime)
        return {
            "root": str(layout.root),
            "store_version": version,
            "cache_shards": manifest.get("cache_shards", 0),
            "shard_entries": shards,
            "persisted_sessions": sessions["sessions"],
            "persisted_memo_entries": sum(sessions["entries"].values()),
            "last_flush": last_flush,
        }

    def _method_not_allowed(self) -> tuple[int, bytes, str]:
        return 405, _json_bytes(
            {"error": {"message": "method not allowed"}}), \
            "application/json"

    async def _admit(self, path: str, body: bytes,
                     ctx: RequestContext) -> tuple[int, bytes, str]:
        """Load-shed, start the admission-time budget, and dispatch."""
        if self._in_flight >= self.config.max_pending:
            self.registry.increment("server.shed")
            return 429, _json_bytes(
                {"error": {"message":
                           f"server over capacity "
                           f"({self._in_flight} requests in flight); "
                           f"retry later"}}), "application/json"
        try:
            data = json.loads(body.decode("utf-8")) if body else None
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            return 400, _json_bytes(
                {"error": {"message": f"request body is not valid "
                                      f"JSON: {exc}"}}), \
                "application/json"
        budget = self._request_budget(data)
        handler = {"/rewrite": self._do_rewrite,
                   "/explain": self._do_explain,
                   "/evaluate": self._do_evaluate}[path]
        # The queued span covers executor wait; the worker closes it the
        # moment it picks the job up, stitching loop and worker phases
        # into one tree (the tracer is only ever touched sequentially).
        queued = ctx.tracer.span("queued")
        self._in_flight += 1
        try:
            status, payload = await self.pool.submit(
                self._run_on_worker, handler, data, budget, ctx, queued)
        finally:
            self._in_flight -= 1
        return status, _json_bytes(payload), "application/json"

    @staticmethod
    def _run_on_worker(handler, data, budget, ctx: RequestContext,
                       queued_span) -> tuple[int, dict]:
        queued_span.__exit__(None, None, None)
        return handler(data, budget, ctx)

    def _request_budget(self, data) -> Budget | None:
        """The per-request budget, clocked from admission time.

        The deadline/step limits come from the request when given, else
        the server defaults.  Created *before* the request waits for a
        worker, so queueing time counts against the deadline (the
        cooperative-cancellation admission control of ``repro.obs``).
        """
        budget_ms = self.config.default_budget_ms
        max_steps = self.config.default_max_steps
        if isinstance(data, dict):
            raw_ms = data.get("budget_ms")
            if isinstance(raw_ms, (int, float)) \
                    and not isinstance(raw_ms, bool) and raw_ms > 0:
                budget_ms = float(raw_ms)
            raw_steps = data.get("max_steps")
            if isinstance(raw_steps, int) \
                    and not isinstance(raw_steps, bool) and raw_steps > 0:
                max_steps = raw_steps
        if budget_ms is None and max_steps is None:
            return None
        return Budget(deadline_ms=budget_ms, max_steps=max_steps)

    # -- endpoint workers (run on pool threads) ------------------------------

    def _do_rewrite(self, data, budget,
                    ctx: RequestContext) -> tuple[int, dict]:
        try:
            request = RewriteRequest.from_json(data)
        except BadRequestError as exc:
            return 400, exc.to_json()
        return self._run_rewrite(request, budget, explain_only=False,
                                 ctx=ctx)

    def _do_explain(self, data, budget,
                    ctx: RequestContext) -> tuple[int, dict]:
        try:
            request = RewriteRequest.from_json(data, explain=True)
        except BadRequestError as exc:
            return 400, exc.to_json()
        return self._run_rewrite(request, budget, explain_only=True,
                                 ctx=ctx)

    def _run_rewrite(self, request: RewriteRequest, budget,
                     explain_only: bool,
                     ctx: RequestContext) -> tuple[int, dict]:
        ctx.explain_requested = request.explain
        if budget is not None:
            try:
                budget.check()   # expired while queued -> 408, no search
            except BudgetExceededError as exc:
                ctx.memo = "miss"
                ctx.truncated = True
                ctx.stop_reason = exc.reason or "deadline"
                return 408, self._timeout_payload(exc)
        key = config_key(request.views, request.dtd_text)
        ctx.config_key = key
        ctx.query_key = query_key(request.query)
        session = self.pool.session_for(request.views,
                                        request.constraints, key)
        memoized = session.lookup_result(request.query, request.flags,
                                         need_explanation=request.explain)
        memo = "hit" if memoized is not None else "miss"
        ctx.memo = memo
        # Tail-based capture wants an EXPLAIN for every recorded search,
        # not only explicit explain requests -- but never at the price
        # of demoting a memo hit whose persisted entry has no decision
        # log (restart-warmed sessions) into a recompute.
        explanation: Explanation | None = None
        if request.explain:
            explanation = Explanation()
        elif self.config.capture_explain and self.recorder.enabled \
                and (memoized is None or memoized[1] is not None):
            explanation = Explanation()
        ctx.explanation = explanation
        try:
            result = session.rewrite(
                request.query, total_only=request.total_only,
                max_candidates=request.max_candidates,
                budget=budget, metrics=self.registry,
                tracer=ctx.tracer, explain=explanation)
        except ChaseContradictionError as exc:
            return 422, {"error": {
                "message": f"the query is unsatisfiable: {exc}"}}
        except RewritingError as exc:
            return 422, {"error": {"message": str(exc)}}

        ctx.truncated = result.stats.truncated
        ctx.stop_reason = result.stats.stop_reason
        stats_json = result.stats.to_json()
        ctx.counters = {name: stats_json[name]
                        for name in _RECORD_COUNTERS
                        if name in stats_json}
        status = 200
        if result.stats.truncated \
                and result.stats.stop_reason in _BUDGET_REASONS:
            status = 408
        payload: dict = {
            "schema_version": SERVE_SCHEMA_VERSION,
            "memo": memo,
            "truncated": result.stats.truncated,
            "stop_reason": result.stats.stop_reason,
        }
        if explain_only:
            payload["found"] = bool(result.rewritings)
            payload["explanation"] = explanation.to_json()
        else:
            payload["rewritings"] = [
                {"query": print_query(r.query), "flavor": "equivalent"}
                for r in result.rewritings]
            payload["stats"] = stats_json
            if request.explain:
                payload["explanation"] = explanation.to_json()
        return status, payload

    def _do_evaluate(self, data, budget,
                     ctx: RequestContext) -> tuple[int, dict]:
        from ..tsl import evaluate
        try:
            request = EvaluateRequest.from_json(data)
        except BadRequestError as exc:
            return 400, exc.to_json()
        if budget is not None:
            try:
                budget.check()
            except BudgetExceededError as exc:
                ctx.truncated = True
                ctx.stop_reason = exc.reason or "deadline"
                return 408, self._timeout_payload(exc)
        ctx.query_key = query_key(request.query)
        try:
            with ctx.tracer.span("evaluate"):
                answer = evaluate(request.query, request.database)
        except ReproError as exc:
            return 422, {"error": {"message": str(exc)}}
        return 200, {
            "schema_version": SERVE_SCHEMA_VERSION,
            "answer": database_to_json(answer),
            "roots": len(answer.roots),
            "objects": answer.stats()["objects"],
        }

    @staticmethod
    def _timeout_payload(exc: BudgetExceededError) -> dict:
        """The 408 body for a request that never reached the search.

        Mirrors the truncated-search shape (empty partial result), so
        clients handle both 408 flavors uniformly.
        """
        return {
            "schema_version": SERVE_SCHEMA_VERSION,
            "memo": "miss",
            "truncated": True,
            "stop_reason": exc.reason or "deadline",
            "rewritings": [],
            "error": {"message": str(exc)},
        }
