"""Rewrite-as-a-service: an asyncio HTTP/JSON front-end.

The paper's Section 1 deployment is a *mediator serving clients*; this
module is that front-end: a single-threaded asyncio I/O loop in front
of a :class:`~repro.server.pool.SessionPool` of worker threads driving
shared, canonically-keyed :class:`~repro.rewriting.RewriteSession`\\ s.

Endpoints (all JSON; see ``docs/SERVING.md`` for the full schemas):

* ``POST /rewrite``   -- find equivalent rewritings; ``"explain": true``
  attaches the EXPLAIN decision log, byte-identical to the in-process
  ``rewrite(..., explain=...)`` output (memo replays included).
* ``POST /explain``   -- the decision log alone (``repro explain``).
* ``POST /evaluate``  -- evaluate a query over an inline OEM database.
* ``GET /metrics``    -- Prometheus text exposition of the server
  registry (request counters, shed counter, ``phase.seconds``).
* ``GET /healthz``    -- liveness + pool occupancy.

**Admission control and load shedding.**  POST requests are admitted up
to ``max_pending`` in flight (queued + executing); beyond that the
server answers ``429`` immediately and counts ``server.shed``.  Each
admitted request gets a :class:`~repro.obs.Budget` whose deadline
starts *at admission*, so time spent queued behind other requests
counts against it -- a request that waits out its deadline is answered
``408`` by the first cooperative-cancellation check without consuming a
worker.  A search truncated by its deadline or step budget also maps to
``408``, with the partial (sound but possibly incomplete) result in the
body -- the *partial-result contract*: a 408 body is trustworthy as far
as it goes.

The HTTP implementation is deliberately minimal (stdlib-only
HTTP/1.1 with keep-alive and Content-Length framing); the interesting
machinery is the pool behind it.
"""

from __future__ import annotations

import asyncio
import json
import time
from dataclasses import dataclass

from ..errors import (BudgetExceededError, ChaseContradictionError,
                      ReproError, RewritingError)
from ..obs import Budget, MetricsRegistry, render_prometheus
from ..oem.serialize import database_to_json
from ..rewriting import Explanation
from ..tsl import print_query
from .pool import (DEFAULT_MAX_SESSIONS, DEFAULT_WORKERS, SessionPool,
                   config_key)
from .schemas import (SERVE_SCHEMA_VERSION, BadRequestError,
                      EvaluateRequest, RewriteRequest)

__all__ = ["ServerConfig", "ReproServer", "REASONS"]

REASONS = {
    200: "OK", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 408: "Request Timeout",
    413: "Payload Too Large", 422: "Unprocessable Entity",
    429: "Too Many Requests", 500: "Internal Server Error",
}

#: Budget stop reasons that map to the 408 partial-result contract.
_BUDGET_REASONS = ("deadline", "steps", "budget")


@dataclass
class ServerConfig:
    """Tunables of one server instance."""

    host: str = "127.0.0.1"
    port: int = 8080              # 0 picks an ephemeral port
    workers: int = DEFAULT_WORKERS
    max_pending: int = 64         # admitted in-flight cap; beyond -> 429
    max_sessions: int = DEFAULT_MAX_SESSIONS
    memo_size: int | None = None  # None -> session default
    default_budget_ms: float | None = None
    default_max_steps: int | None = None
    max_body_bytes: int = 16 * 1024 * 1024
    cache_dir: str | None = None  # persistent session memos (repro db init)


def _json_bytes(payload: dict) -> bytes:
    return (json.dumps(payload, indent=2) + "\n").encode("utf-8")


class ReproServer:
    """One serving instance: asyncio front-end + session pool."""

    def __init__(self, config: ServerConfig | None = None, *,
                 metrics: MetricsRegistry | None = None) -> None:
        self.config = config or ServerConfig()
        self.registry = metrics if metrics is not None else MetricsRegistry()
        pool_kwargs = {"workers": self.config.workers,
                       "max_sessions": self.config.max_sessions,
                       "metrics": self.registry}
        if self.config.memo_size is not None:
            pool_kwargs["memo_size"] = self.config.memo_size
        self.layout = None
        if self.config.cache_dir is not None:
            from ..storage import SessionRegistry, StorageLayout
            from ..storage.durable import current_store_version
            self.layout = StorageLayout(self.config.cache_dir)
            if not self.layout.exists():
                self.layout.create("db", cache_shards=8)
            pool_kwargs["registry"] = SessionRegistry(self.layout)
            pool_kwargs["store_version"] = \
                current_store_version(self.layout)
        self.pool = SessionPool(**pool_kwargs)
        self._in_flight = 0
        self._server: asyncio.AbstractServer | None = None
        self.port: int | None = None

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_client, self.config.host, self.config.port)
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        self.pool.save_sessions()   # durable memos survive the restart
        self.pool.shutdown()

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        async with self._server:
            await self._server.serve_forever()

    # -- HTTP plumbing -------------------------------------------------------

    async def _handle_client(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                request = await self._read_request(reader)
                if request is None:
                    break
                method, path, headers, body = request
                started = time.perf_counter()
                try:
                    status, payload, content_type = await self._dispatch(
                        method, path, body)
                except Exception as exc:  # last-resort 500
                    status = 500
                    payload = _json_bytes(
                        {"error": {"message": f"internal error: {exc}"}})
                    content_type = "application/json"
                self._observe(method, path, status,
                              time.perf_counter() - started)
                keep_alive = headers.get("connection", "").lower() \
                    != "close"
                await self._write_response(writer, status, payload,
                                           content_type, keep_alive)
                if not keep_alive:
                    break
        except (asyncio.IncompleteReadError, ConnectionError):
            pass
        except asyncio.CancelledError:
            pass  # server shutdown cancelled this connection
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except ConnectionError:
                pass

    async def _read_request(self, reader: asyncio.StreamReader):
        """One HTTP/1.1 request, or None at end of stream."""
        try:
            request_line = await reader.readline()
        except (ConnectionError, asyncio.LimitOverrunError):
            return None
        if not request_line.strip():
            return None
        try:
            method, path, _version = \
                request_line.decode("latin-1").split(None, 2)
        except ValueError:
            return None
        headers: dict[str, str] = {}
        while True:
            line = await reader.readline()
            if not line.strip():
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        if length > self.config.max_body_bytes:
            return method, path, {"connection": "close"}, b"\x00toolarge"
        body = await reader.readexactly(length) if length else b""
        return method, path.split("?", 1)[0], headers, body

    async def _write_response(self, writer: asyncio.StreamWriter,
                              status: int, payload: bytes,
                              content_type: str,
                              keep_alive: bool) -> None:
        reason = REASONS.get(status, "Unknown")
        connection = "keep-alive" if keep_alive else "close"
        head = (f"HTTP/1.1 {status} {reason}\r\n"
                f"Content-Type: {content_type}\r\n"
                f"Content-Length: {len(payload)}\r\n"
                f"Connection: {connection}\r\n\r\n")
        writer.write(head.encode("latin-1") + payload)
        await writer.drain()

    def _observe(self, method: str, path: str, status: int,
                 seconds: float) -> None:
        labels = {"endpoint": f"{method} {path}", "status": str(status)}
        self.registry.increment("server.requests", labels=labels)
        self.registry.observe("server.seconds", seconds,
                              labels={"endpoint": f"{method} {path}"})

    # -- routing + admission control -----------------------------------------

    async def _dispatch(self, method: str, path: str,
                        body: bytes) -> tuple[int, bytes, str]:
        if body == b"\x00toolarge":
            return 413, _json_bytes(
                {"error": {"message": "request body too large"}}), \
                "application/json"
        if path == "/healthz":
            if method != "GET":
                return self._method_not_allowed()
            health = {"status": "ok", "sessions": len(self.pool),
                      "in_flight": self._in_flight,
                      "pool": self.pool.stats()}
            store = self._store_status()
            if store is not None:
                health["store"] = store
            return 200, _json_bytes(health), "application/json"
        if path == "/metrics":
            if method != "GET":
                return self._method_not_allowed()
            text = render_prometheus(self.registry)
            return 200, text.encode("utf-8"), \
                "text/plain; version=0.0.4; charset=utf-8"
        if path in ("/rewrite", "/explain", "/evaluate"):
            if method != "POST":
                return self._method_not_allowed()
            return await self._admit(path, body)
        return 404, _json_bytes(
            {"error": {"message": f"no such endpoint: {path}"}}), \
            "application/json"

    def _store_status(self) -> dict | None:
        """The ``store`` section of ``/healthz`` (persistent mode only).

        Everything here is read from the storage directory, so it
        reflects what a restart would find: the store version, cache
        shard occupancy, persisted session memos, and the newest flush
        timestamp (the max mtime over cache/session documents).
        """
        if self.layout is None:
            return None
        from ..storage.durable import current_store_version
        from ..errors import StorageError
        layout = self.layout
        try:
            manifest = layout.read_manifest()
            version = current_store_version(layout)
        except StorageError as exc:
            return {"root": str(layout.root), "error": str(exc)}
        shards = []
        last_flush: float | None = None
        for index in range(manifest.get("cache_shards", 0)):
            path = layout.shard_path(index)
            if not path.exists():
                shards.append(0)
                continue
            last_flush = max(last_flush or 0.0, path.stat().st_mtime)
            try:
                document = json.loads(path.read_text(encoding="utf-8"))
                shards.append(len(document.get("entries", [])))
            except (OSError, ValueError):
                shards.append(0)
        sessions = self.pool.registry.stats() \
            if self.pool.registry is not None else {"sessions": 0,
                                                    "entries": {}}
        if layout.sessions_dir.exists():
            for path in layout.sessions_dir.glob("session-*.json"):
                last_flush = max(last_flush or 0.0,
                                 path.stat().st_mtime)
        return {
            "root": str(layout.root),
            "store_version": version,
            "cache_shards": manifest.get("cache_shards", 0),
            "shard_entries": shards,
            "persisted_sessions": sessions["sessions"],
            "persisted_memo_entries": sum(sessions["entries"].values()),
            "last_flush": last_flush,
        }

    def _method_not_allowed(self) -> tuple[int, bytes, str]:
        return 405, _json_bytes(
            {"error": {"message": "method not allowed"}}), \
            "application/json"

    async def _admit(self, path: str,
                     body: bytes) -> tuple[int, bytes, str]:
        """Load-shed, start the admission-time budget, and dispatch."""
        if self._in_flight >= self.config.max_pending:
            self.registry.increment("server.shed")
            return 429, _json_bytes(
                {"error": {"message":
                           f"server over capacity "
                           f"({self._in_flight} requests in flight); "
                           f"retry later"}}), "application/json"
        try:
            data = json.loads(body.decode("utf-8")) if body else None
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            return 400, _json_bytes(
                {"error": {"message": f"request body is not valid "
                                      f"JSON: {exc}"}}), \
                "application/json"
        budget = self._request_budget(data)
        handler = {"/rewrite": self._do_rewrite,
                   "/explain": self._do_explain,
                   "/evaluate": self._do_evaluate}[path]
        self._in_flight += 1
        try:
            status, payload = await self.pool.submit(handler, data,
                                                     budget)
        finally:
            self._in_flight -= 1
        return status, _json_bytes(payload), "application/json"

    def _request_budget(self, data) -> Budget | None:
        """The per-request budget, clocked from admission time.

        The deadline/step limits come from the request when given, else
        the server defaults.  Created *before* the request waits for a
        worker, so queueing time counts against the deadline (the
        cooperative-cancellation admission control of ``repro.obs``).
        """
        budget_ms = self.config.default_budget_ms
        max_steps = self.config.default_max_steps
        if isinstance(data, dict):
            raw_ms = data.get("budget_ms")
            if isinstance(raw_ms, (int, float)) \
                    and not isinstance(raw_ms, bool) and raw_ms > 0:
                budget_ms = float(raw_ms)
            raw_steps = data.get("max_steps")
            if isinstance(raw_steps, int) \
                    and not isinstance(raw_steps, bool) and raw_steps > 0:
                max_steps = raw_steps
        if budget_ms is None and max_steps is None:
            return None
        return Budget(deadline_ms=budget_ms, max_steps=max_steps)

    # -- endpoint workers (run on pool threads) ------------------------------

    def _do_rewrite(self, data, budget) -> tuple[int, dict]:
        try:
            request = RewriteRequest.from_json(data)
        except BadRequestError as exc:
            return 400, exc.to_json()
        return self._run_rewrite(request, budget, explain_only=False)

    def _do_explain(self, data, budget) -> tuple[int, dict]:
        try:
            request = RewriteRequest.from_json(data, explain=True)
        except BadRequestError as exc:
            return 400, exc.to_json()
        return self._run_rewrite(request, budget, explain_only=True)

    def _run_rewrite(self, request: RewriteRequest, budget,
                     explain_only: bool) -> tuple[int, dict]:
        if budget is not None:
            try:
                budget.check()   # expired while queued -> 408, no search
            except BudgetExceededError as exc:
                return 408, self._timeout_payload(exc)
        key = config_key(request.views, request.dtd_text)
        session = self.pool.session_for(request.views,
                                        request.constraints, key)
        explanation = Explanation() if request.explain else None
        memoized = session.lookup_result(request.query, request.flags,
                                         need_explanation=request.explain)
        memo = "hit" if memoized is not None else "miss"
        try:
            result = session.rewrite(
                request.query, total_only=request.total_only,
                max_candidates=request.max_candidates,
                budget=budget, metrics=self.registry,
                explain=explanation)
        except ChaseContradictionError as exc:
            return 422, {"error": {
                "message": f"the query is unsatisfiable: {exc}"}}
        except RewritingError as exc:
            return 422, {"error": {"message": str(exc)}}

        status = 200
        if result.stats.truncated \
                and result.stats.stop_reason in _BUDGET_REASONS:
            status = 408
        payload: dict = {
            "schema_version": SERVE_SCHEMA_VERSION,
            "memo": memo,
            "truncated": result.stats.truncated,
            "stop_reason": result.stats.stop_reason,
        }
        if explain_only:
            payload["found"] = bool(result.rewritings)
            payload["explanation"] = explanation.to_json()
        else:
            payload["rewritings"] = [
                {"query": print_query(r.query), "flavor": "equivalent"}
                for r in result.rewritings]
            payload["stats"] = result.stats.to_json()
            if explanation is not None:
                payload["explanation"] = explanation.to_json()
        return status, payload

    def _do_evaluate(self, data, budget) -> tuple[int, dict]:
        from ..tsl import evaluate
        try:
            request = EvaluateRequest.from_json(data)
        except BadRequestError as exc:
            return 400, exc.to_json()
        if budget is not None:
            try:
                budget.check()
            except BudgetExceededError as exc:
                return 408, self._timeout_payload(exc)
        try:
            answer = evaluate(request.query, request.database)
        except ReproError as exc:
            return 422, {"error": {"message": str(exc)}}
        return 200, {
            "schema_version": SERVE_SCHEMA_VERSION,
            "answer": database_to_json(answer),
            "roots": len(answer.roots),
            "objects": answer.stats()["objects"],
        }

    @staticmethod
    def _timeout_payload(exc: BudgetExceededError) -> dict:
        """The 408 body for a request that never reached the search.

        Mirrors the truncated-search shape (empty partial result), so
        clients handle both 408 flavors uniformly.
        """
        return {
            "schema_version": SERVE_SCHEMA_VERSION,
            "memo": "miss",
            "truncated": True,
            "stop_reason": exc.reason or "deadline",
            "rewritings": [],
            "error": {"message": str(exc)},
        }
