"""repro: a reproduction of "Query Rewriting for Semistructured Data".

Papakonstantinou & Vassalos, SIGMOD 1999.  The package implements the OEM
data model, the TSL query language, and the paper's sound & complete
algorithm for rewriting TSL queries using TSL views, together with the
TSIMMIS-style mediator and Lore-style repository substrates the paper
motivates.

Quickstart::

    from repro import parse_query, evaluate
    from repro.oem import build_database, obj

    db = build_database("db", [
        obj("person", [obj("gender", "female"), obj("name", "ann")]),
    ])
    q = parse_query("<f(P) female {<f(X) Y Z>}> :- "
                    "<P person {<G gender female> <X Y Z>}>@db")
    answer = evaluate(q, db)
"""

from .errors import (ChaseContradictionError, FusionConflictError,
                     OemError, ReproError, RewritingError, SafetyError,
                     TslError, TslSyntaxError, ValidationError)
from .span import Span
from .oem import OemDatabase, build_database, identical, isomorphic, obj
from .tsl import (Query, evaluate, evaluate_program, normalize, parse_query,
                  print_query, validate)

__version__ = "1.0.0"

__all__ = [
    "ReproError", "OemError", "TslError", "TslSyntaxError",
    "ValidationError", "SafetyError", "FusionConflictError",
    "RewritingError", "ChaseContradictionError",
    "OemDatabase", "build_database", "obj", "identical", "isomorphic",
    "Query", "parse_query", "print_query", "normalize", "validate",
    "evaluate", "evaluate_program",
    "Span",
    "__version__",
]
