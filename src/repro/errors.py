"""Exception hierarchy for the repro package.

Every exception raised by the library derives from :class:`ReproError`, so
callers can catch one type to handle any library failure.  Subtrees mirror
the subsystems: OEM model errors, TSL language errors, and rewriting errors.
"""

from __future__ import annotations

from .span import Span, excerpt_lines


class ReproError(Exception):
    """Base class of all errors raised by the repro library."""


# --------------------------------------------------------------------------
# OEM data model
# --------------------------------------------------------------------------

class OemError(ReproError):
    """Base class for OEM data model errors."""


class DuplicateOidError(OemError):
    """An object id was inserted twice with conflicting label or value."""


class UnknownOidError(OemError):
    """An object id was referenced but is not present in the database."""


class FusionConflictError(OemError):
    """Two assignments fused the same head oid with different atomic values.

    TSL's fusion semantics merge the *set* values of objects that share an
    object id; an atomic object cannot carry two distinct atomic values, so
    producing one is an error in the query, not in the data.
    """


# --------------------------------------------------------------------------
# TSL language
# --------------------------------------------------------------------------

class TslError(ReproError):
    """Base class for TSL language errors."""


class TslSyntaxError(TslError):
    """The TSL text could not be parsed.

    Carries the :class:`~repro.span.Span` of the offending token when the
    lexer/parser knows it, and — when the raising site supplies the source
    text — the offending source line with a caret underline, so the error
    message alone pinpoints the problem.
    """

    def __init__(self, message: str, line: int | None = None,
                 column: int | None = None, *,
                 end_line: int | None = None,
                 end_column: int | None = None,
                 source: str | None = None) -> None:
        self.message = message
        self.line = line
        self.column = column
        self.span: Span | None = None
        if line is not None and column is not None:
            self.span = Span(line, column,
                             end_line if end_line is not None else line,
                             end_column if end_column is not None
                             else column + 1)
        location = ""
        if line is not None:
            location = f" at line {line}"
            if column is not None:
                location += f", column {column}"
        full = f"{message}{location}"
        if source is not None and self.span is not None:
            excerpt = excerpt_lines(source, self.span)
            if excerpt:
                full = "\n".join([full, *excerpt])
        super().__init__(full)


class ValidationError(TslError):
    """A parsed query violates a well-formedness rule of the paper.

    ``span`` points at the offending construct when the query was parsed
    from text (AST nodes built programmatically have no spans); ``code``
    is the stable :mod:`repro.analysis` diagnostic code (``TSL001``...)
    of the violated rule.
    """

    def __init__(self, message: str, *, span: Span | None = None,
                 code: str | None = None) -> None:
        super().__init__(message)
        self.message = message
        self.span = span
        self.code = code


class SafetyError(ValidationError):
    """A head variable does not appear in the query body (unsafe query)."""


class CyclicPatternError(ValidationError):
    """A body condition contains a cyclic object pattern (disallowed, par. 2)."""


class OidDisciplineError(ValidationError):
    """A variable is used both in an object-id field and a label/value field.

    The paper requires the sets of object-id variables and other variables
    to be disjoint; this is what keeps the completeness proof of Section 5
    valid (no hidden functional dependencies).
    """


# --------------------------------------------------------------------------
# Rewriting
# --------------------------------------------------------------------------

class RewritingError(ReproError):
    """Base class for errors in the rewriting subsystem."""


class ChaseContradictionError(RewritingError):
    """The chase equated two distinct constants.

    Per Section 3.2, the query "cannot be chased to an equivalent query
    satisfying the object id key dependency"; it has an empty result on
    every legal database.
    """


class ConstraintError(RewritingError):
    """A structural constraint description (e.g. a DTD) is malformed."""


class CompositionError(RewritingError):
    """Query-view composition failed structurally (not merely no unifier)."""


# --------------------------------------------------------------------------
# Resource budgets (repro.obs)
# --------------------------------------------------------------------------

class BudgetExceededError(ReproError):
    """A resource budget (wall-clock deadline or step budget) ran out.

    Raised cooperatively by the exponential pipeline phases (mapping
    search, candidate enumeration, chase, composition, equivalence) when
    a :class:`repro.obs.Budget` expires.  ``reason`` is ``"deadline"`` or
    ``"steps"``; callers like :func:`repro.rewriting.rewrite` catch it
    and return partial results flagged ``truncated``.
    """

    def __init__(self, message: str, *, reason: str | None = None,
                 steps: int | None = None,
                 elapsed_ms: float | None = None) -> None:
        super().__init__(message)
        self.reason = reason
        self.steps = steps
        self.elapsed_ms = elapsed_ms


# --------------------------------------------------------------------------
# Mediator / repository substrates
# --------------------------------------------------------------------------

class MediatorError(ReproError):
    """Base class for mediator-layer errors."""


class CapabilityError(MediatorError):
    """No capability-respecting plan exists for a query."""


class ConfigError(MediatorError):
    """A mediator configuration file is malformed.

    Raised by :func:`repro.analysis.viewset.load_config` for structural
    problems (bad JSON, wrong types, missing files).  TSL syntax errors
    *inside* a referenced view are not raised: they become ``TSL000``
    diagnostics in the config's report, so one broken view does not hide
    the analysis of the rest.
    """


class RepositoryError(ReproError):
    """Base class for repository-layer errors."""


class StorageError(ReproError):
    """Base class for the persistent-storage layer (:mod:`repro.storage`).

    Raised on missing/corrupt on-disk state, schema-version mismatches,
    and attempts to re-initialize an existing store directory.
    """
