"""Analysis passes.  Import a pass module to register it.

Kept import-light on purpose: :mod:`repro.tsl.validate` imports
``wellformed`` directly (well-formedness exceptions are built from its
diagnostics), and must not pull the heavier passes — ``style`` uses the
containment-mapping engine from :mod:`repro.rewriting.mappings` — into
the core import graph.  The analyzer imports all of them.
"""
