"""Style and redundancy lints (TSL1xx) — legal queries that look wrong.

* **TSL101** singleton data variables: a label/value variable occurring
  exactly once in the whole query usually signals a typo (object-id
  variables are exempt -- existential oids like ``<X title T>`` are
  idiomatic, and so are ``$``-parameters of capability views).
* **TSL102** redundant conditions: a body condition that the *rest* of
  the body implies, witnessed by a self-containment mapping (the same
  engine as Step 1A, :mod:`repro.rewriting.mappings`) that is the
  identity on every variable shared with the head or the other
  conditions -- the classic conjunctive-query minimization argument.
* **TSL103** disconnected body: conditions that share no variables with
  the rest of the body multiply answers as a cartesian product in the
  evaluator.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterator

from ...logic.terms import Term, Variable
from ...rewriting.mappings import body_mappings
from ...tsl.ast import ObjectPattern, Query
from ...tsl.normalize import condition_paths
from ..diagnostics import Diagnostic, Severity, register_pass


def _data_occurrences(pattern: ObjectPattern) -> Iterator[Variable]:
    """Bare variables in label/value position, with their parsed spans."""
    for node in pattern.nested_patterns():
        if isinstance(node.label, Variable):
            yield node.label
        if isinstance(node.value, Variable):
            yield node.value


def singleton_diagnostics(query: Query) -> Iterator[Diagnostic]:
    """TSL101: data variables that occur exactly once in the query."""
    counts: Counter[Variable] = Counter(query.head.variables())
    for condition in query.body:
        counts.update(condition.pattern.variables())
    for condition in query.body:
        for occurrence in _data_occurrences(condition.pattern):
            if counts[occurrence] != 1 or occurrence.name.startswith("$"):
                continue
            yield Diagnostic(
                "TSL101", Severity.WARNING,
                f"variable {occurrence.name} occurs only once in the query",
                span=occurrence.span,
                suggestion="check for a misspelled variable name; a "
                           "one-off variable only asserts existence")


def redundancy_diagnostics(query: Query) -> Iterator[Diagnostic]:
    """TSL102: conditions implied by the rest of the body."""
    body = query.body
    if len(body) < 2:
        return
    head_vars = query.head_variables()
    for i, condition in enumerate(body):
        own_paths = condition_paths(condition)
        rest = [c for j, c in enumerate(body) if j != i]
        rest_paths = [p for c in rest for p in condition_paths(c)]
        if not rest_paths:
            continue
        own_vars = set(condition.variables())
        rest_vars: set[Variable] = set()
        for c in rest:
            rest_vars.update(c.variables())
        shared = own_vars & (head_vars | rest_vars)
        for subst in body_mappings(own_paths, rest_paths):
            if all(subst.apply(v) == v for v in shared):
                duplicate = all(p in rest_paths for p in own_paths)
                what = ("duplicates other conditions" if duplicate
                        else "is implied by the rest of the body")
                yield Diagnostic(
                    "TSL102", Severity.WARNING,
                    f"condition {i + 1} ({condition.pattern}@"
                    f"{condition.source}) {what}",
                    span=condition.span,
                    suggestion="remove the redundant condition; "
                               "conjunction is idempotent")
                break


def connectivity_diagnostics(query: Query) -> Iterator[Diagnostic]:
    """TSL103: body components sharing no variables (cartesian products)."""
    body = query.body
    if len(body) < 2:
        return
    condition_vars = [set(c.variables()) for c in body]
    component = list(range(len(body)))

    def find(i: int) -> int:
        while component[i] != i:
            component[i] = component[component[i]]
            i = component[i]
        return i

    for i in range(len(body)):
        for j in range(i + 1, len(body)):
            if condition_vars[i] & condition_vars[j]:
                component[find(i)] = find(j)

    groups: dict[int, list[int]] = {}
    for i in range(len(body)):
        groups.setdefault(find(i), []).append(i)
    ordered = sorted(groups.values(), key=lambda g: g[0])
    if len(ordered) < 2:
        return
    for group in ordered[1:]:
        first = body[group[0]]
        members = ", ".join(str(k + 1) for k in group)
        yield Diagnostic(
            "TSL103", Severity.WARNING,
            f"condition(s) {members} share no variables with the rest of "
            "the body; the result is a cartesian product",
            span=first.span,
            suggestion="join the groups through a shared variable, or "
                       "split the query")


@register_pass("style")
def style_pass(ctx) -> Iterator[Diagnostic]:
    yield from singleton_diagnostics(ctx.query)
    yield from redundancy_diagnostics(ctx.query)
    yield from connectivity_diagnostics(ctx.query)
