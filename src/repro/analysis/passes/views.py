"""View-set lints for the mediator (TSL3xx).

* **TSL301** a view whose head exports no variables can never supply
  bindings through a containment mapping (Step 1A needs the view head
  to carry the matched data out), so the rewriter can only ever use it
  as an existence test -- almost always a view-definition mistake.
"""

from __future__ import annotations

from typing import Iterator

from ..diagnostics import Diagnostic, Severity, register_pass


@register_pass("views")
def views_pass(ctx) -> Iterator[Diagnostic]:
    for name in sorted(ctx.views):
        view = ctx.views[name]
        if view.head_variables():
            continue
        yield Diagnostic(
            "TSL301", Severity.WARNING,
            f"view {name} exports no variables in its head; it can never "
            "participate in a containment mapping that carries data into "
            "a rewriting",
            span=view.head.span,
            file=ctx.view_files.get(name, name),
            suggestion="export the body variables the mediator should "
                       "be able to query, e.g. include them in the head "
                       "value fields")
