"""View-set lints for the mediator (TSL3xx).

* **TSL301** a view whose head exports no variables can never supply
  bindings through a containment mapping (Step 1A needs the view head
  to carry the matched data out), so the rewriter can only ever use it
  as an existence test -- almost always a view-definition mistake.
"""

from __future__ import annotations

from typing import Iterator

from ..diagnostics import Diagnostic, Severity, register_pass


@register_pass("views")
def views_pass(ctx) -> Iterator[Diagnostic]:
    for name in sorted(ctx.views):
        view = ctx.views[name]
        if view.head_variables():
            continue
        # Only file-backed views keep their spans: a view registered via
        # the API either has no span at all (programmatic AST) or a span
        # into text the renderer does not have -- rendering it against
        # the main query's source would underline an unrelated line.
        # File attribution falls back to the view's name.
        file_backed = name in ctx.view_files
        yield Diagnostic(
            "TSL301", Severity.WARNING,
            f"view {name} exports no variables in its head; it can never "
            "participate in a containment mapping that carries data into "
            "a rewriting",
            span=view.head.span if file_backed else None,
            file=ctx.view_files.get(name, name),
            suggestion="export the body variables the mediator should "
                       "be able to query, e.g. include them in the head "
                       "value fields")
