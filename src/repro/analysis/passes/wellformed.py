"""Well-formedness checks of Section 2/5 as diagnostics (TSL001-TSL005).

This module is the single implementation of the paper's query
discipline; :mod:`repro.tsl.validate` raises its ``ValidationError``
family from the first error diagnostic produced here, so the exception
API and the lint report can never disagree.

Codes:

* **TSL001** safety: every head variable appears in the body.
* **TSL002** oid-variable discipline: ``Vo ∩ Vc = ∅`` (Section 5).
* **TSL003** acyclic body patterns (chase termination, Section 3.2).
* **TSL004** head object ids: unique, and function terms or constants.
* **TSL005** field shapes: labels and term values are never function
  terms (function terms denote object ids).
"""

from __future__ import annotations

from typing import Iterable, Iterator

from ...logic.terms import FunctionTerm, Term, Variable
from ...span import Span
from ...tsl.ast import ObjectPattern, Query, SetPattern
from ..diagnostics import Diagnostic, Severity, register_pass


def _all_patterns(query: Query) -> Iterator[ObjectPattern]:
    yield from query.head.nested_patterns()
    for condition in query.body:
        yield from condition.pattern.nested_patterns()


def oid_variables(query: Query) -> set[Variable]:
    """Variables standing alone in an object-id field (head or body).

    Arguments *inside* function-term oids do not count: the paper's view
    (V1) uses ``pp(P',Y')`` as a head oid with the label variable ``Y'``
    as an argument, so the ``Vo ∩ Vc = ∅`` discipline can only concern
    bare oid variables -- which is also exactly what rules out the hidden
    functional dependency of ``<X Y {<Y Z W>}>`` (Section 5).
    """
    out: set[Variable] = set()
    for pattern in _all_patterns(query):
        if isinstance(pattern.oid, Variable):
            out.add(pattern.oid)
    return out


def data_variables(query: Query) -> set[Variable]:
    """Variables occurring in label or value fields (head or body)."""
    out: set[Variable] = set()
    for pattern in _all_patterns(query):
        out.update(pattern.label.variables())
        if isinstance(pattern.value, Term):
            out.update(pattern.value.variables())
    return out


def _first_span(variables: Iterable[Variable], name: str) -> Span | None:
    """The span of the first occurrence of variable *name*, if any."""
    for v in variables:
        if v.name == name and v.span is not None:
            return v.span
    return None


# --------------------------------------------------------------------------
# The individual checks, as diagnostic generators
# --------------------------------------------------------------------------

def field_shape_diagnostics(query: Query) -> Iterator[Diagnostic]:
    """TSL005: labels and term values must be variables or constants."""
    for pattern in _all_patterns(query):
        if isinstance(pattern.label, FunctionTerm):
            yield Diagnostic(
                "TSL005", Severity.ERROR,
                f"label field {pattern.label} is a function term",
                span=pattern.label.span or pattern.span,
                suggestion="labels are atomic; use a variable or constant")
        if isinstance(pattern.value, FunctionTerm):
            # Function terms denote oids; an atomic value is atomic data.
            yield Diagnostic(
                "TSL005", Severity.ERROR,
                f"value field {pattern.value} is a function term",
                span=pattern.value.span or pattern.span,
                suggestion="function terms denote object ids and belong "
                           "in oid fields only")


def safety_diagnostics(query: Query) -> Iterator[Diagnostic]:
    """TSL001: every head variable must be bound in the body."""
    missing = query.head_variables() - query.body_variables()
    for name in sorted(v.name for v in missing):
        yield Diagnostic(
            "TSL001", Severity.ERROR,
            f"head variable {name} is not bound in the query body",
            span=_first_span(query.head.variables(), name),
            suggestion=f"bind {name} in a body condition or drop it "
                       "from the head")


def head_oid_diagnostics(query: Query) -> Iterator[Diagnostic]:
    """TSL004: head oid terms must be unique and fresh-id-producing."""
    seen: set[Term] = set()
    for pattern in query.head.nested_patterns():
        oid = pattern.oid
        if isinstance(oid, Variable):
            yield Diagnostic(
                "TSL004", Severity.ERROR,
                f"head object-id {oid} is a bare variable; head oids must "
                "be function terms or constants so answers get fresh ids",
                span=oid.span or pattern.span,
                suggestion=f"wrap it in a fresh function term, e.g. f({oid})")
            continue
        if oid in seen:
            yield Diagnostic(
                "TSL004", Severity.ERROR,
                f"head object-id term {oid} is not unique in the head",
                span=oid.span or pattern.span,
                suggestion="use a distinct function symbol for each head "
                           "object")
        seen.add(oid)


def oid_discipline_diagnostics(query: Query) -> Iterator[Diagnostic]:
    """TSL002: oid variables and label/value variables must be disjoint."""
    overlap = oid_variables(query) & data_variables(query)
    for name in sorted(v.name for v in overlap):
        span = None
        for pattern in _all_patterns(query):
            span = (_first_span(pattern.label.variables(), name)
                    or (_first_span(pattern.value.variables(), name)
                        if isinstance(pattern.value, Term) else None))
            if span is not None:
                break
        yield Diagnostic(
            "TSL002", Severity.ERROR,
            f"variable {name} is used both as an object id and as a "
            "label or value",
            span=span,
            suggestion="rename one of the uses; the paper requires the "
                       "oid and label/value variable sets to be disjoint")


def acyclicity_diagnostics(query: Query) -> Iterator[Diagnostic]:
    """TSL003: the oid parent/child relation of the body must be acyclic."""
    edges: dict[Term, set[Term]] = {}
    spans: dict[tuple[Term, Term], Span | None] = {}

    def collect(pattern: ObjectPattern) -> None:
        if isinstance(pattern.value, SetPattern):
            for child in pattern.value.patterns:
                edges.setdefault(pattern.oid, set()).add(child.oid)
                spans.setdefault((pattern.oid, child.oid), child.span)
                collect(child)

    for condition in query.body:
        collect(condition.pattern)

    WHITE, GRAY, BLACK = 0, 1, 2
    color: dict[Term, int] = {}
    found: list[Diagnostic] = []

    def visit(node: Term) -> None:
        color[node] = GRAY
        for succ in sorted(edges.get(node, ()), key=str):
            state = color.get(succ, WHITE)
            if state == GRAY:
                found.append(Diagnostic(
                    "TSL003", Severity.ERROR,
                    "body patterns look for a cycle through oid term "
                    f"{succ}",
                    span=spans.get((node, succ)),
                    suggestion="OEM databases may be cyclic but body "
                               "patterns must be acyclic (chase "
                               "termination); break the cycle with a "
                               "fresh oid variable"))
            if state == WHITE:
                visit(succ)
        color[node] = BLACK

    for node in list(edges):
        if color.get(node, WHITE) == WHITE:
            visit(node)
    yield from found


def wellformed_diagnostics(query: Query) -> Iterator[Diagnostic]:
    """All well-formedness findings, in the order ``validate`` checks them."""
    yield from field_shape_diagnostics(query)
    yield from safety_diagnostics(query)
    yield from head_oid_diagnostics(query)
    yield from oid_discipline_diagnostics(query)
    yield from acyclicity_diagnostics(query)


@register_pass("wellformed")
def wellformed_pass(ctx) -> Iterator[Diagnostic]:
    yield from wellformed_diagnostics(ctx.query)
