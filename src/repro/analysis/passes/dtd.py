"""Constraint-aware lints (TSL2xx): conditions unsatisfiable under a DTD.

Uses the Section 3.3 machinery of :mod:`repro.rewriting.constraints`
(the same :class:`~repro.rewriting.constraints.Dtd` the chase and label
inference consume) to prove conditions empty *before* the exponential
Step 1B/Step 2 pipeline ever runs:

* **TSL201** a parent/child label pair the DTD forbids, a set pattern
  under an atomic element, an atomic value on an element with element
  content, or an ``a . ? . c`` sandwich with *no* admissible middle
  label -- the condition can never match a legal database.
* **TSL202** (info) label inference: an ``a . ? . c`` sandwich where
  exactly one middle label is admissible -- the variable is forced, and
  naming it makes the query cheaper to evaluate and rewrite.

Only conditions addressed at the DTD's source are examined, and only
labels the DTD actually declares constrain anything (semistructured
data may always carry extra structure next to the declared part).
"""

from __future__ import annotations

from typing import Iterator

from ...logic.terms import Constant, Variable
from ...rewriting.constraints import Dtd
from ...tsl.ast import ObjectPattern, Query, SetPattern
from ..diagnostics import Diagnostic, Severity, register_pass


def _declared(dtd: Dtd, label) -> bool:
    return isinstance(label, Constant) and str(label) in dtd.elements


def _pattern_diagnostics(pattern: ObjectPattern,
                         dtd: Dtd) -> Iterator[Diagnostic]:
    label = pattern.label
    if _declared(dtd, label):
        name = str(label)
        if dtd.is_atomic(name):
            if isinstance(pattern.value, SetPattern):
                yield Diagnostic(
                    "TSL201", Severity.WARNING,
                    f"element {name} has atomic content under the DTD, but "
                    "the pattern requires a set value; the condition is "
                    "unsatisfiable",
                    span=pattern.value.span or pattern.span,
                    suggestion="match the atomic value with a variable "
                               "or constant instead of a set pattern")
        else:
            if isinstance(pattern.value, Constant):
                yield Diagnostic(
                    "TSL201", Severity.WARNING,
                    f"element {name} has element content under the DTD, but "
                    f"the pattern requires the atomic value "
                    f"{pattern.value}; the condition is unsatisfiable",
                    span=pattern.value.span or pattern.span,
                    suggestion="use a set pattern to match subobjects")
        if isinstance(pattern.value, SetPattern):
            for child in pattern.value.patterns:
                yield from _child_diagnostics(name, child, dtd)
    if isinstance(pattern.value, SetPattern):
        for child in pattern.value.patterns:
            yield from _pattern_diagnostics(child, dtd)


def _child_diagnostics(parent: str, child: ObjectPattern,
                       dtd: Dtd) -> Iterator[Diagnostic]:
    label = child.label
    if isinstance(label, Constant):
        if not dtd.can_contain(parent, str(label)):
            yield Diagnostic(
                "TSL201", Severity.WARNING,
                f"element {parent} can never have a {label} subobject "
                "under the DTD; the condition is unsatisfiable",
                span=label.span or child.span,
                suggestion=_allowed_children_hint(parent, dtd))
        return
    if not isinstance(label, Variable):
        return
    if not isinstance(child.value, SetPattern):
        return
    # The a.?.c sandwich of Section 3.3 label inference: parent is known,
    # the middle label is a variable, and a grandchild label is constant.
    for grandchild in child.value.patterns:
        target = grandchild.label
        if not isinstance(target, Constant):
            continue
        candidates = [spec.name for spec in dtd.children_of(parent)
                      if dtd.can_contain(spec.name, str(target))]
        if not candidates:
            yield Diagnostic(
                "TSL201", Severity.WARNING,
                f"no element between {parent} and {target} is admissible "
                "under the DTD; the condition is unsatisfiable",
                span=target.span or grandchild.span,
                suggestion=f"no child of {parent} may contain a {target} "
                           "subobject")
        elif len(candidates) == 1:
            inferred = dtd.infer_middle_label(parent, str(target))
            yield Diagnostic(
                "TSL202", Severity.INFO,
                f"label variable {label.name} can only be {inferred} "
                f"under the DTD (the unique element between {parent} "
                f"and {target})",
                span=label.span or child.span,
                suggestion=f"replace {label.name} with {inferred}")


def _allowed_children_hint(parent: str, dtd: Dtd) -> str:
    allowed = ", ".join(spec.name for spec in dtd.children_of(parent))
    if allowed:
        return f"the DTD allows only: {allowed}"
    return f"the DTD declares {parent} with no children"


def dtd_diagnostics(query: Query, dtd: Dtd) -> Iterator[Diagnostic]:
    """All TSL2xx findings for body conditions at the DTD's source."""
    for condition in query.body:
        if condition.source != dtd.source:
            continue
        yield from _pattern_diagnostics(condition.pattern, dtd)


@register_pass("dtd")
def dtd_pass(ctx) -> Iterator[Diagnostic]:
    if ctx.dtd is None:
        return
    yield from dtd_diagnostics(ctx.query, ctx.dtd)
