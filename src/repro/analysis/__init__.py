"""Static analysis for TSL: diagnostics with source spans, and lint passes.

The package implements a multi-pass analyzer over parsed TSL queries and
view sets.  Each finding is a :class:`Diagnostic` with a stable code
(``TSL001``...), a severity, and a :class:`~repro.span.Span` pointing at
real source text; :func:`analyze` runs every registered pass.  See
``docs/LINTING.md`` for the catalogue of codes.

Exports resolve lazily (PEP 562) so that low-level modules — notably
:mod:`repro.tsl.validate`, which delegates its checks to the
``wellformed`` pass — can import their specific pass module without
dragging the rewriting machinery into the import graph.
"""

from typing import Any

_EXPORTS = {
    "Diagnostic": ".diagnostics",
    "Severity": ".diagnostics",
    "register_pass": ".diagnostics",
    "registered_passes": ".diagnostics",
    "render_text": ".diagnostics",
    "render_json": ".diagnostics",
    "AnalysisContext": ".analyzer",
    "analyze": ".analyzer",
    "render_sarif": ".sarif",
    "ViewSetContext": ".viewset",
    "analyze_view_set": ".viewset",
    "LabelSignatureIndex": ".viewset",
    "MediatorConfig": ".viewset",
    "load_config": ".viewset",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str) -> Any:
    target = _EXPORTS.get(name)
    if target is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    from importlib import import_module

    return getattr(import_module(target, __name__), name)


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_EXPORTS))
