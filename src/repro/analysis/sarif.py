"""SARIF 2.1.0 rendering of diagnostics (``--format sarif``).

One renderer shared by ``lint`` and ``check-views``: a single-run SARIF
log whose rules are the distinct diagnostic codes and whose results
carry the repro severity mapped onto SARIF levels (``error`` ->
``error``, ``warning`` -> ``warning``, ``info`` -> ``note``).

Only what the diagnostics actually know is emitted: a result without a
file has no ``locations``; a location without a span has no ``region``
(SARIF regions are 1-based, like :class:`repro.span.Span`).  The
fingerprint of :mod:`repro.analysis.viewset.baseline` is carried as a
``partialFingerprints`` entry so SARIF viewers and the baseline file
agree on identity.

Output is deterministic (sorted rules, indent=2, trailing newline) so it
can be golden-file tested and diffed across CI runs.
"""

from __future__ import annotations

import json
from typing import Sequence

from .diagnostics import Diagnostic, Severity

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
                "master/Schemata/sarif-schema-2.1.0.json")

_LEVELS = {
    Severity.ERROR: "error",
    Severity.WARNING: "warning",
    Severity.INFO: "note",
}


def _location(diag: Diagnostic) -> dict | None:
    if diag.file is None:
        return None
    physical: dict = {"artifactLocation": {"uri": diag.file}}
    if diag.span is not None:
        physical["region"] = {
            "startLine": diag.span.line,
            "startColumn": diag.span.column,
            "endLine": diag.span.end_line,
            "endColumn": diag.span.end_column,
        }
    return {"physicalLocation": physical}


def _result(diag: Diagnostic) -> dict:
    from .viewset.baseline import fingerprint

    result: dict = {
        "ruleId": diag.code,
        "level": _LEVELS[diag.severity],
        "message": {"text": diag.message},
        "partialFingerprints": {"reproFingerprint/v1": fingerprint(diag)},
    }
    location = _location(diag)
    if location is not None:
        result["locations"] = [location]
    if diag.suggestion:
        result["message"]["text"] += f" (help: {diag.suggestion})"
    return result


def render_sarif(diags: Sequence[Diagnostic], *,
                 tool_name: str = "repro-lint") -> str:
    """The SARIF 2.1.0 log of *diags*, as deterministic JSON text."""
    rules = [{"id": code} for code in sorted({d.code for d in diags})]
    log = {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {"driver": {
                "name": tool_name,
                "rules": rules,
            }},
            "results": [_result(d) for d in diags],
        }],
    }
    return json.dumps(log, indent=2) + "\n"
