"""The analyzer: run every registered pass over a query + context.

:func:`analyze` is the library entry point behind ``python -m repro
lint``.  It builds an :class:`AnalysisContext`, runs the registered
passes (well-formedness, style/redundancy, DTD satisfiability, view-set
lints) and returns the findings sorted by file, position, and code.
Passes are pure query-level analyses: nothing here evaluates a query or
invokes the rewriter.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

from ..rewriting.constraints import Dtd
from ..tsl.ast import Query
from .diagnostics import Diagnostic, registered_passes

# Importing a pass module registers it; order here is report order for
# findings at identical positions.
from .passes import wellformed as _wellformed  # noqa: F401  (registers)
from .passes import style as _style            # noqa: F401  (registers)
from .passes import dtd as _dtd                # noqa: F401  (registers)
from .passes import views as _views            # noqa: F401  (registers)


@dataclass(frozen=True, slots=True)
class AnalysisContext:
    """Everything a pass may look at."""

    query: Query
    source_text: str | None = None
    source_name: str | None = None
    views: Mapping[str, Query] = field(default_factory=dict)
    view_files: Mapping[str, str] = field(default_factory=dict)
    dtd: Dtd | None = None


def _sort_key(diag: Diagnostic, main: str | None):
    span = diag.span
    return (
        diag.file is not None and diag.file != main,  # main file first
        diag.file or "",
        span.line if span else 0,
        span.column if span else 0,
        diag.code,
    )


def analyze(query: Query, *,
            source_text: str | None = None,
            source_name: str | None = None,
            views: Mapping[str, Query] | None = None,
            view_files: Mapping[str, str] | None = None,
            dtd: Dtd | None = None,
            passes: Iterable[str] | None = None) -> list[Diagnostic]:
    """Run the registered analysis passes and return sorted findings.

    ``views`` maps view names to parsed view queries (for the view-set
    lints); ``view_files`` optionally maps view names to file paths so
    findings are attributed to the right file.  ``passes`` restricts the
    run to a subset of pass names (see :func:`registered_passes`).
    """
    ctx = AnalysisContext(query=query, source_text=source_text,
                          source_name=source_name,
                          views=dict(views or {}),
                          view_files=dict(view_files or {}),
                          dtd=dtd)
    wanted = None if passes is None else set(passes)
    findings: list[Diagnostic] = []
    for name, pass_fn in registered_passes().items():
        if wanted is not None and name not in wanted:
            continue
        findings.extend(diag.with_file(source_name)
                        for diag in pass_fn(ctx))
    findings.sort(key=lambda d: _sort_key(d, source_name))
    return findings
