"""The diagnostics model: findings, severities, the pass registry, renderers.

A :class:`Diagnostic` is one finding of the static analyzer: a stable
code (``TSL001``), a :class:`Severity`, a human message, and — whenever
the analyzed query was parsed from text — a :class:`~repro.span.Span`
locating the offending construct.  ``suggestion`` optionally carries a
concrete fix, rendered as a ``help:`` line.

Passes register themselves with :func:`register_pass`; the analyzer in
:mod:`repro.analysis.analyzer` runs every registered pass in
registration order.  Rendering is flake8/rustc-flavoured::

    q.tsl:1:9: error: head variable W is not bound in the query body [TSL001]
        <f(P) x W> :- <P a V>@db
                ^
        help: bind W in a body condition or drop it from the head
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from enum import Enum
from typing import Callable, Iterable, Sequence

from ..span import Span, excerpt_lines, format_location


class Severity(str, Enum):
    """How bad a finding is; orders ``error > warning > info``."""

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    def __str__(self) -> str:  # render as bare "error", not "Severity.ERROR"
        return self.value


@dataclass(frozen=True, slots=True)
class Diagnostic:
    """One static-analysis finding."""

    code: str                      # stable, e.g. "TSL001"
    severity: Severity
    message: str
    span: Span | None = None
    file: str | None = None        # file path or view name the span is in
    suggestion: str | None = None  # optional concrete fix ("help:" line)

    def with_file(self, file: str | None) -> "Diagnostic":
        """A copy attributed to *file* (no-op when already attributed)."""
        if self.file is not None or file is None:
            return self
        return replace(self, file=file)

    def to_dict(self) -> dict:
        span = None
        if self.span is not None:
            span = {
                "line": self.span.line,
                "column": self.span.column,
                "end_line": self.span.end_line,
                "end_column": self.span.end_column,
            }
        return {
            "code": self.code,
            "severity": self.severity.value,
            "message": self.message,
            "file": self.file,
            "span": span,
            "suggestion": self.suggestion,
        }

    def __str__(self) -> str:
        return render_text(self)


# --------------------------------------------------------------------------
# Pass registry
# --------------------------------------------------------------------------

# A pass maps an AnalysisContext (see analyzer.py) to an iterable of
# Diagnostics.  Typed loosely to keep this module importable without the
# analyzer.
PassFn = Callable[[object], Iterable[Diagnostic]]

#: Pass scopes: ``"query"`` passes analyze one query (an
#: ``AnalysisContext``); ``"viewset"`` passes analyze a whole mediator
#: configuration (a ``ViewSetContext``, see ``analysis.viewset``).
PASS_SCOPES = ("query", "viewset")

_REGISTRY: dict[str, PassFn] = {}
_SCOPES: dict[str, str] = {}


def register_pass(name: str,
                  scope: str = "query") -> Callable[[PassFn], PassFn]:
    """Class decorator registering a pass under *name* (definition order).

    *scope* selects the context the pass receives: ``"query"`` (the
    default, run by :func:`~repro.analysis.analyzer.analyze`) or
    ``"viewset"`` (run by
    :func:`~repro.analysis.viewset.analyze_view_set`).
    """
    if scope not in PASS_SCOPES:
        raise ValueError(f"unknown pass scope {scope!r}; "
                         f"expected one of {PASS_SCOPES}")

    def decorator(fn: PassFn) -> PassFn:
        _REGISTRY[name] = fn
        _SCOPES[name] = scope
        return fn

    return decorator


def registered_passes(scope: str = "query") -> dict[str, PassFn]:
    """The registered passes of *scope*, in registration order."""
    return {name: fn for name, fn in _REGISTRY.items()
            if _SCOPES[name] == scope}


# --------------------------------------------------------------------------
# Rendering
# --------------------------------------------------------------------------

def render_text(diag: Diagnostic, *, text: str | None = None) -> str:
    """Render one diagnostic, with a caret excerpt when *text* is given."""
    location = format_location(diag.span, diag.file)
    prefix = f"{location}: " if location else ""
    lines = [f"{prefix}{diag.severity}: {diag.message} [{diag.code}]"]
    if text is not None and diag.span is not None:
        lines.extend(excerpt_lines(text, diag.span))
    if diag.suggestion:
        lines.append(f"    help: {diag.suggestion}")
    return "\n".join(lines)


def severity_counts(diags: Sequence[Diagnostic]) -> dict[str, int]:
    counts = {s.value: 0 for s in Severity}
    for diag in diags:
        counts[diag.severity.value] += 1
    return counts


def render_json(diags: Sequence[Diagnostic], *, indent: int = 2) -> str:
    """The machine-readable report: diagnostics plus a severity summary."""
    payload = {
        "diagnostics": [d.to_dict() for d in diags],
        "summary": severity_counts(diags),
    }
    return json.dumps(payload, indent=indent)
