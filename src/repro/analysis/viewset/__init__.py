"""Whole-configuration analysis of a mediator's view set (TSL4xx).

Where :mod:`repro.analysis.analyzer` lints one query, this subpackage
analyzes the *configuration* the mediator will serve with: every
registered view, the optional DTD, and the capability records.  The
passes (see :mod:`.passes`) report views that are duplicates (TSL401),
subsumed (TSL402), unsatisfiable under the DTD (TSL403), unsafe
(TSL404), or unreachable through their capability binding patterns
(TSL405) -- the dead weight that bloats Step 1A's candidate search.

The same analysis also produces the :class:`.signature.LabelSignatureIndex`
the rewriter consumes as a sound pre-filter (``signature_prefilter``).

Exports resolve lazily (PEP 562): :mod:`repro.rewriting.rewriter`
imports :mod:`.signature` through this package, and an eager import of
:mod:`.passes` here would pull ``rewriting.contained`` -> ``rewriter``
back in as a cycle.
"""

from typing import Any

_EXPORTS = {
    "LabelSignatureIndex": ".signature",
    "QueryProfile": ".signature",
    "ViewSignature": ".signature",
    "query_profile": ".signature",
    "view_signature": ".signature",
    "ViewSetContext": ".analyzer",
    "analyze_view_set": ".analyzer",
    "MediatorConfig": ".config",
    "load_config": ".config",
    "Baseline": ".baseline",
    "fingerprint": ".baseline",
    "load_baseline": ".baseline",
    "write_baseline": ".baseline",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str) -> Any:
    target = _EXPORTS.get(name)
    if target is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    from importlib import import_module

    return getattr(import_module(target, __name__), name)


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_EXPORTS))
