"""Run the viewset-scope passes over a whole mediator configuration.

:func:`analyze_view_set` is the library entry point behind ``python -m
repro check-views`` (and ``lint --views-only``).  It builds a
:class:`ViewSetContext` -- the view set plus shared, memoized derived
artifacts (chased bodies, canonical keys, the label-signature index) so
the passes do not chase the same view five times -- runs every pass
registered with ``scope="viewset"``, and returns the findings sorted
with the same key the per-query analyzer uses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

from ...errors import ChaseContradictionError
from ...mediator.capabilities import CapabilityView
from ...rewriting.constraints import Dtd
from ...tsl.ast import Query
from ..analyzer import _sort_key
from ..diagnostics import Diagnostic, registered_passes
from .signature import LabelSignatureIndex, view_signature

# Importing the pass module registers the TSL4xx passes.
from . import passes as _passes  # noqa: F401  (registers)


@dataclass
class ViewSetContext:
    """Everything a viewset pass may look at, plus shared caches.

    ``view_files`` maps a view name to the attribution string findings
    carry (a file path, or the config-relative pseudo-path of an inline
    view); a view absent from it was registered programmatically, and
    passes must suppress its spans (there is no text to excerpt from).
    """

    views: Mapping[str, Query]
    view_files: Mapping[str, str] = field(default_factory=dict)
    dtd: Dtd | None = None
    capabilities: Mapping[str, CapabilityView] = field(default_factory=dict)
    capability_files: Mapping[str, str] = field(default_factory=dict)

    _chased: dict = field(default_factory=dict, repr=False)
    _keys: dict = field(default_factory=dict, repr=False)
    _index: LabelSignatureIndex | None = field(default=None, repr=False)

    # -- derived artifacts, shared across passes ------------------------

    def chased(self, name: str) -> Query | None:
        """View *name* chased under the DTD; None when contradictory."""
        if name not in self._chased:
            from ...rewriting.chase import chase
            try:
                self._chased[name] = chase(self.views[name], self.dtd)
            except ChaseContradictionError:
                self._chased[name] = None
        return self._chased[name]

    def key(self, name: str) -> str:
        """Canonical hash of the chased view (raw body on contradiction)."""
        if name not in self._keys:
            from ...rewriting.canon import query_key
            chased = self.chased(name)
            self._keys[name] = query_key(
                chased if chased is not None else self.views[name])
        return self._keys[name]

    def index(self) -> LabelSignatureIndex:
        """The label-signature index of the satisfiable views."""
        if self._index is None:
            signatures = {}
            for name in sorted(self.views):
                chased = self.chased(name)
                if chased is not None:
                    signatures[name] = view_signature(chased)
            self._index = LabelSignatureIndex(signatures)
        return self._index

    # -- attribution ----------------------------------------------------

    def file_of(self, name: str) -> str:
        """Finding attribution: the view's file, or its name."""
        return self.view_files.get(name, name)

    def span_of(self, name: str, span):
        """*span*, but only when view *name* has renderable text."""
        return span if name in self.view_files else None


def analyze_view_set(views: Mapping[str, Query], *,
                     view_files: Mapping[str, str] | None = None,
                     dtd: Dtd | None = None,
                     capabilities: Mapping[str, CapabilityView] | None = None,
                     capability_files: Mapping[str, str] | None = None,
                     passes: Iterable[str] | None = None
                     ) -> list[Diagnostic]:
    """Run the viewset-scope passes and return sorted findings.

    ``passes`` restricts the run to a subset of pass names (see
    ``registered_passes("viewset")``).
    """
    ctx = ViewSetContext(views=dict(views),
                         view_files=dict(view_files or {}),
                         dtd=dtd,
                         capabilities=dict(capabilities or {}),
                         capability_files=dict(capability_files or {}))
    wanted = None if passes is None else set(passes)
    findings: list[Diagnostic] = []
    for name, pass_fn in registered_passes("viewset").items():
        if wanted is not None and name not in wanted:
            continue
        findings.extend(pass_fn(ctx))
    findings.sort(key=lambda d: _sort_key(d, None))
    return findings
