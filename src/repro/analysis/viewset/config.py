"""Mediator configuration files for ``check-views``.

A configuration is one JSON file describing everything the mediator
would register -- so the analyzer sees exactly what the rewriter would::

    {
      "dtd": "people.dtd",
      "views": {
        "v_pubs": "view_pubs.tsl",
        "inline": {"text": "<v(P) name N> :- <P name N>@db"}
      },
      "capabilities": {
        "by_name": "cap_by_name.tsl",
        "c2": {"text": "<c(P) name $N> :- <P name $N>@db"}
      }
    }

File paths are resolved relative to the config file's directory and kept
relative in finding attributions (stable across checkouts, which the
baseline fingerprints rely on).  ``dtd`` may also be an object
``{"file": ..., "source": ...}`` when the constrained source is not the
default ``db``.  Inline entries are attributed to the pseudo-path
``CONFIG#views.NAME`` and their text is carried in ``texts`` so carets
still render.

Structural problems raise :class:`~repro.errors.ConfigError`; TSL syntax
errors inside an individual view become ``TSL000`` diagnostics instead,
so one broken view does not hide the rest of the report.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from ...errors import ConfigError, TslError
from ...mediator.capabilities import CapabilityView, parameters_of
from ...rewriting.constraints import Dtd, parse_dtd
from ...tsl.ast import Query
from ...tsl.parser import parse_query
from ..diagnostics import Diagnostic, Severity

#: Diagnostic code for syntax errors (mirrors repro.cli.SYNTAX_CODE,
#: which cannot be imported here without a cycle).
SYNTAX_CODE = "TSL000"


@dataclass
class MediatorConfig:
    """A loaded mediator configuration, ready for the viewset analyzer.

    ``texts`` maps every attribution string appearing in ``view_files``
    / ``capability_files`` (plus the DTD file) to its source text, for
    caret rendering.  ``diagnostics`` carries the per-view parse errors
    (``TSL000``) found while loading.
    """

    path: str
    views: dict[str, Query] = field(default_factory=dict)
    view_files: dict[str, str] = field(default_factory=dict)
    texts: dict[str, str] = field(default_factory=dict)
    dtd: Dtd | None = None
    dtd_file: str | None = None
    capabilities: dict[str, CapabilityView] = field(default_factory=dict)
    capability_files: dict[str, str] = field(default_factory=dict)
    diagnostics: list[Diagnostic] = field(default_factory=list)


def _syntax_diagnostic(exc: TslError, file: str) -> Diagnostic:
    code = getattr(exc, "code", None) or SYNTAX_CODE
    message = getattr(exc, "message", None) or str(exc)
    return Diagnostic(code, Severity.ERROR, message,
                      span=getattr(exc, "span", None), file=file)


def _require_mapping(value, what: str, path: str) -> dict:
    if not isinstance(value, dict):
        raise ConfigError(f"{path}: {what} must be a JSON object, "
                          f"got {type(value).__name__}")
    return value


def _load_entry(entry, name: str, section: str, base: Path,
                path: str) -> tuple[str, str]:
    """Resolve one views/capabilities entry to (attribution, text)."""
    if isinstance(entry, str):
        file = entry
        target = base / file
        try:
            text = target.read_text(encoding="utf-8")
        except OSError as exc:
            raise ConfigError(
                f"{path}: {section}.{name}: cannot read {file}: "
                f"{exc}") from exc
        return file, text
    if isinstance(entry, dict):
        text = entry.get("text")
        if not isinstance(text, str):
            raise ConfigError(
                f"{path}: {section}.{name}: inline entries need a "
                "string \"text\" field")
        return f"{path}#{section}.{name}", text
    raise ConfigError(
        f"{path}: {section}.{name} must be a file path or an object "
        f"with a \"text\" field, got {type(entry).__name__}")


def load_config(path: str) -> MediatorConfig:
    """Load and parse a mediator configuration file."""
    config_path = Path(path)
    try:
        raw = config_path.read_text(encoding="utf-8")
    except OSError as exc:
        raise ConfigError(f"cannot read config {path}: {exc}") from exc
    try:
        data = json.loads(raw)
    except json.JSONDecodeError as exc:
        raise ConfigError(f"{path}: not valid JSON: {exc}") from exc
    data = _require_mapping(data, "the configuration", path)
    unknown = set(data) - {"dtd", "views", "capabilities"}
    if unknown:
        raise ConfigError(f"{path}: unknown configuration key(s): "
                          f"{', '.join(sorted(unknown))}")

    base = config_path.parent
    config = MediatorConfig(path=path)

    dtd_spec = data.get("dtd")
    if dtd_spec is not None:
        if isinstance(dtd_spec, str):
            dtd_file, dtd_source = dtd_spec, "db"
        else:
            dtd_spec = _require_mapping(dtd_spec, "\"dtd\"", path)
            dtd_file = dtd_spec.get("file")
            dtd_source = dtd_spec.get("source", "db")
            if not isinstance(dtd_file, str):
                raise ConfigError(f"{path}: \"dtd\" needs a string "
                                  "\"file\" field")
        try:
            dtd_text = (base / dtd_file).read_text(encoding="utf-8")
        except OSError as exc:
            raise ConfigError(f"{path}: cannot read DTD {dtd_file}: "
                              f"{exc}") from exc
        config.dtd = parse_dtd(dtd_text, source=dtd_source)
        config.dtd_file = dtd_file
        config.texts[dtd_file] = dtd_text

    views = _require_mapping(data.get("views", {}), "\"views\"", path)
    for name in sorted(views):
        attribution, text = _load_entry(views[name], name, "views",
                                        base, path)
        config.texts[attribution] = text
        try:
            config.views[name] = parse_query(text, name=name)
            config.view_files[name] = attribution
        except TslError as exc:
            config.diagnostics.append(
                _syntax_diagnostic(exc, attribution))

    capabilities = _require_mapping(data.get("capabilities", {}),
                                    "\"capabilities\"", path)
    for name in sorted(capabilities):
        attribution, text = _load_entry(capabilities[name], name,
                                        "capabilities", base, path)
        config.texts[attribution] = text
        try:
            query = parse_query(text, name=name)
        except TslError as exc:
            config.diagnostics.append(
                _syntax_diagnostic(exc, attribution))
            continue
        config.capabilities[name] = CapabilityView(
            name, query, parameters_of(query))
        config.capability_files[name] = attribution

    return config
