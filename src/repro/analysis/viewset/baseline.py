"""Baseline suppression for ``check-views``: gate on *new* findings only.

An existing configuration usually carries known findings nobody wants a
flag-day cleanup for.  A baseline file records their fingerprints;
``check-views --baseline FILE`` reports and gates only on findings whose
fingerprint is absent, and ``--update-baseline`` rewrites the file from
the current report.

A fingerprint is ``CODE:FILE:HASH`` where ``HASH`` is a short blake2b of
the message.  Spans are deliberately excluded: editing an unrelated line
of a view file must not un-suppress every finding below it.  Messages
name the offending views/variables, so distinct findings in one file
keep distinct fingerprints.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Sequence

from ...errors import ConfigError
from ..diagnostics import Diagnostic

#: Bumped when the fingerprint recipe or file layout changes.
BASELINE_SCHEMA_VERSION = 1


def fingerprint(diag: Diagnostic) -> str:
    """The stable suppression key of *diag* (span-independent)."""
    digest = hashlib.blake2b(diag.message.encode("utf-8"),
                             digest_size=6).hexdigest()
    return f"{diag.code}:{diag.file or ''}:{digest}"


@dataclass(frozen=True)
class Baseline:
    """A set of suppressed fingerprints."""

    fingerprints: frozenset[str]

    def partition(self, diags: Sequence[Diagnostic]
                  ) -> tuple[list[Diagnostic], list[Diagnostic]]:
        """Split *diags* into (new, suppressed), preserving order."""
        new: list[Diagnostic] = []
        suppressed: list[Diagnostic] = []
        for diag in diags:
            (suppressed if fingerprint(diag) in self.fingerprints
             else new).append(diag)
        return new, suppressed

    def __len__(self) -> int:
        return len(self.fingerprints)


def baseline_payload(diags: Sequence[Diagnostic]) -> dict:
    """The JSON document suppressing exactly *diags*.

    Entries carry the code/file/message alongside the fingerprint so a
    reviewer can audit what a baseline hides without recomputing hashes.
    """
    entries = sorted(
        ({"fingerprint": fingerprint(d), "code": d.code,
          "file": d.file, "message": d.message} for d in diags),
        key=lambda e: e["fingerprint"])
    return {"schema_version": BASELINE_SCHEMA_VERSION,
            "suppressions": entries}


def write_baseline(path: str, diags: Sequence[Diagnostic]) -> None:
    """Write a baseline file suppressing exactly *diags*."""
    Path(path).write_text(
        json.dumps(baseline_payload(diags), indent=2) + "\n",
        encoding="utf-8")


def load_baseline(path: str) -> Baseline:
    """Load a baseline file written by :func:`write_baseline`."""
    try:
        data = json.loads(Path(path).read_text(encoding="utf-8"))
    except OSError as exc:
        raise ConfigError(f"cannot read baseline {path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise ConfigError(f"{path}: not valid JSON: {exc}") from exc
    if not isinstance(data, dict) \
            or data.get("schema_version") != BASELINE_SCHEMA_VERSION:
        raise ConfigError(
            f"{path}: not a baseline file (expected schema_version "
            f"{BASELINE_SCHEMA_VERSION})")
    suppressions = data.get("suppressions", [])
    if not isinstance(suppressions, list):
        raise ConfigError(f"{path}: \"suppressions\" must be a list")
    fingerprints = set()
    for entry in suppressions:
        if not isinstance(entry, dict) \
                or not isinstance(entry.get("fingerprint"), str):
            raise ConfigError(f"{path}: each suppression needs a string "
                              "\"fingerprint\" field")
        fingerprints.add(entry["fingerprint"])
    return Baseline(frozenset(fingerprints))
