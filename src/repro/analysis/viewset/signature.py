"""Label signatures: a sound necessary condition for containment mappings.

Step 1A's containment mappings are *one-way* matches
(:mod:`repro.rewriting.mappings`): only view-side variables are bound,
so every syntactic constant in a view body path must literally reappear
in the query path it maps into --

* a constant **step label** in the view matches only an identical
  constant label at the same depth of some query path;
* a constant **leaf value** matches only an identical constant leaf
  (the set-mapping absorption of Example 3.2 explicitly refuses
  constant leaves);
* a condition's **source** must equal the target condition's source
  (:func:`~repro.rewriting.mappings.map_path_into` checks it first).

Consequently, if a view body mentions a constant label, leaf, or source
the query never mentions, *no* containment mapping from the view into
the query exists -- the view is irrelevant to the query (Lemma 5.1) and
Step 1A can skip it without enumerating anything.  That is the
:class:`ViewSignature` / :class:`QueryProfile` subset test below, and
the :class:`LabelSignatureIndex` is the per-view-set artifact the
analyzer builds and the rewriter consumes (``signature_prefilter``).

Signatures must be computed on the *chased* (prepared) view and checked
against the *chased* target query: the chase's label inference
(Section 3.3) rewrites both sides consistently, whereas a raw view may
lose or gain constants during chasing.

This module depends only on the TSL AST and path machinery, so the
rewriter can import it without dragging the analysis passes (and their
rewriting imports) into a cycle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from ...logic.terms import Constant
from ...tsl.ast import Query
from ...tsl.normalize import query_paths

__all__ = ["ViewSignature", "QueryProfile", "view_signature",
           "query_profile", "LabelSignatureIndex"]


@dataclass(frozen=True, slots=True)
class QueryProfile:
    """What a target query *offers*: its constant labels/leaves/sources."""

    labels: frozenset[str]
    leaves: frozenset[str]
    sources: frozenset[str]


@dataclass(frozen=True, slots=True)
class ViewSignature:
    """What a view body *requires* of any query it can map into."""

    labels: frozenset[str]
    leaves: frozenset[str]
    sources: frozenset[str]

    def admissible_for(self, profile: QueryProfile) -> bool:
        """False only when no containment mapping can possibly exist."""
        return (self.labels <= profile.labels
                and self.leaves <= profile.leaves
                and self.sources <= profile.sources)

    def missing_from(self, profile: QueryProfile) -> str:
        """Human-readable account of the failed subset test."""
        parts = []
        for kind, required, offered in (
                ("label", self.labels, profile.labels),
                ("leaf value", self.leaves, profile.leaves),
                ("source", self.sources, profile.sources)):
            missing = sorted(required - offered)
            if missing:
                noun = kind if len(missing) == 1 else kind + "s"
                parts.append(f"{noun} {', '.join(missing)}")
        if not parts:
            return "signature is admissible"
        return ("the query never mentions the view body's "
                + "; ".join(parts))

    def to_json(self) -> dict:
        return {"labels": sorted(self.labels),
                "leaves": sorted(self.leaves),
                "sources": sorted(self.sources)}


def _signature_parts(query: Query) -> tuple[set[str], set[str], set[str]]:
    labels: set[str] = set()
    leaves: set[str] = set()
    sources: set[str] = set()
    for path in query_paths(query):
        sources.add(path.source)
        for _oid, label in path.steps:
            if isinstance(label, Constant):
                labels.add(label.value)
        if isinstance(path.leaf, Constant):
            leaves.add(path.leaf.value)
    return labels, leaves, sources


def view_signature(view: Query) -> ViewSignature:
    """The signature of a (chased) view body."""
    labels, leaves, sources = _signature_parts(view)
    return ViewSignature(frozenset(labels), frozenset(leaves),
                         frozenset(sources))


def query_profile(query: Query) -> QueryProfile:
    """The profile of a (chased) target query body."""
    labels, leaves, sources = _signature_parts(query)
    return QueryProfile(frozenset(labels), frozenset(leaves),
                        frozenset(sources))


class LabelSignatureIndex:
    """Per-view signatures plus the label -> views inverted index.

    ``signatures`` maps each view name to the :class:`ViewSignature` of
    its *chased* body.  The inverted index answers "which views require
    this label": a view appears under every constant label its body
    demands, so a query mentioning none of a view's labels can skip it.
    """

    __slots__ = ("signatures", "_by_label")

    def __init__(self, signatures: Mapping[str, ViewSignature]) -> None:
        self.signatures: dict[str, ViewSignature] = dict(signatures)
        by_label: dict[str, set[str]] = {}
        for name, sig in self.signatures.items():
            for label in sig.labels:
                by_label.setdefault(label, set()).add(name)
        self._by_label = {label: frozenset(names)
                          for label, names in by_label.items()}

    @classmethod
    def from_views(cls, views: Mapping[str, Query], constraints=None, *,
                   budget=None) -> "LabelSignatureIndex":
        """Build the index by chasing every view under *constraints*.

        Views whose body contradicts the object-id key dependency are
        left out of the index (they are unsatisfiable; the analyzer
        reports them separately and the rewriter never prunes a view it
        has no signature for).
        """
        from ...errors import ChaseContradictionError
        from ...rewriting.chase import chase
        signatures: dict[str, ViewSignature] = {}
        for name in sorted(views):
            try:
                prepared = chase(views[name], constraints, budget=budget)
            except ChaseContradictionError:
                continue
            signatures[name] = view_signature(prepared)
        return cls(signatures)

    def signature(self, name: str) -> ViewSignature | None:
        """The signature of view *name*, or None when unknown."""
        return self.signatures.get(name)

    def admissible(self, name: str, profile: QueryProfile) -> bool:
        """False only when view *name* provably has no mapping.

        Unknown views are admissible -- the prefilter never prunes a
        view it has no signature for.
        """
        sig = self.signatures.get(name)
        return sig is None or sig.admissible_for(profile)

    def admissible_views(self, profile: QueryProfile) -> list[str]:
        """The view names that survive the prefilter, sorted."""
        return [name for name in sorted(self.signatures)
                if self.admissible(name, profile)]

    def views_for_label(self, label: str) -> frozenset[str]:
        """Views whose bodies require constant *label*."""
        return self._by_label.get(label, frozenset())

    def labels(self) -> list[str]:
        """Every constant label some view requires, sorted."""
        return sorted(self._by_label)

    def to_json(self) -> dict:
        return {
            "views": {name: sig.to_json()
                      for name, sig in sorted(self.signatures.items())},
            "by_label": {label: sorted(views)
                         for label, views in sorted(self._by_label.items())},
        }

    def __len__(self) -> int:
        return len(self.signatures)
