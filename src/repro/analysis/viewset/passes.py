"""The viewset-scope lint passes (TSL401-TSL405).

Each pass receives a :class:`~repro.analysis.viewset.analyzer.ViewSetContext`
and examines the *configuration* -- relations between views that no
per-query pass can see:

* **TSL401** duplicate view: canonically equivalent (same
  :func:`~repro.rewriting.canon.query_key` after the chase) to an
  earlier view, so Step 1A enumerates its mappings twice for nothing.
* **TSL402** subsumed view: contained in another view
  (:func:`~repro.rewriting.contained.contained_in`), so every candidate
  it could contribute the subsumer contributes too.
* **TSL403** unsatisfiable view: empty on every legal database -- its
  body trips a TSL2xx DTD check, or the chase derives a contradiction.
* **TSL404** unsafe view: a head variable not range-restricted by the
  body; the rewriter refuses such a view at mapping time, so it is dead
  configuration weight (and usually a typo).
* **TSL405** capability-unreachable view: a ``$``-parameter that no CBR
  execution order can ever bind to a constant, because it never occurs
  in a bindable (label or value) position of the body.

Spans are emitted only for views the context can attribute to real text
(``ctx.span_of``); programmatically registered views get a name-only
attribution -- the TSL301 lesson (a span without its text renders a
caret into the wrong file).
"""

from __future__ import annotations

from typing import Iterator

from ...mediator.capabilities import bindable_parameters
from ...rewriting.contained import contained_in
from ..diagnostics import Diagnostic, Severity, register_pass
from ..passes.dtd import dtd_diagnostics
from ..passes.wellformed import _first_span
from .signature import query_profile


@register_pass("view-duplicate", scope="viewset")
def duplicate_pass(ctx) -> Iterator[Diagnostic]:
    """TSL401: views with identical canonical forms."""
    first_with_key: dict[str, str] = {}
    for name in sorted(ctx.views):
        original = first_with_key.setdefault(ctx.key(name), name)
        if original == name:
            continue
        yield Diagnostic(
            "TSL401", Severity.WARNING,
            f"view {name} is canonically equivalent to view {original}; "
            "the rewriter enumerates both, but they contribute identical "
            "candidates",
            span=ctx.span_of(name, ctx.views[name].head.span),
            file=ctx.file_of(name),
            suggestion=f"unregister {name} (or {original}) -- one copy "
                       "answers every query the pair does")


@register_pass("view-subsumed", scope="viewset")
def subsumed_pass(ctx) -> Iterator[Diagnostic]:
    """TSL402: views contained in another registered view.

    Pairs with equal canonical keys are TSL401's business and skipped
    here; unsatisfiable views are TSL403's and skipped too (the empty
    view is vacuously contained in everything).  The signature index
    pre-screens each direction: testing ``a ⊆ b`` needs a containment
    mapping from ``b`` into ``a``, which requires ``b``'s signature to
    be admissible for ``a``'s profile.
    """
    index = ctx.index()
    names = [n for n in sorted(ctx.views) if ctx.chased(n) is not None]
    profiles = {n: query_profile(ctx.chased(n)) for n in names}
    subsumed: set[str] = set()
    for i, a in enumerate(names):
        for b in names[i + 1:]:
            if ctx.key(a) == ctx.key(b):
                continue
            a_in_b = (index.admissible(b, profiles[a])
                      and contained_in(ctx.views[a], ctx.views[b], ctx.dtd))
            b_in_a = (index.admissible(a, profiles[b])
                      and contained_in(ctx.views[b], ctx.views[a], ctx.dtd))
            if a_in_b and b_in_a:
                # Equivalent but not syntactically canonical-equal:
                # report the later name, like TSL401 does.
                pair = [(b, a)]
            elif a_in_b:
                pair = [(a, b)]
            elif b_in_a:
                pair = [(b, a)]
            else:
                continue
            for loser, winner in pair:
                if loser in subsumed:
                    continue
                subsumed.add(loser)
                yield Diagnostic(
                    "TSL402", Severity.WARNING,
                    f"view {loser} is contained in view {winner}; every "
                    f"object it returns, {winner} returns too, so it can "
                    "never contribute a candidate the subsumer does not",
                    span=ctx.span_of(loser, ctx.views[loser].head.span),
                    file=ctx.file_of(loser),
                    suggestion=f"drop {loser}, or widen it if it was "
                               "meant to cover data the subsumer misses")


@register_pass("view-dtd", scope="viewset")
def dtd_pass(ctx) -> Iterator[Diagnostic]:
    """TSL403: views that are empty on every legal database."""
    for name in sorted(ctx.views):
        view = ctx.views[name]
        if ctx.dtd is not None:
            for diag in dtd_diagnostics(view, ctx.dtd):
                if diag.code != "TSL201":   # TSL202 is advice, not emptiness
                    continue
                yield Diagnostic(
                    "TSL403", Severity.WARNING,
                    f"view {name} is unsatisfiable under the DTD: "
                    f"{diag.message}",
                    span=ctx.span_of(name, diag.span),
                    file=ctx.file_of(name),
                    suggestion=diag.suggestion)
        if ctx.chased(name) is None:
            yield Diagnostic(
                "TSL403", Severity.WARNING,
                f"view {name} is unsatisfiable: the chase derives a "
                "contradiction from its body (the oid key dependency "
                "forces one object to carry two distinct atomic values)",
                span=ctx.span_of(name, view.head.span),
                file=ctx.file_of(name),
                suggestion="the view is empty on every database; fix the "
                           "conflicting conditions or unregister it")


@register_pass("view-safety", scope="viewset")
def safety_pass(ctx) -> Iterator[Diagnostic]:
    """TSL404: head variables not range-restricted by the body."""
    for name in sorted(ctx.views):
        view = ctx.views[name]
        missing = view.head_variables() - view.body_variables()
        for var_name in sorted(v.name for v in missing):
            yield Diagnostic(
                "TSL404", Severity.ERROR,
                f"view {name} is unsafe: head variable {var_name} is not "
                "bound in the view body, so no containment mapping can "
                "ever instantiate it",
                span=ctx.span_of(
                    name, _first_span(view.head.variables(), var_name)),
                file=ctx.file_of(name),
                suggestion=f"bind {var_name} in a body condition or drop "
                           "it from the head")


@register_pass("view-capability", scope="viewset")
def capability_pass(ctx) -> Iterator[Diagnostic]:
    """TSL405: capability parameters no execution order can bind.

    ``CapabilityView.instantiate`` requires every ``$``-parameter bound
    to a constant; the CBR discovers those constants from label/value
    positions during the mapping step.  A parameter that never occurs in
    a bindable body position -- absent from the body, or used only as an
    object id -- can therefore never be supplied, and the capability is
    unusable in any execution order.
    """
    for name in sorted(ctx.capabilities):
        capability = ctx.capabilities[name]
        bindable = {v.name for v in bindable_parameters(capability.query)}
        for param in sorted(v.name for v in capability.parameters):
            if param in bindable:
                continue
            body_vars = {v.name
                         for v in capability.query.body_variables()}
            where = ("only in object-id positions" if param in body_vars
                     else "nowhere in the body")
            yield Diagnostic(
                "TSL405", Severity.WARNING,
                f"capability {name} is unreachable: parameter {param} "
                f"occurs {where}, so no execution order can ever bind it "
                "to a constant and instantiate() always fails",
                span=(_first_span(capability.query.all_variables(), param)
                      if name in ctx.capability_files else None),
                file=ctx.capability_files.get(name, name),
                suggestion=f"use {param} in a label or value field of the "
                           "body, or drop the parameter")
