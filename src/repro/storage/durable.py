"""A disk-backed :class:`~repro.repository.Store`: snapshot + WAL.

The paper's Section 1 repository scenario answers queries from cached
and materialized results; for that to survive a restart the base OEM
store itself must be durable.  :class:`DurableStore` keeps the whole
database in memory (the evaluator works on :class:`OemDatabase`) and
makes every mutation durable with the standard two-tier scheme:

* each ``add_*`` appends one JSON record to an append-only write-ahead
  log (``store/wal.jsonl``) before touching the in-memory image;
* :meth:`compact` folds the log into a sorted, schema-versioned
  snapshot written crash-safely (temp file + fsync + atomic rename)
  and truncates the log.

Opening a store loads the snapshot and replays the log, tolerating a
torn final record (the one write a crash can interrupt).  The store
*version* -- the staleness clock of the materialized views and the
query cache -- is ``snapshot version + replayed records``, so it is
stable across restarts and the persisted cache entries tagged with it
remain valid.

``autocompact_ops`` bounds the log: after that many appended records
the next mutation triggers a compaction (the "periodic flush" knob;
0 disables it).  Explicit :meth:`flush` fsyncs the log without paying
for a snapshot.
"""

from __future__ import annotations

import os
import time
from pathlib import Path
from typing import IO

from ..errors import StorageError
from ..logic.terms import Atom
from ..oem.model import OemDatabase, OidLike, as_oid
from ..oem.serialize import (database_from_json, database_to_json,
                             term_from_json, term_to_json)
from ..repository.store import Store
from .format import (KIND_SNAPSHOT, STORAGE_SCHEMA_VERSION, StorageLayout,
                     atomic_write_json, check_document, iter_wal, json_line,
                     read_document, wal_value)

__all__ = ["DurableStore", "current_store_version"]


def current_store_version(layout: StorageLayout) -> int | None:
    """The store version at *layout* without loading the database.

    Snapshot version plus pending WAL records -- exactly what
    :meth:`DurableStore.open` would arrive at -- or ``None`` when the
    directory holds no store yet.  Used by the server to tag persisted
    session memos without paying for a full store load.
    """
    version = None
    if layout.snapshot.exists():
        snapshot = read_document(layout.snapshot)
        check_document(snapshot, KIND_SNAPSHOT, layout.snapshot)
        version = snapshot["version"]
    records = iter_wal(layout.wal)
    if records:
        version = (version or 0) + len(records)
    return version


class DurableStore(Store):
    """A :class:`Store` whose state survives process restarts."""

    def __init__(self, layout: StorageLayout, name: str = "db", *,
                 autocompact_ops: int = 0, metrics=None) -> None:
        Store.__init__(self, name)
        self.layout = layout
        self.autocompact_ops = autocompact_ops
        self.metrics = metrics
        self.wal_records = 0
        self._wal_handle: IO[str] | None = None
        self._replaying = False

    # -- lifecycle -------------------------------------------------------------

    @classmethod
    def create(cls, root: str | Path, name: str = "db", *,
               cache_shards: int = 8, force: bool = False,
               autocompact_ops: int = 0, metrics=None) -> "DurableStore":
        """Initialize *root* and return the (empty) open store."""
        layout = StorageLayout(root)
        layout.create(name, cache_shards, force=force)
        store = cls(layout, name, autocompact_ops=autocompact_ops,
                    metrics=metrics)
        store.compact()          # write the empty version-0 snapshot
        return store

    @classmethod
    def open(cls, root: str | Path, *, autocompact_ops: int = 0,
             metrics=None) -> "DurableStore":
        """Open an initialized store: load the snapshot, replay the WAL."""
        layout = StorageLayout(root)
        manifest = layout.read_manifest()
        store = cls(layout, manifest["name"],
                    autocompact_ops=autocompact_ops, metrics=metrics)
        store._replaying = True
        try:
            if layout.snapshot.exists():
                snapshot = read_document(layout.snapshot)
                check_document(snapshot, KIND_SNAPSHOT, layout.snapshot)
                store.db = database_from_json(snapshot["database"])
                store.version = snapshot["version"]
                if store.db.name != manifest["name"]:
                    raise StorageError(
                        f"{layout.snapshot}: snapshot is for database "
                        f"{store.db.name!r}, manifest says "
                        f"{manifest['name']!r}")
            records = iter_wal(layout.wal)
            for record in records:
                store._apply(record)
            store.wal_records = len(records)
        finally:
            store._replaying = False
        store._count("store.opens")
        store._count("store.wal.replayed", len(records))
        return store

    @property
    def cache_shards(self) -> int:
        return self.layout.read_manifest().get("cache_shards", 0)

    def close(self) -> None:
        """Flush and release the WAL handle (reopen-safe)."""
        if self._wal_handle is not None:
            self.flush()
            self._wal_handle.close()
            self._wal_handle = None

    def __enter__(self) -> "DurableStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- metrics ---------------------------------------------------------------

    def _count(self, name: str, amount: int = 1) -> None:
        if self.metrics is not None and amount:
            self.metrics.increment(name, amount)

    def _observe(self, name: str, seconds: float) -> None:
        if self.metrics is not None:
            self.metrics.observe(name, seconds)

    # -- the write-ahead log ---------------------------------------------------

    def _append(self, record: dict) -> None:
        if self._replaying:
            return
        if self._wal_handle is None:
            self.layout.store_dir.mkdir(parents=True, exist_ok=True)
            self._wal_handle = open(self.layout.wal, "a",
                                    encoding="utf-8")
        started = time.perf_counter() if self.metrics is not None else 0.0
        self._wal_handle.write(json_line(record))
        self._wal_handle.flush()
        if self.metrics is not None:
            self._observe("store.wal.append.seconds",
                          time.perf_counter() - started)
        self.wal_records += 1
        self._count("store.ops")
        if self.autocompact_ops and self.wal_records >= self.autocompact_ops:
            self.compact()

    def _apply(self, record: dict) -> None:
        """Replay one WAL record through the normal mutation path."""
        op = record.get("op")
        if op == "atomic":
            self.add_atomic(term_from_json(record["oid"]),
                            record["label"], record["value"])
        elif op == "set":
            self.add_set(term_from_json(record["oid"]), record["label"])
        elif op == "child":
            self.add_child(term_from_json(record["parent"]),
                           term_from_json(record["child"]))
        elif op == "root":
            self.add_root(term_from_json(record["oid"]))
        else:
            raise StorageError(f"unknown WAL op {op!r} in {self.layout.wal}")

    # -- logged mutations ------------------------------------------------------

    def add_atomic(self, oid: OidLike, label: Atom, value: Atom) -> OidLike:
        self._append({"op": "atomic", "oid": term_to_json(as_oid(oid)),
                      "label": wal_value(label),
                      "value": wal_value(value)})
        return super().add_atomic(oid, label, value)

    def add_set(self, oid: OidLike, label: Atom) -> OidLike:
        self._append({"op": "set", "oid": term_to_json(as_oid(oid)),
                      "label": wal_value(label)})
        return super().add_set(oid, label)

    def add_child(self, parent: OidLike, child: OidLike) -> None:
        self._append({"op": "child", "parent": term_to_json(as_oid(parent)),
                      "child": term_to_json(as_oid(child))})
        super().add_child(parent, child)

    def add_root(self, oid: OidLike) -> None:
        self._append({"op": "root", "oid": term_to_json(as_oid(oid))})
        super().add_root(oid)

    def ingest(self, db: OemDatabase) -> int:
        """Bulk-add another database's contents (sorted, so the WAL is
        deterministic for a given input).  Returns records appended."""
        from ..oem.serialize import term_sort_key
        before = self.wal_records
        oids = sorted(db.oids(), key=term_sort_key)
        for oid in oids:
            if db.is_atomic(oid):
                self.add_atomic(oid, db.label(oid), db.atomic_value(oid))
            else:
                self.add_set(oid, db.label(oid))
        for oid in oids:
            for child in sorted(db.children(oid), key=term_sort_key):
                self.add_child(oid, child)
        for root in sorted(db.roots, key=term_sort_key):
            self.add_root(root)
        return self.wal_records - before

    # -- durability ------------------------------------------------------------

    def flush(self) -> None:
        """Make every appended WAL record durable (fsync)."""
        if self._wal_handle is not None:
            started = time.perf_counter() if self.metrics is not None \
                else 0.0
            self._wal_handle.flush()
            os.fsync(self._wal_handle.fileno())
            if self.metrics is not None:
                self._observe("store.wal.fsync.seconds",
                              time.perf_counter() - started)
        self._count("store.flushes")

    def compact(self) -> dict:
        """Fold the WAL into a fresh sorted snapshot; truncate the log.

        The snapshot is written atomically *before* the log is
        truncated, so a crash between the two steps only means some
        records are replayed onto a state that already contains them --
        every ``add_*`` is idempotent, so replay converges.
        """
        started = time.perf_counter() if self.metrics is not None else 0.0
        snapshot = {
            "schema_version": STORAGE_SCHEMA_VERSION,
            "kind": KIND_SNAPSHOT,
            "version": self.version,
            "database": database_to_json(self.db, sort_oids=True),
        }
        self.layout.store_dir.mkdir(parents=True, exist_ok=True)
        size = atomic_write_json(self.layout.snapshot, snapshot)
        if self._wal_handle is not None:
            self._wal_handle.close()
            self._wal_handle = None
        if self.layout.wal.exists():
            self.layout.wal.unlink()
        self.wal_records = 0
        if self.metrics is not None:
            self._observe("store.compact.seconds",
                          time.perf_counter() - started)
        self._count("store.compactions")
        return {"snapshot_bytes": size, "version": self.version,
                "objects": len(self.db)}

    # -- introspection ---------------------------------------------------------

    def stats(self) -> dict:
        """Deterministic store statistics (feeds ``repro db stats``)."""
        db_stats = self.db.stats()
        return {
            "name": self.name,
            "version": self.version,
            "objects": db_stats["objects"],
            "atomic": db_stats["atomic"],
            "set": db_stats["set"],
            "edges": db_stats["edges"],
            "roots": db_stats["roots"],
            "wal_records": self.wal_records,
            "snapshot_exists": self.layout.snapshot.exists(),
        }
