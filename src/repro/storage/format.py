"""On-disk layout, schema versions, and crash-safe file primitives.

Everything :mod:`repro.storage` writes is JSON with an explicit
``schema_version`` and ``kind`` marker, so a reader can refuse (store
documents) or silently discard (cache/memo documents -- they are an
optimization, never the source of truth) state written by an
incompatible layer.  All documents are written with sorted keys and
sorted content order, so the same logical state always produces the
same bytes (``db stats`` and snapshot diffs are byte-stable).

Durability is the classic two-tier scheme:

* **snapshots** (the store image, cache shards, session memos) are
  written to a temporary file in the same directory, fsynced, and
  atomically renamed over the target -- a crash leaves either the old
  or the new file, never a torn one;
* the **write-ahead log** is append-only JSON lines; replay tolerates a
  truncated final line (the one write a crash can tear).

A store *root* directory is laid out as::

    ROOT/
      MANIFEST.json            # name, schema version, shard count
      store/
        snapshot.json          # the OEM image at some version
        wal.jsonl              # updates since the snapshot
      cache/
        shard-00.json ...      # persisted QueryCache shards
      sessions/
        session-<key>.json     # persisted RewriteSession result memos
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any

from ..errors import StorageError

#: Bump on incompatible changes to any on-disk document shape.
STORAGE_SCHEMA_VERSION = 1

#: ``kind`` markers, one per document type.
KIND_MANIFEST = "repro-store-manifest"
KIND_SNAPSHOT = "repro-store-snapshot"
KIND_CACHE_SHARD = "repro-cache-shard"
KIND_SESSION_MEMO = "repro-session-memo"

__all__ = ["STORAGE_SCHEMA_VERSION", "KIND_MANIFEST", "KIND_SNAPSHOT",
           "KIND_CACHE_SHARD", "KIND_SESSION_MEMO", "StorageLayout",
           "atomic_write_json", "read_document", "check_document"]


def atomic_write_json(path: Path, payload: dict) -> int:
    """Write *payload* crash-safely; returns the byte count written.

    The temporary file lives in the target directory (``os.replace``
    must not cross filesystems) and is fsynced before the rename, so
    after a crash the target is either absent, the previous version, or
    the complete new version.  Keys are sorted for byte stability.
    """
    encoded = (json.dumps(payload, indent=1, sort_keys=True)
               + "\n").encode("utf-8")
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as handle:
        handle.write(encoded)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    return len(encoded)


def read_document(path: Path) -> dict:
    """Load one JSON document, mapping file breakage to StorageError."""
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except FileNotFoundError:
        raise StorageError(f"missing storage file: {path}") from None
    except (OSError, json.JSONDecodeError) as exc:
        raise StorageError(f"corrupt storage file {path}: {exc}") from None
    if not isinstance(data, dict):
        raise StorageError(f"corrupt storage file {path}: not an object")
    return data


def check_document(data: dict, kind: str, path: Path) -> None:
    """Refuse a document of the wrong kind or schema version."""
    if data.get("kind") != kind:
        raise StorageError(
            f"{path}: expected a {kind!r} document, found "
            f"{data.get('kind')!r}")
    version = data.get("schema_version")
    if version != STORAGE_SCHEMA_VERSION:
        raise StorageError(
            f"{path}: schema_version {version} is not supported "
            f"(this build reads version {STORAGE_SCHEMA_VERSION})")


class StorageLayout:
    """The fixed file layout under one store root directory."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)

    @property
    def manifest(self) -> Path:
        return self.root / "MANIFEST.json"

    @property
    def store_dir(self) -> Path:
        return self.root / "store"

    @property
    def snapshot(self) -> Path:
        return self.store_dir / "snapshot.json"

    @property
    def wal(self) -> Path:
        return self.store_dir / "wal.jsonl"

    @property
    def cache_dir(self) -> Path:
        return self.root / "cache"

    @property
    def sessions_dir(self) -> Path:
        return self.root / "sessions"

    def shard_path(self, shard: int) -> Path:
        return self.cache_dir / f"shard-{shard:02d}.json"

    def session_path(self, key: str) -> Path:
        return self.sessions_dir / f"session-{key}.json"

    def exists(self) -> bool:
        return self.manifest.exists()

    # -- manifest --------------------------------------------------------------

    def create(self, name: str, cache_shards: int, *,
               force: bool = False) -> dict:
        """Initialize the directory tree and write the manifest."""
        if self.exists() and not force:
            raise StorageError(
                f"{self.root} is already an initialized store "
                f"(use force/--force to re-initialize)")
        for directory in (self.root, self.store_dir, self.cache_dir,
                          self.sessions_dir):
            directory.mkdir(parents=True, exist_ok=True)
        manifest = {
            "schema_version": STORAGE_SCHEMA_VERSION,
            "kind": KIND_MANIFEST,
            "name": name,
            "cache_shards": cache_shards,
        }
        atomic_write_json(self.manifest, manifest)
        return manifest

    def read_manifest(self) -> dict:
        if not self.exists():
            raise StorageError(
                f"{self.root} is not an initialized store "
                f"(run `repro db init {self.root}` first)")
        manifest = read_document(self.manifest)
        check_document(manifest, KIND_MANIFEST, self.manifest)
        return manifest


def json_line(record: dict) -> str:
    """One WAL record, newline-terminated, byte-stable."""
    return json.dumps(record, sort_keys=True) + "\n"


def iter_wal(path: Path) -> list[dict]:
    """Parse a write-ahead log, tolerating one torn trailing line.

    A torn line anywhere but the end means real corruption and raises;
    a torn *final* line is the expected artifact of a crash mid-append
    and is dropped.
    """
    if not path.exists():
        return []
    records: list[dict] = []
    lines = path.read_text(encoding="utf-8").splitlines()
    for index, line in enumerate(lines):
        if not line.strip():
            continue
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError:
            if index == len(lines) - 1:
                break  # torn final append: the crash window
            raise StorageError(
                f"corrupt WAL {path}: unparseable record at line "
                f"{index + 1}") from None
    return records


def wal_value(value: Any) -> Any:
    """Atoms (labels/values) are JSON scalars already; assert that."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    raise StorageError(f"cannot log non-atomic value {value!r}")
