"""Disk-backed persistence: durable OEM store, sharded cache, memos.

The paper's repository scenario (Section 1) answers queries from cached
and materialized results; this package makes that state survive a
process restart using only the standard library:

* :class:`DurableStore` -- the base OEM store as snapshot + WAL
  (:mod:`~repro.storage.durable`);
* :class:`ShardedQueryCache` + :class:`ShardedCacheStore` -- the query
  cache split across rendezvous-hashed shards and persisted per shard
  (:mod:`~repro.storage.shard`, :mod:`~repro.storage.cachestore`);
* :class:`SessionRegistry` -- rewrite-result memos per server
  configuration (:mod:`~repro.storage.registry`);
* :mod:`~repro.storage.maintenance` -- the sound label-overlap test
  that patches (rather than drops) cached answers an update provably
  cannot change.

``docs/PERSISTENCE.md`` documents the on-disk format and the
invalidation rules; the ``persist`` fuzz oracle cross-checks the whole
stack round-trip.
"""

from .cachestore import CacheStore, ShardedCacheStore
from .durable import DurableStore
from .format import STORAGE_SCHEMA_VERSION, StorageLayout
from .maintenance import UpdateDelta, may_overlap, statement_labels
from .registry import SessionRegistry
from .shard import ShardedQueryCache, shard_for

__all__ = [
    "STORAGE_SCHEMA_VERSION",
    "StorageLayout",
    "DurableStore",
    "CacheStore",
    "ShardedCacheStore",
    "SessionRegistry",
    "ShardedQueryCache",
    "shard_for",
    "UpdateDelta",
    "may_overlap",
    "statement_labels",
]
