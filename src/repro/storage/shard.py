"""Rebalance-free sharding of the query cache by canonical hash.

One giant :class:`~repro.repository.cache.QueryCache` serializes every
lookup behind a single lock and rebuilds one monolithic rewrite session
whenever any statement churns.  :class:`ShardedQueryCache` splits the
entries across N independent caches, routing each statement by its
canonical hash with **highest-random-weight** (rendezvous) hashing:
shard ``s`` owns key ``k`` iff ``blake2b(f"{s}|{k}")`` is maximal over
all shards.  HRW needs no stored routing table, assigns keys uniformly,
and -- unlike plain modulo -- moves only ``1/N`` of the keys when a
shard is added, though the on-disk format pins the shard count anyway
(the manifest records it; changing it means re-initializing the cache
directory, never silently misrouting persisted entries).

Exact-hash lookups and inserts touch exactly one shard.  Rewriting-based
lookups (the paper's actual contribution) consult every shard in routing
order until one answers -- a cached statement on any shard may cover the
query.  Maintenance (``apply_update``/``invalidate``) fans out to all
shards.
"""

from __future__ import annotations

from hashlib import blake2b

from ..oem.model import OemDatabase
from ..repository.cache import CacheEntry, QueryCache
from ..rewriting.canon import query_key
from ..rewriting.chase import StructuralConstraints
from ..rewriting.session import DEFAULT_MEMO_SIZE
from ..tsl.ast import Query

__all__ = ["shard_for", "ShardedQueryCache"]


def shard_for(key: str, shards: int) -> int:
    """The HRW owner of canonical hash *key* among ``range(shards)``."""
    if shards <= 1:
        return 0
    return max(range(shards),
               key=lambda s: blake2b(f"{s}|{key}".encode(),
                                     digest_size=8).digest())


class ShardedQueryCache:
    """N :class:`QueryCache` shards behind the one-cache interface.

    *capacity* is the **total** budget, split evenly (remainder to the
    low shards); per-shard stats are aggregated by :meth:`stats`.
    *metrics* receives the usual ``cache.*`` counters (shared across
    shards) plus nothing shard-specific -- per-shard occupancy is a
    gauge-like property better read from :meth:`stats`.
    """

    def __init__(self, shards: int = 8, capacity: int = 1024, *,
                 constraints: StructuralConstraints | None = None,
                 memoize: bool = True, memo_size: int = DEFAULT_MEMO_SIZE,
                 metrics=None) -> None:
        if shards < 1:
            raise ValueError("need at least one shard")
        self.shard_count = shards
        self.capacity = capacity
        base, extra = divmod(capacity, shards)
        self.shards = [
            QueryCache(capacity=base + (1 if i < extra else 0),
                       constraints=constraints, memoize=memoize,
                       memo_size=memo_size, metrics=metrics)
            for i in range(shards)
        ]

    # -- routing ---------------------------------------------------------------

    def shard_of(self, key: str) -> QueryCache:
        return self.shards[shard_for(key, self.shard_count)]

    # -- the one-cache interface -----------------------------------------------

    def insert(self, statement: Query, answer: OemDatabase,
               version: int, *, key: str | None = None) -> CacheEntry:
        if key is None:
            key = query_key(statement)
        return self.shard_of(key).insert(statement, answer, version,
                                         key=key)

    def lookup(self, query: Query, version: int) -> OemDatabase | None:
        """Exact hit on the owning shard, else rewrite on each in turn.

        The owning shard is tried first (it is the only one that can
        answer exactly); the others only see the query if a rewriting
        search is needed.  Each shard's lookup counts its own
        stats/metrics, so aggregate hit rates stay meaningful.
        """
        key = query_key(query)
        owner = shard_for(key, self.shard_count)
        answer = self.shards[owner].lookup(query, version)
        if answer is not None:
            return answer
        for index, shard in enumerate(self.shards):
            if index == owner:
                continue
            answer = shard.lookup(query, version)
            if answer is not None:
                return answer
        return None

    def apply_update(self, touched: frozenset, version: int,
                     from_version: int | None = None) -> dict:
        patched = invalidated = 0
        for shard in self.shards:
            outcome = shard.apply_update(touched, version, from_version)
            patched += outcome["patched"]
            invalidated += outcome["invalidated"]
        return {"patched": patched, "invalidated": invalidated}

    def has_key(self, key: str) -> bool:
        """Whether the owning shard holds an entry for canonical *key*."""
        return self.shard_of(key).has_key(key)

    def invalidate(self) -> None:
        for shard in self.shards:
            shard.invalidate()

    def __len__(self) -> int:
        return sum(len(shard) for shard in self.shards)

    # -- introspection ---------------------------------------------------------

    def stats(self) -> dict:
        """Aggregated counters plus the per-shard occupancy breakdown."""
        totals = {"lookups": 0, "hits": 0, "misses": 0, "evictions": 0,
                  "invalidations": 0, "refreshes": 0, "patches": 0}
        entries = []
        for shard in self.shards:
            for name in totals:
                totals[name] += getattr(shard.stats, name)
            entries.append(len(shard))
        totals["shards"] = self.shard_count
        totals["entries"] = sum(entries)
        totals["entries_per_shard"] = entries
        return totals
