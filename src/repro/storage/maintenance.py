"""Incremental maintenance: which cached answers can an update touch?

Full invalidation ("the sources changed, drop the cache") is what the
paper settles for; at production scale it throws away a warm cache on
every write.  This module implements the sound middle ground: an update
that only touches objects with labels a cached statement's body can
never match cannot change that statement's answer, so the entry is
*patched* (retagged to the new store version, answer kept) instead of
invalidated.

**Soundness argument.**  Every object participating in a match of a
conjunctive TSL body appears at some step of a body path, and a match
binds that step's label pattern to the object's label.  If every step
label of the (chased) statement is a *constant*, then every object in
every match carries one of those constants as its label.  The store's
mutations (add object, add edge, add root) each touch a known set of
objects; collect their labels as the update's *touched set*.  A new or
changed match would have to place a touched object at some step, so:

* touched set disjoint from the statement's constant step labels, and
  the statement has **no label variables**  ==>  the answer is
  unchanged (patch);
* otherwise  ==>  the answer may have changed (invalidate).

A statement with a label *variable* can match objects of any label, so
its label set is unknowable and every update conservatively
invalidates it -- :func:`statement_labels` returns ``None`` for
"unknown".  Statements whose chased body is contradictory have the
empty answer forever and are never affected.

The same test drives materialized-view patching
(:meth:`repro.repository.views.ViewManager.apply_update`) and the
query-cache patching (:meth:`repro.repository.cache.QueryCache
.apply_update`); the ``persist`` fuzz oracle cross-checks it against
brute-force re-evaluation.
"""

from __future__ import annotations

from ..errors import ChaseContradictionError
from ..logic.terms import Constant
from ..tsl.ast import Query
from ..tsl.normalize import query_paths

__all__ = ["statement_labels", "may_overlap", "UpdateDelta"]


def statement_labels(statement: Query,
                     constraints=None) -> frozenset[str] | None:
    """The constant step labels of a statement's chased body.

    Returns ``None`` when the statement has a label variable (its
    matchable label set is unknown -- treat every update as
    overlapping) and the empty frozenset when the body is contradictory
    (the answer is empty forever -- no update overlaps).  Chasing first
    matters: label inference (Section 3.3) can resolve a label variable
    to a constant, shrinking the conservative case.
    """
    from ..rewriting.chase import chase
    try:
        prepared = chase(statement, constraints)
    except ChaseContradictionError:
        return frozenset()
    labels: set[str] = set()
    for path in query_paths(prepared):
        for _oid, label in path.steps:
            if isinstance(label, Constant):
                labels.add(label.value)
            else:
                return None
    return frozenset(labels)


def may_overlap(labels: frozenset[str] | None,
                touched: frozenset[str]) -> bool:
    """True unless the update provably cannot change the answer."""
    if labels is None:
        return True
    return bool(labels & touched)


class UpdateDelta:
    """Accumulates the touched labels of one batch of store mutations.

    The repository wraps each mutation to record the labels of every
    object the mutation involves -- for an edge, both endpoints: a new
    match through the edge must place the *parent* at the step whose
    label pattern matched it, so the parent label alone suffices, but
    including the child label costs nothing and shields against
    leaf-value steps.
    """

    __slots__ = ("labels", "ops")

    def __init__(self) -> None:
        self.labels: set = set()
        self.ops = 0

    def touch(self, *labels: object) -> None:
        # Labels are stored raw (atoms), matching the Constant.value
        # side of statement_labels -- str()-coercion would let an int
        # label slip past the overlap test.
        self.ops += 1
        self.labels.update(labels)

    def frozen(self) -> frozenset[str]:
        return frozenset(self.labels)

    def __bool__(self) -> bool:
        return self.ops > 0
