"""Persistence for :class:`~repro.rewriting.session.RewriteSession`
result memos.

The expensive thing a warm server holds is not the answers (the query
cache persists those) but the *rewrite results*: each one is the output
of the paper's exponential Section 4 search.  This registry saves the
session's rewrite-result memo table to
``sessions/session-<config key>.json`` -- one document per
``(views, constraints)`` configuration, keyed by the same blake2b
config key the server's :class:`~repro.server.pool.SessionPool` routes
on -- and reloads it into a fresh session on the next start, so a
restarted server serves its first repeated query as a memo hit.

What round-trips: the probe query, the search flags, every accepted
rewriting (query, composition rules, views used) and the run's stats.
What does not: the EXPLAIN decision log (``explanation`` reloads as
``None``) -- an ``explain=True`` lookup then treats the entry as a miss
and recomputes, which is exactly the memo's documented upgrade path.
Like the cache shards, session documents are an optimization: anything
unreadable or written against a different schema/store version is
silently discarded, never trusted.
"""

from __future__ import annotations

import json

from ..rewriting.rewriter import RewriteResult, RewriteStats, Rewriting
from ..rewriting.session import RewriteSession
from ..tsl.serialize import query_from_json as _query_from_json
from ..tsl.serialize import query_to_json as _query_to_json
from .format import (KIND_SESSION_MEMO, STORAGE_SCHEMA_VERSION,
                     StorageLayout, atomic_write_json)

__all__ = ["SessionRegistry"]


def _entry_to_json(key_flags, value) -> dict:
    (key, flags) = key_flags
    (query, result, _explanation) = value
    return {
        "key": key,
        "flags": list(flags),
        "query": _query_to_json(query),
        "rewritings": [
            {
                "query": _query_to_json(rewriting.query),
                "composition": [_query_to_json(rule)
                                for rule in rewriting.composition],
                "views_used": sorted(rewriting.views_used),
            }
            for rewriting in result.rewritings
        ],
        "stats": result.stats.to_json(),
    }


def _entry_from_json(record: dict):
    query = _query_from_json(record["query"])
    flags = tuple(record["flags"])
    rewritings = [
        Rewriting(
            query=_query_from_json(item["query"]),
            composition=[_query_from_json(rule)
                         for rule in item["composition"]],
            views_used=frozenset(item["views_used"]),
        )
        for item in record["rewritings"]
    ]
    known = set(RewriteStats.__dataclass_fields__)
    stats = RewriteStats(**{name: value
                            for name, value in record["stats"].items()
                            if name in known})
    return query, flags, RewriteResult(rewritings=rewritings, stats=stats)


class SessionRegistry:
    """Save/load rewrite-result memos under a layout's ``sessions/``."""

    def __init__(self, layout: StorageLayout) -> None:
        self.layout = layout

    def save(self, config_key: str, session: RewriteSession,
             store_version: int) -> dict:
        """Persist *session*'s result memo; returns save stats."""
        entries = session.result_entries()
        records = [_entry_to_json(key, value) for key, value in entries]
        records.sort(key=lambda record: (record["key"],
                                         json.dumps(record["flags"])))
        document = {
            "schema_version": STORAGE_SCHEMA_VERSION,
            "kind": KIND_SESSION_MEMO,
            "config_key": config_key,
            "store_version": store_version,
            "entries": records,
        }
        self.layout.sessions_dir.mkdir(parents=True, exist_ok=True)
        path = self.layout.session_path(config_key)
        size = atomic_write_json(path, document)
        return {"entries": len(records), "bytes": size}

    def load_into(self, config_key: str, session: RewriteSession,
                  store_version: int | None = None) -> dict:
        """Warm *session* from the persisted memo (forgiving).

        With *store_version* given, a document recorded against a
        different version is discarded wholesale -- the view set the
        memo was computed over may have answered differently.  (Memo
        entries depend only on statements, not answers, so this is
        conservative; being conservative is free here.)
        """
        stats = {"entries": 0, "dropped": 0}
        path = self.layout.session_path(config_key)
        try:
            document = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return stats
        if (not isinstance(document, dict)
                or document.get("kind") != KIND_SESSION_MEMO
                or document.get("schema_version") != STORAGE_SCHEMA_VERSION
                or document.get("config_key") != config_key):
            return stats
        records = document.get("entries", [])
        if (store_version is not None
                and document.get("store_version") != store_version):
            stats["dropped"] = len(records)
            return stats
        for record in records:
            try:
                query, flags, result = _entry_from_json(record)
            except Exception:
                stats["dropped"] += 1
                continue
            session.store_result(query, flags, result)
            stats["entries"] += 1
        return stats

    def stats(self) -> dict:
        """Entry counts per persisted config key (deterministic)."""
        sessions = {}
        directory = self.layout.sessions_dir
        if directory.exists():
            for path in sorted(directory.glob("session-*.json")):
                try:
                    document = json.loads(
                        path.read_text(encoding="utf-8"))
                    sessions[document["config_key"]] = len(
                        document.get("entries", []))
                except (OSError, ValueError, KeyError, TypeError):
                    continue
        return {"sessions": len(sessions), "entries": sessions}
