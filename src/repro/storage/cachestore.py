"""Persistence for :class:`~repro.repository.cache.QueryCache` shards.

Each shard serializes to one schema-versioned JSON document holding its
entries **sorted by canonical key** (so the file bytes depend only on
the logical contents, never on insertion order) with an ``lru`` index
recording the recency order to restore.  Statements round-trip through
the structural query codec (:mod:`repro.tsl.serialize` -- total over
the AST, where TSL text is not) and answers through the sorted OEM
JSON codec, so a reloaded entry is byte-identical to the saved one
under re-serialization -- the ``persist`` oracle checks exactly that.

Loading is **forgiving**: a cache document is an optimization, never
the source of truth, so a missing file, an unknown schema version, a
wrong shard count, or entries tagged with a different store version are
silently discarded (counted in the returned stats) rather than raised.
The store snapshot/WAL, by contrast, refuses to load anything
questionable (:mod:`repro.storage.durable`).
"""

from __future__ import annotations

import json

from ..oem.serialize import database_from_json, database_to_json
from ..repository.cache import CacheEntry, QueryCache
from ..tsl.serialize import query_from_json, query_to_json
from .format import (KIND_CACHE_SHARD, STORAGE_SCHEMA_VERSION,
                     StorageLayout, atomic_write_json)
from .shard import ShardedQueryCache

__all__ = ["CacheStore", "ShardedCacheStore"]


def _entry_to_json(entry: CacheEntry, lru: int) -> dict:
    return {
        "name": entry.name,
        "key": entry.key,
        "statement": query_to_json(entry.statement),
        "version": entry.as_of_version,
        "hits": entry.hits,
        "lru": lru,
        "answer": database_to_json(entry.answer, sort_oids=True),
    }


def _entry_from_json(record: dict) -> CacheEntry:
    statement = query_from_json(record["statement"])
    return CacheEntry(
        name=record["name"],
        statement=statement,
        answer=database_from_json(record["answer"]),
        as_of_version=record["version"],
        key=record["key"],
        hits=record["hits"],
    )


class CacheStore:
    """Save/load one :class:`QueryCache` to/from one shard file."""

    def __init__(self, path, *, shard: int = 0, shards: int = 1) -> None:
        self.path = path
        self.shard = shard
        self.shards = shards

    def save(self, cache: QueryCache, store_version: int) -> dict:
        """Write the shard document crash-safely; returns save stats."""
        entries = cache.snapshot_entries()
        records = [_entry_to_json(entry, lru) for lru, entry
                   in enumerate(entries)]
        records.sort(key=lambda record: record["key"])
        document = {
            "schema_version": STORAGE_SCHEMA_VERSION,
            "kind": KIND_CACHE_SHARD,
            "shard": self.shard,
            "shards": self.shards,
            "store_version": store_version,
            "entries": records,
        }
        size = atomic_write_json(self.path, document)
        return {"entries": len(records), "bytes": size}

    def load(self, cache: QueryCache, store_version: int) -> dict:
        """Restore entries valid at *store_version*; returns load stats.

        Anything unusable -- absent file, foreign/newer schema, stale
        shard geometry, entries from another store version -- is
        dropped, not raised: a discarded cache only costs re-computation.
        """
        stats = {"entries": 0, "dropped": 0}
        try:
            document = json.loads(self.path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return stats
        if (not isinstance(document, dict)
                or document.get("kind") != KIND_CACHE_SHARD
                or document.get("schema_version") != STORAGE_SCHEMA_VERSION
                or document.get("shard") != self.shard
                or document.get("shards") != self.shards):
            return stats
        records = document.get("entries", [])
        if document.get("store_version") != store_version:
            stats["dropped"] = len(records)
            return stats
        entries: list[tuple[int, CacheEntry]] = []
        for record in records:
            entry = _entry_from_json(record)
            if entry.as_of_version != store_version:
                stats["dropped"] += 1
                continue
            entries.append((record["lru"], entry))
        entries.sort(key=lambda pair: pair[0])
        cache.restore_entries([entry for _lru, entry in entries])
        stats["entries"] = len(cache)
        stats["dropped"] += len(entries) - len(cache)
        return stats


class ShardedCacheStore:
    """Route a :class:`ShardedQueryCache` over the layout's shard files."""

    def __init__(self, layout: StorageLayout, shards: int) -> None:
        self.layout = layout
        self.shards = shards
        self.stores = [CacheStore(layout.shard_path(i), shard=i,
                                  shards=shards) for i in range(shards)]

    def save(self, cache: ShardedQueryCache, store_version: int) -> dict:
        if cache.shard_count != self.shards:
            raise ValueError(
                f"cache has {cache.shard_count} shards, store expects "
                f"{self.shards}")
        self.layout.cache_dir.mkdir(parents=True, exist_ok=True)
        totals = {"entries": 0, "bytes": 0}
        for store, shard in zip(self.stores, cache.shards):
            outcome = store.save(shard, store_version)
            totals["entries"] += outcome["entries"]
            totals["bytes"] += outcome["bytes"]
        return totals

    def load(self, cache: ShardedQueryCache, store_version: int) -> dict:
        if cache.shard_count != self.shards:
            raise ValueError(
                f"cache has {cache.shard_count} shards, store expects "
                f"{self.shards}")
        totals = {"entries": 0, "dropped": 0}
        for store, shard in zip(self.stores, cache.shards):
            outcome = store.load(shard, store_version)
            totals["entries"] += outcome["entries"]
            totals["dropped"] += outcome["dropped"]
        return totals
