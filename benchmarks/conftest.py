"""Shared helpers for the benchmark suite.

Each ``bench_*.py`` module regenerates one experiment of DESIGN.md's
index (E5-E11 plus ablations).  Modules double as scripts: running
``python benchmarks/bench_mappings.py`` prints the experiment's full
table; running them under ``pytest --benchmark-only`` times the headline
configurations and attaches the measured counts as ``extra_info``.

Random-workload fixtures are shared with the test suite through
:mod:`repro.oracle.fixtures`.
"""

from __future__ import annotations

from repro.oracle.fixtures import *  # noqa: F401,F403
