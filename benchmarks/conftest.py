"""Shared helpers for the benchmark suite.

Each ``bench_*.py`` module regenerates one experiment of DESIGN.md's
index (E5-E11 plus ablations).  Modules double as scripts: running
``python benchmarks/bench_mappings.py`` prints the experiment's full
table; running them under ``pytest --benchmark-only`` times the headline
configurations and attaches the measured counts as ``extra_info``.
"""

from __future__ import annotations
