#!/usr/bin/env python3
"""E9 -- the Section 4 equivalence test over growing decompositions.

The test decomposes each rule into graph component queries (one top rule,
one member + one object rule per head object) and searches mutual
mappings (Theorem 4.2).  Series reported: head components c ->
decomposition size, time on an equivalent pair (alpha-renamed) and on an
inequivalent pair (one label perturbed).
"""

from __future__ import annotations

import time

from repro.rewriting import programs_equivalent
from repro.tsl import decompose, parse_query
from repro.workloads import star_query

COMPONENTS = (2, 4, 8, 12)


def renamed(query):
    return query.rename_apart("_r")


def perturbed(branches: int):
    text_query = star_query(branches, distinct_labels=True)
    # Change one head label by rebuilding via text surgery.
    from repro.tsl import print_query
    text = print_query(text_query).replace("item", "itemx", 1)
    return parse_query(text)


def check_equivalent_pair(branches: int) -> bool:
    query = star_query(branches, distinct_labels=True)
    return programs_equivalent([query], [renamed(query)])


def check_inequivalent_pair(branches: int) -> bool:
    query = star_query(branches, distinct_labels=True)
    return programs_equivalent([query], [perturbed(branches)])


def run_experiment() -> list[dict]:
    rows = []
    for branches in COMPONENTS:
        components = len(decompose(star_query(branches,
                                              distinct_labels=True)))
        started = time.perf_counter()
        same = check_equivalent_pair(branches)
        t_same = time.perf_counter() - started
        started = time.perf_counter()
        different = check_inequivalent_pair(branches)
        t_diff = time.perf_counter() - started
        rows.append({"branches": branches, "components": components,
                     "equivalent": same, "sec_equal": t_same,
                     "inequivalent": not different, "sec_diff": t_diff})
    return rows


def print_table(rows: list[dict]) -> None:
    print(f"{'branches':>8} {'components':>11} {'eq ok':>6} "
          f"{'sec(eq)':>9} {'neq ok':>7} {'sec(neq)':>9}")
    for row in rows:
        print(f"{row['branches']:>8} {row['components']:>11} "
              f"{str(row['equivalent']):>6} {row['sec_equal']:>9.4f} "
              f"{str(row['inequivalent']):>7} {row['sec_diff']:>9.4f}")


# -- pytest-benchmark entry points ------------------------------------------

def test_equivalence_8_components(benchmark):
    assert benchmark(check_equivalent_pair, 8)


def test_inequivalence_8_components(benchmark):
    assert not benchmark(check_inequivalent_pair, 8)


def test_decision_correct_across_sizes():
    for branches in (2, 4):
        assert check_equivalent_pair(branches)
        assert not check_inequivalent_pair(branches)


if __name__ == "__main__":
    print(__doc__)
    print_table(run_experiment())
