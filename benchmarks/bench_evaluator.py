#!/usr/bin/env python3
"""Substrate benchmark -- TSL evaluation scaling (supports E10/E11).

Not a paper claim per se, but the cache and mediator experiments depend
on evaluation cost scaling with data size; this bench pins that baseline
and compares the direct evaluator against the Datalog-translation path
(E13's slower twin).
"""

from __future__ import annotations

import time

from repro.logic.translate import evaluate_via_datalog
from repro.tsl import evaluate
from repro.workloads import generate_bibliography, sigmod_97_query

SIZES = (200, 800, 3200)
TRANSLATED_CAP = 3200  # keep the slower twin bounded


def evaluate_direct(db):
    return evaluate(sigmod_97_query(), db)


def evaluate_translated(db):
    return evaluate_via_datalog(sigmod_97_query(), db)


def run_experiment() -> list[dict]:
    rows = []
    for size in SIZES:
        db = generate_bibliography(size, seed=size)
        started = time.perf_counter()
        direct = evaluate_direct(db)
        t_direct = time.perf_counter() - started
        t_translated = None
        if size <= TRANSLATED_CAP:
            started = time.perf_counter()
            evaluate_translated(db)
            t_translated = time.perf_counter() - started
        rows.append({"pubs": size, "answers": len(direct.roots),
                     "direct_s": t_direct, "datalog_s": t_translated})
    return rows


def print_table(rows: list[dict]) -> None:
    print(f"{'pubs':>6} {'answers':>8} {'direct(s)':>10} "
          f"{'datalog(s)':>11}")
    for row in rows:
        datalog = ("-" if row["datalog_s"] is None
                   else f"{row['datalog_s']:.3f}")
        print(f"{row['pubs']:>6} {row['answers']:>8} "
              f"{row['direct_s']:>10.3f} {datalog:>11}")


# -- pytest-benchmark entry points ------------------------------------------

def test_direct_800(benchmark):
    db = generate_bibliography(800, seed=800)
    answer = benchmark(evaluate_direct, db)
    benchmark.extra_info["answers"] = len(answer.roots)


def test_translated_200(benchmark):
    db = generate_bibliography(200, seed=200)
    benchmark(evaluate_translated, db)


def test_paths_agree():
    from repro.oem import identical
    db = generate_bibliography(100, seed=3)
    assert identical(evaluate_direct(db), evaluate_translated(db))


if __name__ == "__main__":
    print(__doc__)
    print_table(run_experiment())
