#!/usr/bin/env python3
"""Regenerate every experiment table (the data behind EXPERIMENTS.md).

Runs the ``run_experiment()`` of each bench module and prints the tables
in DESIGN.md experiment order.  Usage::

    python benchmarks/run_all.py                    # all experiments
    python benchmarks/run_all.py E5 E6              # a subset
    python benchmarks/run_all.py --json BENCH.json  # machine-readable too

``--json`` additionally writes one JSON document with, per experiment,
the name, title, wall time, and every measured row (the same counters
the tables print), stamped with the git revision and date -- the
machine-readable record the perf trajectory is built from.
"""

from __future__ import annotations

import argparse
import json
import platform
import subprocess
import time
from datetime import datetime, timezone

import bench_ablation_minimize
import bench_cached_queries
import bench_candidates
import bench_chase
import bench_composition
import bench_contained
import bench_constraints_gain
import bench_equivalence
import bench_evaluator
import bench_mappings
import bench_mediator
import bench_rewriter

EXPERIMENTS = {
    "E4": ("structural-constraint gain (Section 3.3)",
           bench_constraints_gain),
    "E5": ("mapping discovery blowup (Section 5.1)", bench_mappings),
    "E6": ("candidate space and the covering heuristic (Section 3.4)",
           bench_candidates),
    "E7": ("composition blowup (Section 5.1)", bench_composition),
    "E8": ("chase + label inference are polynomial (Section 3.3)",
           bench_chase),
    "E9": ("equivalence test scaling (Section 4)", bench_equivalence),
    "E10": ("cached-query answering (Section 1)", bench_cached_queries),
    "E11": ("mediator CBR pipeline (Figures 1-2)", bench_mediator),
    "end-to-end": ("rewriter on the paper's workload", bench_rewriter),
    "substrate": ("evaluation baselines", bench_evaluator),
    "ablation": ("composition minimization on/off",
                 bench_ablation_minimize),
    "contained": ("maximally contained rewritings (Section 7)",
                  bench_contained),
}


def _git_rev() -> str | None:
    try:
        return subprocess.run(
            ["git", "rev-parse", "HEAD"], capture_output=True, text=True,
            check=True, timeout=10).stdout.strip()
    except (OSError, subprocess.SubprocessError):
        return None


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(
        description="regenerate the experiment tables")
    parser.add_argument("experiments", nargs="*", metavar="EXPERIMENT",
                        help=f"subset to run (default: all of "
                             f"{', '.join(EXPERIMENTS)})")
    parser.add_argument("--json", metavar="OUT",
                        help="also write machine-readable results to "
                             "this file")
    args = parser.parse_args(argv)

    unknown = set(args.experiments) - set(EXPERIMENTS)
    if unknown:
        parser.error(f"unknown experiment(s): {sorted(unknown)}; "
                     f"available: {list(EXPERIMENTS)}")

    results = []
    for key, (title, module) in EXPERIMENTS.items():
        if args.experiments and key not in args.experiments:
            continue
        print("=" * 72)
        print(f"{key}: {title}")
        print("=" * 72)
        started = time.perf_counter()
        rows = module.run_experiment()
        elapsed = time.perf_counter() - started
        module.print_table(rows)
        print(f"[{elapsed:.1f}s]\n")
        results.append({"name": key, "title": title,
                        "seconds": round(elapsed, 3), "rows": rows})

    if args.json:
        payload = {
            "generated": datetime.now(timezone.utc).isoformat(
                timespec="seconds"),
            "git_rev": _git_rev(),
            "python": platform.python_version(),
            "platform": platform.platform(),
            "benchmarks": results,
        }
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, default=str)
            handle.write("\n")
        print(f"wrote {args.json} ({len(results)} experiment(s))")


if __name__ == "__main__":
    main()
