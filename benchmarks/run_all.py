#!/usr/bin/env python3
"""Regenerate every experiment table (the data behind EXPERIMENTS.md).

Runs the ``run_experiment()`` of each bench module and prints the tables
in DESIGN.md experiment order.  Usage::

    python benchmarks/run_all.py            # all experiments
    python benchmarks/run_all.py E5 E6      # a subset
"""

from __future__ import annotations

import sys
import time

import bench_ablation_minimize
import bench_cached_queries
import bench_candidates
import bench_chase
import bench_composition
import bench_contained
import bench_constraints_gain
import bench_equivalence
import bench_evaluator
import bench_mappings
import bench_mediator
import bench_rewriter

EXPERIMENTS = {
    "E4": ("structural-constraint gain (Section 3.3)",
           bench_constraints_gain),
    "E5": ("mapping discovery blowup (Section 5.1)", bench_mappings),
    "E6": ("candidate space and the covering heuristic (Section 3.4)",
           bench_candidates),
    "E7": ("composition blowup (Section 5.1)", bench_composition),
    "E8": ("chase + label inference are polynomial (Section 3.3)",
           bench_chase),
    "E9": ("equivalence test scaling (Section 4)", bench_equivalence),
    "E10": ("cached-query answering (Section 1)", bench_cached_queries),
    "E11": ("mediator CBR pipeline (Figures 1-2)", bench_mediator),
    "end-to-end": ("rewriter on the paper's workload", bench_rewriter),
    "substrate": ("evaluation baselines", bench_evaluator),
    "ablation": ("composition minimization on/off",
                 bench_ablation_minimize),
    "contained": ("maximally contained rewritings (Section 7)",
                  bench_contained),
}


def main(selected: list[str]) -> None:
    for key, (title, module) in EXPERIMENTS.items():
        if selected and key not in selected:
            continue
        print("=" * 72)
        print(f"{key}: {title}")
        print("=" * 72)
        started = time.perf_counter()
        module.print_table(module.run_experiment())
        print(f"[{time.perf_counter() - started:.1f}s]\n")


if __name__ == "__main__":
    main(sys.argv[1:])
