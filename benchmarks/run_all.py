#!/usr/bin/env python3
"""Regenerate every experiment table (the data behind EXPERIMENTS.md).

Runs the ``run_experiment()`` of each bench module and prints the tables
in DESIGN.md experiment order.  Usage::

    python benchmarks/run_all.py                    # all experiments
    python benchmarks/run_all.py E5 E6              # a subset
    python benchmarks/run_all.py --json BENCH.json  # machine-readable too
    python benchmarks/run_all.py --record [DIR]     # BENCH_<date>.json

``--json`` additionally writes one JSON document with, per experiment,
the name, title, wall time, and every measured row (the same counters
the tables print), stamped with the git revision and date -- the
machine-readable record the perf trajectory is built from.

``--record`` writes the same document to ``DIR/BENCH_<UTC-date>.json``
(default: the current directory), the dated snapshot format
``benchmarks/compare.py`` diffs to flag regressions between runs.  The
payload is schema-versioned (``schema_version``) and includes the
process-wide :data:`repro.obs.METRICS` snapshot, so phase-latency
histograms recorded during the run travel with the timings.  Every row
is additionally stamped with the flight-recorder state
(``recorder: "on"`` unless the series measured otherwise), which keys
into the row identity ``compare.py`` matches on.
"""

from __future__ import annotations

import argparse
import json
import platform
import subprocess
import time
from datetime import datetime, timezone
from pathlib import Path

#: Bump when the snapshot payload shape changes incompatibly;
#: compare.py refuses to diff snapshots with different major shapes.
SCHEMA_VERSION = 1

import bench_ablation_minimize
import bench_cached_queries
import bench_candidates
import bench_chase
import bench_composition
import bench_contained
import bench_constraints_gain
import bench_equivalence
import bench_evaluator
import bench_mappings
import bench_mediator
import bench_rewriter
import bench_serve
import bench_store

EXPERIMENTS = {
    "E4": ("structural-constraint gain (Section 3.3)",
           bench_constraints_gain),
    "E5": ("mapping discovery blowup (Section 5.1)", bench_mappings),
    "E6": ("candidate space and the covering heuristic (Section 3.4)",
           bench_candidates),
    "E7": ("composition blowup (Section 5.1)", bench_composition),
    "E8": ("chase + label inference are polynomial (Section 3.3)",
           bench_chase),
    "E9": ("equivalence test scaling (Section 4)", bench_equivalence),
    "E10": ("cached-query answering (Section 1)", bench_cached_queries),
    "E11": ("mediator CBR pipeline (Figures 1-2)", bench_mediator),
    "end-to-end": ("rewriter on the paper's workload", bench_rewriter),
    "substrate": ("evaluation baselines", bench_evaluator),
    "ablation": ("composition minimization on/off",
                 bench_ablation_minimize),
    "contained": ("maximally contained rewritings (Section 7)",
                  bench_contained),
    "serve": ("rewrite-as-a-service under concurrent load",
              bench_serve),
    "store": ("persistence: durable store + warm-start cache",
              bench_store),
}


def _git_rev() -> str | None:
    try:
        return subprocess.run(
            ["git", "rev-parse", "HEAD"], capture_output=True, text=True,
            check=True, timeout=10).stdout.strip()
    except (OSError, subprocess.SubprocessError):
        return None


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(
        description="regenerate the experiment tables")
    parser.add_argument("experiments", nargs="*", metavar="EXPERIMENT",
                        help=f"subset to run (default: all of "
                             f"{', '.join(EXPERIMENTS)})")
    parser.add_argument("--json", metavar="OUT",
                        help="also write machine-readable results to "
                             "this file")
    parser.add_argument("--record", nargs="?", const=".", metavar="DIR",
                        help="write a dated BENCH_<UTC-date>.json "
                             "snapshot into DIR (default: .) for "
                             "benchmarks/compare.py")
    args = parser.parse_args(argv)

    unknown = set(args.experiments) - set(EXPERIMENTS)
    if unknown:
        parser.error(f"unknown experiment(s): {sorted(unknown)}; "
                     f"available: {list(EXPERIMENTS)}")

    results = []
    failed: list[str] = []
    for key, (title, module) in EXPERIMENTS.items():
        if args.experiments and key not in args.experiments:
            continue
        print("=" * 72)
        print(f"{key}: {title}")
        print("=" * 72)
        started = time.perf_counter()
        try:
            rows = module.run_experiment()
        except Exception as exc:  # a broken series must not be recorded
            elapsed = time.perf_counter() - started
            failed.append(key)
            print(f"FAILED after {elapsed:.1f}s: "
                  f"{type(exc).__name__}: {exc}\n")
            results.append({"name": key, "title": title,
                            "seconds": round(elapsed, 3), "rows": [],
                            "failed": True,
                            "error": f"{type(exc).__name__}: {exc}"})
            continue
        elapsed = time.perf_counter() - started
        module.print_table(rows)
        print(f"[{elapsed:.1f}s]\n")
        # Every recorded row carries the flight-recorder state as part
        # of its identity (compare.py keys rows by string fields), so a
        # recorder-on run is never diffed against a recorder-off
        # baseline.  Rows that measured a specific state (the serve
        # overhead series) already say so; everything else ran with the
        # always-on default.
        for row in rows:
            if isinstance(row, dict):
                row.setdefault("recorder", "on")
        results.append({"name": key, "title": title,
                        "seconds": round(elapsed, 3), "rows": rows})

    if args.json or args.record is not None:
        from repro.obs import METRICS
        now = datetime.now(timezone.utc)
        payload = {
            "schema_version": SCHEMA_VERSION,
            "generated": now.isoformat(timespec="seconds"),
            "git_rev": _git_rev(),
            "python": platform.python_version(),
            "platform": platform.platform(),
            "benchmarks": results,
            "metrics": METRICS.snapshot(),
        }
        encoded = json.dumps(payload, indent=2, default=str) + "\n"
        if args.json:
            # The diagnostic document is still written on failure --
            # failed rows carry failed=True + the error -- so CI
            # artifacts show what broke.
            Path(args.json).write_text(encoded, encoding="utf-8")
            print(f"wrote {args.json} ({len(results)} experiment(s))")
        if args.record is not None:
            if failed:
                # A trajectory snapshot with silently missing series
                # would poison every later compare.py diff; refuse it.
                raise SystemExit(
                    f"error: not recording a BENCH snapshot: "
                    f"experiment(s) failed: {', '.join(failed)} "
                    f"(fix the series or drop it from the run)")
            target = Path(args.record)
            target.mkdir(parents=True, exist_ok=True)
            snapshot = target / f"BENCH_{now.strftime('%Y-%m-%d')}.json"
            snapshot.write_text(encoded, encoding="utf-8")
            print(f"recorded {snapshot} ({len(results)} experiment(s))")

    if failed:
        raise SystemExit(
            f"error: {len(failed)} experiment(s) failed: "
            f"{', '.join(failed)}")


if __name__ == "__main__":
    main()
