#!/usr/bin/env python3
"""E10 -- answering from cached queries beats re-scanning (Section 1).

The Section 1 scenario: the cache holds "all SIGMOD publications"; the
"SIGMOD 97" query is answered by *rewriting over the cache* -- filtering
the (small) cached result instead of scanning the (large) database.

Series reported: database size N -> direct evaluation time vs cache-hit
time and the speedup.  The speedup must grow with N (the cache is a
fixed fraction of the data, and rewriting cost is size-independent).

A second series measures the cache's *rewrite session* (prepared views
+ canonical-hash memo tables): repeated lookups against a warm cache
with memoization on vs off (``cache_memoize=False``, the ``--no-memo``
baseline).  The memoized per-lookup time must be at least ~2x faster
and the exported ``cache.hits`` counter nonzero.
"""

from __future__ import annotations

import time

from repro.obs import MetricsRegistry
from repro.repository import Repository
from repro.tsl import evaluate
from repro.workloads import (conference_query, generate_bibliography,
                             sigmod_97_query)
from repro.workloads.biblio import CONFERENCES

SIZES = (500, 2000, 8000)
SIGMOD_FRACTION = 0.15
#: Database size / repeated lookups for the memo-on/off series.  The
#: smaller SIGMOD fraction keeps the (memoization-independent) cost of
#: evaluating the rewriting over the cached answer from drowning out
#: the search time under measurement.
MEMO_SIZE = 2000
MEMO_REPEATS = 20
MEMO_FRACTION = 0.05


def build_repo(size: int) -> Repository:
    db = generate_bibliography(size, seed=size,
                               sigmod_fraction=SIGMOD_FRACTION)
    repo = Repository.from_database(db)
    repo.query(conference_query("sigmod"), use_views=False)  # warm cache
    return repo


def build_warm_repo(size: int, memoize: bool = True,
                    metrics: MetricsRegistry | None = None) -> Repository:
    """A repository whose cache holds every per-conference query."""
    db = generate_bibliography(size, seed=size,
                               sigmod_fraction=MEMO_FRACTION)
    repo = Repository.from_database(db, cache_memoize=memoize,
                                    metrics=metrics)
    for conference in CONFERENCES:
        repo.query(conference_query(conference), use_views=False)
    return repo


def cached_lookup(repo: Repository):
    report = repo.query_with_report(sigmod_97_query(), use_views=False)
    assert report.method == "cache"
    return report.answer


def direct_lookup(repo: Repository):
    return evaluate(sigmod_97_query(), repo.store.db)


def run_memo_experiment(size: int = MEMO_SIZE,
                        repeats: int = MEMO_REPEATS) -> dict:
    """Per-lookup time of repeated warm lookups, memoization on vs off."""
    per_lookup: dict[bool, float] = {}
    cache_hits = 0
    for memoize in (True, False):
        metrics = MetricsRegistry()
        repo = build_warm_repo(size, memoize=memoize, metrics=metrics)
        started = time.perf_counter()
        for _ in range(repeats):
            cached_lookup(repo)
        per_lookup[memoize] = (time.perf_counter() - started) / repeats
        if memoize:
            counters = metrics.snapshot()["counters"]
            cache_hits = counters.get("cache.hits", 0)
    return {
        "pubs": size,
        "repeats": repeats,
        "memo_s": per_lookup[True],
        "nomemo_s": per_lookup[False],
        "memo_speedup": per_lookup[False] / max(per_lookup[True], 1e-9),
        "cache_hits": cache_hits,
    }


def run_experiment() -> list[dict]:
    rows = []
    for size in SIZES:
        repo = build_repo(size)
        started = time.perf_counter()
        direct = direct_lookup(repo)
        t_direct = time.perf_counter() - started
        started = time.perf_counter()
        cached = cached_lookup(repo)
        t_cached = time.perf_counter() - started
        rows.append({
            "pubs": size,
            "answers": len(direct.roots),
            "direct_s": t_direct,
            "cached_s": t_cached,
            "speedup": t_direct / max(t_cached, 1e-9),
        })
    rows.append(run_memo_experiment())
    return rows


def print_table(rows: list[dict]) -> None:
    print(f"{'pubs':>6} {'answers':>8} {'direct(s)':>10} "
          f"{'cached(s)':>10} {'speedup':>8}")
    for row in rows:
        if "memo_s" in row:
            continue
        print(f"{row['pubs']:>6} {row['answers']:>8} "
              f"{row['direct_s']:>10.3f} {row['cached_s']:>10.3f} "
              f"{row['speedup']:>7.1f}x")
    for row in rows:
        if "memo_s" not in row:
            continue
        print(f"\nmemo on/off ({row['repeats']} warm lookups, "
              f"{row['pubs']} pubs): "
              f"memo={row['memo_s'] * 1e3:.1f}ms "
              f"no-memo={row['nomemo_s'] * 1e3:.1f}ms "
              f"speedup={row['memo_speedup']:.1f}x "
              f"cache.hits={row['cache_hits']}")


# -- pytest-benchmark entry points ------------------------------------------

def test_direct_2000(benchmark):
    repo = build_repo(2000)
    benchmark(direct_lookup, repo)


def test_cached_2000(benchmark):
    repo = build_repo(2000)
    benchmark(cached_lookup, repo)


def test_memo_lookup_2000(benchmark):
    repo = build_warm_repo(2000)
    cached_lookup(repo)         # warm the session's result memo
    benchmark(cached_lookup, repo)


def test_memo_faster_and_agrees():
    from repro.oem import identical
    metrics = MetricsRegistry()
    memo = build_warm_repo(2000, memoize=True, metrics=metrics)
    plain = build_warm_repo(2000, memoize=False)
    assert identical(cached_lookup(memo), cached_lookup(plain))
    repeats = 5
    t0 = time.perf_counter()
    for _ in range(repeats):
        cached_lookup(memo)
    t_memo = time.perf_counter() - t0
    t0 = time.perf_counter()
    for _ in range(repeats):
        cached_lookup(plain)
    t_plain = time.perf_counter() - t0
    assert t_memo < t_plain
    assert metrics.snapshot()["counters"].get("cache.hits", 0) > 0


def test_cache_wins_and_agrees():
    from repro.oem import identical
    repo = build_repo(2000)
    t0 = time.perf_counter()
    direct = direct_lookup(repo)
    t_direct = time.perf_counter() - t0
    t0 = time.perf_counter()
    cached = cached_lookup(repo)
    t_cached = time.perf_counter() - t0
    assert identical(direct, cached)
    assert t_cached < t_direct


if __name__ == "__main__":
    print(__doc__)
    print_table(run_experiment())
