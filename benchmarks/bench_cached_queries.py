#!/usr/bin/env python3
"""E10 -- answering from cached queries beats re-scanning (Section 1).

The Section 1 scenario: the cache holds "all SIGMOD publications"; the
"SIGMOD 97" query is answered by *rewriting over the cache* -- filtering
the (small) cached result instead of scanning the (large) database.

Series reported: database size N -> direct evaluation time vs cache-hit
time and the speedup.  The speedup must grow with N (the cache is a
fixed fraction of the data, and rewriting cost is size-independent).
"""

from __future__ import annotations

import time

from repro.repository import Repository
from repro.tsl import evaluate
from repro.workloads import (conference_query, generate_bibliography,
                             sigmod_97_query)

SIZES = (500, 2000, 8000)
SIGMOD_FRACTION = 0.15


def build_repo(size: int) -> Repository:
    db = generate_bibliography(size, seed=size,
                               sigmod_fraction=SIGMOD_FRACTION)
    repo = Repository.from_database(db)
    repo.query(conference_query("sigmod"), use_views=False)  # warm cache
    return repo


def cached_lookup(repo: Repository):
    report = repo.query_with_report(sigmod_97_query(), use_views=False)
    assert report.method == "cache"
    return report.answer


def direct_lookup(repo: Repository):
    return evaluate(sigmod_97_query(), repo.store.db)


def run_experiment() -> list[dict]:
    rows = []
    for size in SIZES:
        repo = build_repo(size)
        started = time.perf_counter()
        direct = direct_lookup(repo)
        t_direct = time.perf_counter() - started
        started = time.perf_counter()
        cached = cached_lookup(repo)
        t_cached = time.perf_counter() - started
        rows.append({
            "pubs": size,
            "answers": len(direct.roots),
            "direct_s": t_direct,
            "cached_s": t_cached,
            "speedup": t_direct / max(t_cached, 1e-9),
        })
    return rows


def print_table(rows: list[dict]) -> None:
    print(f"{'pubs':>6} {'answers':>8} {'direct(s)':>10} "
          f"{'cached(s)':>10} {'speedup':>8}")
    for row in rows:
        print(f"{row['pubs']:>6} {row['answers']:>8} "
              f"{row['direct_s']:>10.3f} {row['cached_s']:>10.3f} "
              f"{row['speedup']:>7.1f}x")


# -- pytest-benchmark entry points ------------------------------------------

def test_direct_2000(benchmark):
    repo = build_repo(2000)
    benchmark(direct_lookup, repo)


def test_cached_2000(benchmark):
    repo = build_repo(2000)
    benchmark(cached_lookup, repo)


def test_cache_wins_and_agrees():
    from repro.oem import identical
    repo = build_repo(2000)
    t0 = time.perf_counter()
    direct = direct_lookup(repo)
    t_direct = time.perf_counter() - t0
    t0 = time.perf_counter()
    cached = cached_lookup(repo)
    t_cached = time.perf_counter() - t0
    assert identical(direct, cached)
    assert t_cached < t_direct


if __name__ == "__main__":
    print(__doc__)
    print_table(run_experiment())
