#!/usr/bin/env python3
"""Store series -- persistence overhead and warm-start lookup parity.

The acceptance scenario of the persistence subsystem: a cache of >=100k
entries is flushed to sharded JSON documents, a fresh process reloads
it, and warm-from-disk lookups must stay **within 2x** of lookups
against the cache that never left memory (the entries deserialize into
the same in-memory structures, so the steady-state cost is identical;
the bound catches accidental lazy-loading or re-parsing on the lookup
path).

Series reported, per cache size:

* build / save / load wall time and the on-disk footprint;
* per-probe lookup time three ways -- **cold** (direct evaluation
  against the backing database, no cache), **warm-mem** (the original
  in-memory cache), **warm-disk** (the reloaded cache) -- plus the
  warm-disk/warm-mem ratio, asserted ``<= MAX_DISK_RATIO``;
* a parity check: every probe's answer from the reloaded cache must be
  canonically byte-identical to the in-memory one, or the bench raises.

A final row times the durable OEM store itself (ingest, compact,
reopen-with-WAL-replay) on the synthetic bibliography.

The filler entries share one (empty) answer object so building a 100k
entry cache stays tractable; the probe entries carry real per-title
answers so both the parity check and the cold series are meaningful.
"""

from __future__ import annotations

import json
import tempfile
import time
from pathlib import Path

from repro.oem.serialize import database_to_json
from repro.storage import (DurableStore, ShardedCacheStore,
                           ShardedQueryCache, StorageLayout)
from repro.tsl import parse_query
from repro.tsl.evaluator import evaluate
from repro.workloads import generate_bibliography

#: Cache sizes for the recorded series (the last one is the acceptance
#: floor: >= 100k entries).
SIZES = (10_000, 100_000)

#: Probe queries timed / parity-checked per size.
PROBES = 200

#: Shards the cache is split and persisted across.
SHARDS = 8

#: Publications in the backing database (drives the cold series).
BACKING_PUBS = 1_000

#: Acceptance bound: warm-from-disk lookups vs in-memory warm lookups.
MAX_DISK_RATIO = 2.0

#: Timing repetitions; the minimum is reported (best-of-N damps jitter).
ROUNDS = 3


def backing_database():
    return generate_bibliography(BACKING_PUBS, seed=17)


def _title_query(title: str) -> str:
    escaped = title.replace("'", "")
    return (f"<ans(P) pub {{<T title '{escaped}'>}}> :- "
            f"<P pub {{<T title '{escaped}'>}}>@db")


def probe_queries(db, count: int = PROBES) -> list:
    """Selections on real titles -- nonempty answers, distinct keys."""
    titles = sorted(db.atomic_value(oid) for oid in db.oids()
                    if db.is_atomic(oid) and db.label(oid) == "title")
    assert len(titles) >= count, "backing database too small"
    return [parse_query(_title_query(title)) for title in titles[:count]]


def filler_queries(count: int) -> list:
    """Misses with distinct canonical keys; answers are all empty."""
    return [parse_query(_title_query(f"nohit #{index}"))
            for index in range(count)]


def canonical(answer) -> str:
    return json.dumps(database_to_json(answer, sort_oids=True),
                      sort_keys=True)


def build_cache(db, probes: list, fillers: list,
                version: int = 1) -> ShardedQueryCache:
    # 2x headroom: HRW spreads keys statistically, so a shard sized at
    # exactly the mean would evict on the hot shards.
    cache = ShardedQueryCache(shards=SHARDS,
                              capacity=2 * (len(probes) + len(fillers)))
    empty = evaluate(fillers[0], db) if fillers else None
    for query in fillers:
        cache.insert(query, empty, version)
    for query in probes:
        cache.insert(query, evaluate(query, db), version)
    return cache


def _best_of(rounds: int, fn) -> float:
    return min(fn() for _ in range(rounds))


def _time_lookups(cache: ShardedQueryCache, probes: list,
                  version: int) -> float:
    """Best-of-ROUNDS total seconds for one pass over the probes."""
    def one_pass() -> float:
        started = time.perf_counter()
        for query in probes:
            assert cache.lookup(query, version) is not None
        return time.perf_counter() - started
    return _best_of(ROUNDS, one_pass)


def run_size(entries: int, db=None) -> dict:
    db = db if db is not None else backing_database()
    probes = probe_queries(db)
    fillers = filler_queries(entries - len(probes))

    started = time.perf_counter()
    cache = build_cache(db, probes, fillers)
    build_s = time.perf_counter() - started
    assert len(cache) == entries

    with tempfile.TemporaryDirectory(prefix="repro-bench-store-") as root:
        layout = StorageLayout(Path(root))
        disk = ShardedCacheStore(layout, SHARDS)
        started = time.perf_counter()
        disk.save(cache, store_version=1)
        save_s = time.perf_counter() - started
        disk_bytes = sum(layout.shard_path(index).stat().st_size
                         for index in range(SHARDS))

        reloaded = ShardedQueryCache(shards=SHARDS,
                                     capacity=2 * entries)
        started = time.perf_counter()
        loaded = disk.load(reloaded, store_version=1)
        load_s = time.perf_counter() - started
        assert loaded == {"entries": entries, "dropped": 0}, loaded

    # Parity first: the reloaded cache must answer byte-identically.
    for query in probes:
        before = cache.lookup(query, 1)
        after = reloaded.lookup(query, 1)
        assert canonical(before) == canonical(after), \
            f"warm-from-disk diverged on {query}"

    def cold_pass() -> float:
        started = time.perf_counter()
        for query in probes:
            evaluate(query, db)
        return time.perf_counter() - started

    cold_s = _best_of(ROUNDS, cold_pass)
    warm_mem_s = _time_lookups(cache, probes, version=1)
    warm_disk_s = _time_lookups(reloaded, probes, version=1)
    ratio = warm_disk_s / max(warm_mem_s, 1e-9)
    assert ratio <= MAX_DISK_RATIO, (
        f"warm-from-disk lookups {ratio:.2f}x slower than in-memory "
        f"warm (bound: {MAX_DISK_RATIO}x)")

    return {
        "scenario": f"cache x{entries}",
        "entries": entries,
        "build_s": build_s,
        "save_s": save_s,
        "load_s": load_s,
        "disk_mb": disk_bytes / 1e6,
        "cold_ms": cold_s / len(probes) * 1e3,
        "warm_mem_ms": warm_mem_s / len(probes) * 1e3,
        "warm_disk_ms": warm_disk_s / len(probes) * 1e3,
        "disk_vs_mem": ratio,
        "cold_vs_warm": cold_s / max(warm_disk_s, 1e-9),
    }


def run_durable_store() -> dict:
    """Ingest / compact / reopen timings for the OEM store itself."""
    db = backing_database()
    with tempfile.TemporaryDirectory(prefix="repro-bench-wal-") as root:
        store = DurableStore.create(root, db.name)
        started = time.perf_counter()
        store.ingest(db)
        ingest_s = time.perf_counter() - started
        objects = store.stats()["objects"]
        version = store.version
        store.close()

        started = time.perf_counter()
        DurableStore.open(root).close()
        replay_s = time.perf_counter() - started

        store = DurableStore.open(root)
        started = time.perf_counter()
        store.compact()
        compact_s = time.perf_counter() - started
        store.close()

        started = time.perf_counter()
        reopened = DurableStore.open(root)
        snapshot_s = time.perf_counter() - started
        assert reopened.version == version
        reopened.close()

    return {
        "scenario": f"durable store ({BACKING_PUBS} pubs)",
        "objects": objects,
        "ingest_s": ingest_s,
        "reopen_wal_s": replay_s,
        "compact_s": compact_s,
        "reopen_snapshot_s": snapshot_s,
    }


def run_experiment() -> list[dict]:
    db = backing_database()
    rows = [run_size(entries, db) for entries in SIZES]
    rows.append(run_durable_store())
    return rows


def print_table(rows: list[dict]) -> None:
    print(f"{'scenario':24} {'build(s)':>9} {'save(s)':>8} "
          f"{'load(s)':>8} {'MB':>7} {'cold(ms)':>9} {'mem(ms)':>8} "
          f"{'disk(ms)':>9} {'ratio':>6}")
    for row in rows:
        if "entries" not in row:
            continue
        print(f"{row['scenario']:24} {row['build_s']:>9.2f} "
              f"{row['save_s']:>8.2f} {row['load_s']:>8.2f} "
              f"{row['disk_mb']:>7.1f} {row['cold_ms']:>9.3f} "
              f"{row['warm_mem_ms']:>8.3f} {row['warm_disk_ms']:>9.3f} "
              f"{row['disk_vs_mem']:>6.2f}")
    for row in rows:
        if "ingest_s" not in row:
            continue
        print(f"\n{row['scenario']}: {row['objects']} objects, "
              f"ingest={row['ingest_s']:.2f}s "
              f"reopen(wal)={row['reopen_wal_s']:.2f}s "
              f"compact={row['compact_s']:.2f}s "
              f"reopen(snapshot)={row['reopen_snapshot_s']:.2f}s")


# -- pytest entry points ----------------------------------------------------

def test_warm_disk_within_bound_small():
    """The 2x acceptance bound at a CI-friendly size (run_size asserts)."""
    row = run_size(5_000)
    assert row["disk_vs_mem"] <= MAX_DISK_RATIO
    assert row["cold_vs_warm"] > 1.0, row


def test_durable_store_reopen_converges():
    row = run_durable_store()
    assert row["objects"] > BACKING_PUBS
    assert row["reopen_snapshot_s"] > 0


if __name__ == "__main__":
    print_table(run_experiment())
