#!/usr/bin/env python3
"""E6 -- candidate enumeration is exponential in k; the covering
heuristic prunes it (Sections 3.4, 5.1).

Claim: "Step 2 can generate an exponential number of candidate
rewritings" and "the efficiency of the algorithm can be substantially
improved with ... simple heuristics".

Series reported, for k conditions with one per-condition view each:
k -> candidates enumerated, candidates tested (heuristic off/on),
rewritings found (must coincide).
"""

from __future__ import annotations

import time

from repro.logic.terms import Constant, FunctionTerm, Variable
from repro.rewriting import rewrite
from repro.tsl.ast import Condition, ObjectPattern, Query
from repro.workloads import condition_view

K_VALUES = (2, 3, 4, 5)


def loose_head_query(k: int) -> Query:
    """k independent conditions; the head binds only condition 1.

    Non-covering candidates stay *safe*, so only the heuristic (not the
    safety check) can prune them before the equivalence test.
    """
    conditions = tuple(
        Condition(ObjectPattern(Variable(f"P{i}"), Constant(f"c{i}"),
                                Variable(f"V{i}")), "db")
        for i in range(1, k + 1))
    head = ObjectPattern(FunctionTerm("f", (Variable("P1"),)),
                         Constant("result"), Variable("V1"))
    return Query(head, conditions)


def run_once(k: int, heuristic: bool) -> dict:
    query = loose_head_query(k)
    views = {f"V{i}": condition_view(i) for i in range(1, k + 1)}
    started = time.perf_counter()
    result = rewrite(query, views, heuristic=heuristic)
    elapsed = time.perf_counter() - started
    return {
        "k": k,
        "heuristic": heuristic,
        "enumerated": result.stats.candidates_enumerated,
        "tested": result.stats.candidates_tested,
        "pruned": result.stats.candidates_pruned_by_heuristic,
        "rewritings": len(result.rewritings),
        "seconds": elapsed,
    }


def run_experiment() -> list[dict]:
    rows = []
    for k in K_VALUES:
        for heuristic in (False, True):
            rows.append(run_once(k, heuristic))
    return rows


def print_table(rows: list[dict]) -> None:
    print(f"{'k':>2} {'heuristic':>9} {'enumerated':>11} {'tested':>7} "
          f"{'pruned':>7} {'rewritings':>11} {'seconds':>9}")
    for row in rows:
        print(f"{row['k']:>2} {str(row['heuristic']):>9} "
              f"{row['enumerated']:>11} {row['tested']:>7} "
              f"{row['pruned']:>7} {row['rewritings']:>11} "
              f"{row['seconds']:>9.3f}")


# -- pytest-benchmark entry points ------------------------------------------

def test_exhaustive_k4(benchmark):
    row = benchmark(run_once, 4, False)
    benchmark.extra_info.update(
        {k: v for k, v in row.items() if k != "seconds"})


def test_heuristic_k4(benchmark):
    row = benchmark(run_once, 4, True)
    benchmark.extra_info.update(
        {k: v for k, v in row.items() if k != "seconds"})


def test_heuristic_preserves_output_and_prunes():
    for k in (2, 3, 4):
        slow = run_once(k, False)
        fast = run_once(k, True)
        assert fast["rewritings"] == slow["rewritings"]
        assert fast["tested"] < slow["tested"]


def test_enumeration_grows_exponentially():
    counts = [run_once(k, False)["enumerated"] for k in K_VALUES]
    ratios = [b / a for a, b in zip(counts, counts[1:])]
    assert all(r > 2 for r in ratios), counts


if __name__ == "__main__":
    print(__doc__)
    print_table(run_experiment())
