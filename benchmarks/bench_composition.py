#!/usr/bin/env python3
"""E7 -- query-view composition is exponential (Sections 5, 5.1).

Claim: "the construction of Q'(V1..Vn) using a query composition
algorithm takes exponential time"; the cause is fusion -- every goal of a
condition chain can resolve against every component of the fused view
head.

Series reported: view head fan-out f -> #rules in the composed union,
total composed conditions, time.
"""

from __future__ import annotations

import time

from repro.rewriting import compose
from repro.workloads import fanout_probe_query, fanout_view

FANOUTS = (1, 2, 3, 4)


def compose_fanout(fanout: int) -> tuple[int, int]:
    view = fanout_view(fanout, name="V")
    probe = fanout_probe_query(source="V")
    rules = compose(probe, {"V": view})
    conditions = sum(len(rule.body) for rule in rules)
    return len(rules), conditions


def run_experiment() -> list[dict]:
    rows = []
    for fanout in FANOUTS:
        started = time.perf_counter()
        rules, conditions = compose_fanout(fanout)
        elapsed = time.perf_counter() - started
        rows.append({"fanout": fanout, "rules": rules,
                     "conditions": conditions, "seconds": elapsed})
    return rows


def print_table(rows: list[dict]) -> None:
    print(f"{'fanout':>6} {'union rules':>12} {'conditions':>11} "
          f"{'seconds':>9}")
    for row in rows:
        print(f"{row['fanout']:>6} {row['rules']:>12} "
              f"{row['conditions']:>11} {row['seconds']:>9.4f}")


# -- pytest-benchmark entry points ------------------------------------------

def test_compose_fanout_3(benchmark):
    rules, conditions = benchmark(compose_fanout, 3)
    benchmark.extra_info.update({"rules": rules, "conditions": conditions})


def test_union_grows_with_fanout():
    sizes = [compose_fanout(f)[0] for f in FANOUTS]
    assert sizes == sorted(sizes)
    assert sizes[-1] > sizes[0]


if __name__ == "__main__":
    print(__doc__)
    print_table(run_experiment())
