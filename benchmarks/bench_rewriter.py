#!/usr/bin/env python3
"""End-to-end rewriter benchmark on the paper's workload (E2 timing).

Times the complete Section 3.4 pipeline -- mapping discovery, candidate
enumeration with the covering heuristic, chase, composition, equivalence
-- on the paper's own queries over (V1), and on the multi-view
per-condition workload.  This is the headline "how fast is the
algorithm" number for the reproduction.
"""

from __future__ import annotations

import time

from repro.obs import METRICS
from repro.rewriting import Explanation, paper_dtd, rewrite
from repro.rewriting.canon import query_key
from repro.workloads import (condition_view, k_conditions_query, query_q3,
                             query_q5, query_q7, view_v1)

#: Repetitions for the instrumentation-overhead measurement.
OVERHEAD_REPEATS = 10

#: The signature-prefilter series: a mediator with many registered views
#: of which only a handful mention the query's labels.  200 dead views
#: is a realistic "big mediator config"; the pre-filter should skip all
#: of them before Step 1A.
PREFILTER_QUERY_K = 6
PREFILTER_DEAD_VIEWS = 200
PREFILTER_REPEATS = 3

#: The opt-out path must stay within noise of the instrumented one --
#: generous bound so CI machines under load don't flake, but a default
#: path that accidentally does the EXPLAIN/metrics work blows past it.
OVERHEAD_TOLERANCE = 2.0
OVERHEAD_SLACK_SECONDS = 0.05


def rewrite_q3():
    return rewrite(query_q3(), {"V1": view_v1()})


def rewrite_q5():
    return rewrite(query_q5(), {"V1": view_v1()})


def rewrite_q7_plain():
    return rewrite(query_q7(), {"V1": view_v1()})


def rewrite_q7_dtd():
    return rewrite(query_q7(), {"V1": view_v1()}, constraints=paper_dtd())


def rewrite_k(k: int):
    views = {f"V{i}": condition_view(i) for i in range(1, k + 1)}
    return rewrite(k_conditions_query(k), views, total_only=True)


SCENARIOS = {
    "Q3 over V1": rewrite_q3,
    "Q5 over V1 (set mapping)": rewrite_q5,
    "Q7 over V1 (reject)": rewrite_q7_plain,
    "Q7 over V1 + DTD": rewrite_q7_dtd,
    "k=3 per-condition views": lambda: rewrite_k(3),
    "k=4 per-condition views": lambda: rewrite_k(4),
}


def _best_of(fn, repeats: int) -> tuple[float, object]:
    best = float("inf")
    result = None
    for _ in range(repeats):
        started = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - started)
    return best, result


def measure_overhead(repeats: int = OVERHEAD_REPEATS) -> dict:
    """Opt-in instrumentation cost: plain vs explain+metrics rewrite.

    The plain run uses the library defaults (``explain=None``,
    ``metrics=None``); the instrumented run attaches a fresh
    :class:`~repro.rewriting.Explanation` per call and feeds the
    process-wide :data:`~repro.obs.METRICS` registry (so a recorded
    snapshot carries the phase histograms this produces).  Asserts the
    default path is within noise of the instrumented one -- the
    "observability is opt-in" contract.
    """
    plain_s, result = _best_of(rewrite_q3, repeats)
    instrumented_s, _ = _best_of(
        lambda: rewrite(query_q3(), {"V1": view_v1()},
                        metrics=METRICS, explain=Explanation()),
        repeats)
    assert plain_s <= instrumented_s * OVERHEAD_TOLERANCE \
        + OVERHEAD_SLACK_SECONDS, (
        f"default (uninstrumented) rewrite took {plain_s:.4f}s vs "
        f"{instrumented_s:.4f}s instrumented -- the opt-out path is "
        f"paying for observability it did not ask for")
    return {"scenario": f"obs overhead (Q3 best of {repeats})",
            "rewritings": len(result.rewritings),
            "tested": result.stats.candidates_tested,
            "seconds": plain_s,
            "instrumented_seconds": instrumented_s,
            "overhead_ratio": (instrumented_s / plain_s
                               if plain_s > 0 else None)}


def _prefilter_views(k: int = PREFILTER_QUERY_K,
                     dead: int = PREFILTER_DEAD_VIEWS) -> dict:
    """k live per-condition views plus *dead* label-disjoint ones."""
    views = {}
    for index in range(1, k + 1):
        view = condition_view(index)
        views[view.name] = view
    for index in range(1000, 1000 + dead):
        view = condition_view(index)
        views[view.name] = view
    return views


def measure_signature_prefilter(repeats: int = PREFILTER_REPEATS) -> dict:
    """Label-signature pre-filter on vs off over a many-view config.

    Uses the plain :func:`~repro.rewriting.rewrite` (no session), so
    neither series can serve the other from a memo; asserts the two
    rewriting sets are canonically identical -- the benchmark doubles as
    a parity check on exactly the configuration it measures.
    """
    query = k_conditions_query(PREFILTER_QUERY_K)
    views = _prefilter_views()
    on_s, on = _best_of(
        lambda: rewrite(query, views, total_only=True), repeats)
    off_s, off = _best_of(
        lambda: rewrite(query, views, total_only=True,
                        signature_prefilter=False), repeats)

    def canonical(result):
        return {(query_key(r.query), tuple(sorted(r.views_used)))
                for r in result.rewritings}

    assert canonical(on) == canonical(off), (
        "signature pre-filter changed the rewriting set on the "
        "benchmark configuration")
    assert on.stats.views_pruned_signature == PREFILTER_DEAD_VIEWS
    return {"scenario": f"prefilter {PREFILTER_DEAD_VIEWS}+"
                        f"{PREFILTER_QUERY_K} views",
            "rewritings": len(on.rewritings),
            "tested": on.stats.candidates_tested,
            "seconds": on_s,
            "noprefilter_seconds": off_s,
            "prefilter_speedup": off_s / on_s if on_s > 0 else None,
            "views_pruned": on.stats.views_pruned_signature}


def run_experiment() -> list[dict]:
    rows = []
    for name, scenario in SCENARIOS.items():
        started = time.perf_counter()
        result = scenario()
        elapsed = time.perf_counter() - started
        rows.append({"scenario": name,
                     "rewritings": len(result.rewritings),
                     "tested": result.stats.candidates_tested,
                     "seconds": elapsed})
    rows.append(measure_overhead())
    rows.append(measure_signature_prefilter())
    return rows


def print_table(rows: list[dict]) -> None:
    print(f"{'scenario':26} {'rewritings':>11} {'tested':>7} "
          f"{'seconds':>9}")
    for row in rows:
        print(f"{row['scenario']:26} {row['rewritings']:>11} "
              f"{row['tested']:>7} {row['seconds']:>9.3f}")


# -- pytest-benchmark entry points ------------------------------------------

def test_rewrite_q3(benchmark):
    result = benchmark(rewrite_q3)
    assert len(result.rewritings) == 1


def test_rewrite_q5(benchmark):
    result = benchmark(rewrite_q5)
    assert len(result.rewritings) == 1


def test_rewrite_q7_with_dtd(benchmark):
    result = benchmark(rewrite_q7_dtd)
    assert len(result.rewritings) == 1


def test_rewrite_k3(benchmark):
    result = benchmark(rewrite_k, 3)
    assert result.rewritings


if __name__ == "__main__":
    print(__doc__)
    print_table(run_experiment())
