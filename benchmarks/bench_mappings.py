#!/usr/bin/env python3
"""E5 -- mapping discovery is worst-case exponential (Section 5.1).

Claim: "Step 1 can generate an exponential in the size of the view bodies
number of mappings."  The self-similar star family exhibits it (b^b
mappings for b identical branches); the distinct-label variant and the
chain family stay at one mapping and polynomial time.

Series reported: branches/depth -> #mappings, time.
"""

from __future__ import annotations

import time

from repro.rewriting import body_mappings
from repro.tsl import query_paths
from repro.workloads import chain_query, chain_view, star_query, star_view

STAR_SIZES = (2, 3, 4, 5)
CHAIN_SIZES = (4, 8, 16, 32)


def count_star_mappings(branches: int, distinct: bool = False) -> int:
    view = star_view(branches, distinct_labels=distinct)
    query = star_query(branches, distinct_labels=distinct)
    return len(body_mappings(query_paths(view), query_paths(query)))


def count_chain_mappings(depth: int) -> int:
    view = chain_view(depth)
    query = chain_query(depth)
    return len(body_mappings(query_paths(view), query_paths(query)))


def run_experiment() -> list[dict]:
    rows = []
    for branches in STAR_SIZES:
        started = time.perf_counter()
        count = count_star_mappings(branches)
        elapsed = time.perf_counter() - started
        rows.append({"family": "star(identical)", "size": branches,
                     "mappings": count, "seconds": elapsed})
    for branches in STAR_SIZES:
        started = time.perf_counter()
        count = count_star_mappings(branches, distinct=True)
        elapsed = time.perf_counter() - started
        rows.append({"family": "star(distinct)", "size": branches,
                     "mappings": count, "seconds": elapsed})
    for depth in CHAIN_SIZES:
        started = time.perf_counter()
        count = count_chain_mappings(depth)
        elapsed = time.perf_counter() - started
        rows.append({"family": "chain", "size": depth,
                     "mappings": count, "seconds": elapsed})
    return rows


def print_table(rows: list[dict]) -> None:
    print(f"{'family':18} {'size':>4} {'mappings':>10} {'seconds':>10}")
    for row in rows:
        print(f"{row['family']:18} {row['size']:>4} "
              f"{row['mappings']:>10} {row['seconds']:>10.4f}")


# -- pytest-benchmark entry points ------------------------------------------

def test_star_identical_explodes(benchmark):
    count = benchmark(count_star_mappings, 4)
    assert count == 4 ** 4
    benchmark.extra_info["mappings"] = count


def test_star_distinct_stays_flat(benchmark):
    count = benchmark(count_star_mappings, 4, True)
    assert count == 1
    benchmark.extra_info["mappings"] = count


def test_chain_polynomial(benchmark):
    count = benchmark(count_chain_mappings, 32)
    assert count == 1
    benchmark.extra_info["mappings"] = count


def test_exponential_shape():
    counts = [count_star_mappings(b) for b in STAR_SIZES]
    # Strictly super-exponential growth: b^b.
    assert counts == [b ** b for b in STAR_SIZES]


if __name__ == "__main__":
    print(__doc__)
    print_table(run_experiment())
