#!/usr/bin/env python3
"""E5 -- mapping discovery is worst-case exponential (Section 5.1).

Claim: "Step 1 can generate an exponential in the size of the view bodies
number of mappings."  The self-similar star family exhibits it (b^b
mappings for b identical branches); the distinct-label variant and the
chain family stay at one mapping and polynomial time.

The wide family measures the target-path index
(:mod:`repro.rewriting.index`): k flat conditions with k distinct
constant labels give the scan k^2 doomed ``map_path_into`` attempts
where the index does k postings lookups.  Parity is asserted inside the
experiment -- the indexed and scanned searches must return the identical
mapping list before the speedup row is emitted.

Series reported: branches/depth/width -> #mappings, time, speedup.
"""

from __future__ import annotations

import time

from repro.rewriting import body_mappings
from repro.tsl import query_paths
from repro.workloads import (chain_query, chain_view, k_conditions_query,
                             star_query, star_view)

STAR_SIZES = (2, 3, 4, 5)
CHAIN_SIZES = (4, 8, 16, 32)
WIDE_SIZES = (16, 32, 64, 128)


def count_star_mappings(branches: int, distinct: bool = False) -> int:
    view = star_view(branches, distinct_labels=distinct)
    query = star_query(branches, distinct_labels=distinct)
    return len(body_mappings(query_paths(view), query_paths(query)))


def count_chain_mappings(depth: int) -> int:
    view = chain_view(depth)
    query = chain_query(depth)
    return len(body_mappings(query_paths(view), query_paths(query)))


def wide_mappings(width: int, use_index: bool = True):
    """Map a k-condition body onto itself, with or without the index."""
    paths = query_paths(k_conditions_query(width))
    return body_mappings(paths, paths, use_index=use_index)


def run_experiment() -> list[dict]:
    rows = []
    for branches in STAR_SIZES:
        started = time.perf_counter()
        count = count_star_mappings(branches)
        elapsed = time.perf_counter() - started
        rows.append({"family": "star(identical)", "size": branches,
                     "mappings": count, "seconds": elapsed})
    for branches in STAR_SIZES:
        started = time.perf_counter()
        count = count_star_mappings(branches, distinct=True)
        elapsed = time.perf_counter() - started
        rows.append({"family": "star(distinct)", "size": branches,
                     "mappings": count, "seconds": elapsed})
    for depth in CHAIN_SIZES:
        started = time.perf_counter()
        count = count_chain_mappings(depth)
        elapsed = time.perf_counter() - started
        rows.append({"family": "chain", "size": depth,
                     "mappings": count, "seconds": elapsed})
    for width in WIDE_SIZES:
        started = time.perf_counter()
        indexed = wide_mappings(width)
        indexed_s = time.perf_counter() - started
        started = time.perf_counter()
        scanned = wide_mappings(width, use_index=False)
        scan_s = time.perf_counter() - started
        # The index must be invisible: identical list, identical order.
        assert indexed == scanned, f"index parity broken at width {width}"
        rows.append({"family": "wide(indexed)", "size": width,
                     "mappings": len(indexed), "seconds": indexed_s})
        rows.append({"family": "wide(scan)", "size": width,
                     "mappings": len(scanned), "seconds": scan_s})
        rows.append({"family": "wide(indexed-vs-scan)", "size": width,
                     "mappings": len(indexed), "parity": True,
                     "speedup": scan_s / max(indexed_s, 1e-9)})
    return rows


def print_table(rows: list[dict]) -> None:
    print(f"{'family':22} {'size':>4} {'mappings':>10} "
          f"{'seconds':>10} {'speedup':>9}")
    for row in rows:
        seconds = (f"{row['seconds']:>10.4f}"
                   if "seconds" in row else " " * 10)
        speedup = (f"{row['speedup']:>8.1f}x"
                   if "speedup" in row else "")
        print(f"{row['family']:22} {row['size']:>4} "
              f"{row['mappings']:>10} {seconds} {speedup}")


# -- pytest-benchmark entry points ------------------------------------------

def test_star_identical_explodes(benchmark):
    count = benchmark(count_star_mappings, 4)
    assert count == 4 ** 4
    benchmark.extra_info["mappings"] = count


def test_star_distinct_stays_flat(benchmark):
    count = benchmark(count_star_mappings, 4, True)
    assert count == 1
    benchmark.extra_info["mappings"] = count


def test_chain_polynomial(benchmark):
    count = benchmark(count_chain_mappings, 32)
    assert count == 1
    benchmark.extra_info["mappings"] = count


def test_wide_indexed(benchmark):
    result = benchmark(wide_mappings, 64)
    assert len(result) == 1
    benchmark.extra_info["mappings"] = len(result)


def test_wide_indexed_scan_parity():
    for width in (8, 32):
        assert wide_mappings(width) == wide_mappings(width,
                                                     use_index=False)


def test_exponential_shape():
    counts = [count_star_mappings(b) for b in STAR_SIZES]
    # Strictly super-exponential growth: b^b.
    assert counts == [b ** b for b in STAR_SIZES]


if __name__ == "__main__":
    print(__doc__)
    print_table(run_experiment())
