#!/usr/bin/env python3
"""E4 (ablation) -- structural constraints enable otherwise-impossible
rewritings (Section 3.3, Example 3.5).

Claim: "The existence of such constraints allows us [to] find rewritings
in cases where, in the absence of constraints, the algorithm would fail."

Workload: a family of (Q7)-style queries that pin the middle label
(name, alias paths of the Section 3.3 DTD) over the label-losing view
(V1).  Series reported: query -> rewritings without constraints, with
the DTD, and with instance-mined (DataGuide) constraints.
"""

from __future__ import annotations

import time

from repro.rewriting import dtd_from_dataguide, paper_dtd, rewrite
from repro.tsl import parse_query
from repro.workloads import generate_people, query_q3, query_q5, view_v1

QUERIES = {
    "Q3 (value only)": query_q3("stanford"),
    "Q5 (nested, any label)": query_q5(),
    "Q7 (label name)": parse_query(
        "<f(P) stanford yes> :- "
        "<P p {<X name {<Z last stanford>}>}>@db"),
    "Q7' (label phone)": parse_query(
        "<f(P) stanford yes> :- "
        "<P p {<X phone {<Z last stanford>}>}>@db"),
}


def count_rewritings(query, constraints) -> int:
    return len(rewrite(query, {"V1": view_v1()},
                       constraints=constraints).rewritings)


def run_experiment() -> list[dict]:
    dtd = paper_dtd()
    mined = dtd_from_dataguide(generate_people(100, seed=5))
    rows = []
    for name, query in QUERIES.items():
        started = time.perf_counter()
        none = count_rewritings(query, None)
        with_dtd = count_rewritings(query, dtd)
        with_mined = count_rewritings(query, mined)
        elapsed = time.perf_counter() - started
        rows.append({"query": name, "none": none, "dtd": with_dtd,
                     "dataguide": with_mined, "seconds": elapsed})
    return rows


def print_table(rows: list[dict]) -> None:
    print(f"{'query':26} {'no constraints':>14} {'DTD':>5} "
          f"{'DataGuide':>10} {'seconds':>9}")
    for row in rows:
        print(f"{row['query']:26} {row['none']:>14} {row['dtd']:>5} "
              f"{row['dataguide']:>10} {row['seconds']:>9.2f}")


# -- pytest-benchmark entry points ------------------------------------------

def test_q7_with_dtd(benchmark):
    dtd = paper_dtd()
    count = benchmark(count_rewritings, QUERIES["Q7 (label name)"], dtd)
    assert count == 1


def test_gain_shape():
    dtd = paper_dtd()
    q7 = QUERIES["Q7 (label name)"]
    assert count_rewritings(q7, None) == 0
    assert count_rewritings(q7, dtd) == 1
    # Q3/Q5 never needed constraints; they must not regress.
    assert count_rewritings(QUERIES["Q3 (value only)"], dtd) == 1
    assert count_rewritings(QUERIES["Q5 (nested, any label)"], dtd) == 1


if __name__ == "__main__":
    print(__doc__)
    print_table(run_experiment())
