#!/usr/bin/env python3
"""Diff two recorded benchmark snapshots and flag regressions.

Usage::

    python benchmarks/compare.py BASELINE.json CURRENT.json \
        [--threshold 1.5] [--noise-floor 0.05] [--fail-on-regression]

Both inputs are ``BENCH_<date>.json`` snapshots written by
``run_all.py --record`` (or ``--json``).  Experiments are matched by
name and rows within an experiment by their string-valued fields (the
scenario / configuration columns); every shared numeric field is then
compared.  A row regresses when the current value exceeds
``baseline * threshold`` AND the absolute delta exceeds the noise
floor -- the floor keeps micro-benchmarks that jitter by a millisecond
from tripping a ratio test on a near-zero baseline.

Exit status is 0 unless ``--fail-on-regression`` is given and at least
one regression was found (CI runs warn-only against the committed
baseline, since the baseline machine and the runner differ).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: Snapshot schema this comparator understands (see run_all.SCHEMA_VERSION).
SCHEMA_VERSION = 1

#: Numeric fields that are counters, not timings: compared for drift but
#: never counted as perf regressions (a different candidate count is a
#: behavior change worth seeing, not a slowdown).
COUNTER_HINTS = ("rewritings", "tested", "candidates", "hits", "misses",
                 "count", "rules", "mappings", "atoms", "size",
                 "speedup")


def load_snapshot(path: str) -> dict:
    data = json.loads(Path(path).read_text(encoding="utf-8"))
    version = data.get("schema_version", 1)
    if version != SCHEMA_VERSION:
        raise SystemExit(f"{path}: snapshot schema_version {version} is "
                         f"not supported (expected {SCHEMA_VERSION})")
    if "benchmarks" not in data:
        raise SystemExit(f"{path}: not a benchmark snapshot "
                         f"(no 'benchmarks' key)")
    return data


def row_key(row: dict) -> tuple:
    """Identity of a row: its string-valued (configuration) fields."""
    return tuple(sorted((k, v) for k, v in row.items()
                        if isinstance(v, str)))


def _is_counter(field: str) -> bool:
    return any(hint in field for hint in COUNTER_HINTS)


def compare_rows(base_row: dict, curr_row: dict, threshold: float,
                 noise_floor: float) -> list[dict]:
    """Per-field deltas for one matched row pair."""
    deltas = []
    for field, base_value in base_row.items():
        curr_value = curr_row.get(field)
        if isinstance(base_value, bool) or isinstance(curr_value, bool):
            continue
        if not isinstance(base_value, (int, float)) or \
                not isinstance(curr_value, (int, float)):
            continue
        delta = curr_value - base_value
        ratio = curr_value / base_value if base_value else None
        regressed = (not _is_counter(field)
                     and curr_value > base_value * threshold
                     and delta > noise_floor)
        improved = (not _is_counter(field) and ratio is not None
                    and curr_value * threshold < base_value
                    and -delta > noise_floor)
        deltas.append({"field": field, "baseline": base_value,
                       "current": curr_value, "delta": delta,
                       "ratio": ratio, "regressed": regressed,
                       "improved": improved,
                       "counter": _is_counter(field)})
    return deltas


def compare_snapshots(baseline: dict, current: dict, threshold: float,
                      noise_floor: float) -> dict:
    """The full diff: matched/missing experiments and per-row deltas."""
    base_benchmarks = {b["name"]: b for b in baseline["benchmarks"]}
    curr_benchmarks = {b["name"]: b for b in current["benchmarks"]}
    report = {
        "baseline_rev": baseline.get("git_rev"),
        "current_rev": current.get("git_rev"),
        "threshold": threshold,
        "noise_floor": noise_floor,
        "missing_experiments": sorted(base_benchmarks.keys()
                                      - curr_benchmarks.keys()),
        "new_experiments": sorted(curr_benchmarks.keys()
                                  - base_benchmarks.keys()),
        "experiments": [],
        "regressions": 0,
        "improvements": 0,
    }
    for name in sorted(base_benchmarks.keys() & curr_benchmarks.keys()):
        base_rows = {row_key(r): r for r in base_benchmarks[name]["rows"]}
        curr_rows = {row_key(r): r for r in curr_benchmarks[name]["rows"]}
        entry = {"name": name, "rows": [],
                 "missing_rows": len(base_rows.keys() - curr_rows.keys()),
                 "new_rows": len(curr_rows.keys() - base_rows.keys())}
        for key in sorted(base_rows.keys() & curr_rows.keys()):
            deltas = compare_rows(base_rows[key], curr_rows[key],
                                  threshold, noise_floor)
            label = ", ".join(v for _, v in key) or "(unlabeled)"
            entry["rows"].append({"row": label, "fields": deltas})
            report["regressions"] += sum(d["regressed"] for d in deltas)
            report["improvements"] += sum(d["improved"] for d in deltas)
        report["experiments"].append(entry)
    return report


def print_report(report: dict) -> None:
    print(f"baseline rev: {report['baseline_rev']}")
    print(f"current  rev: {report['current_rev']}")
    print(f"threshold: {report['threshold']}x, noise floor: "
          f"{report['noise_floor']}")
    for name in report["missing_experiments"]:
        print(f"!! experiment {name} missing from current snapshot")
    for name in report["new_experiments"]:
        print(f"++ experiment {name} new in current snapshot")
    for experiment in report["experiments"]:
        printed_header = False
        for row in experiment["rows"]:
            flagged = [d for d in row["fields"]
                       if d["regressed"] or d["improved"]]
            for delta in flagged:
                if not printed_header:
                    print(f"-- {experiment['name']}")
                    printed_header = True
                marker = "REGRESSION" if delta["regressed"] else "improved"
                ratio = (f"{delta['ratio']:.2f}x"
                         if delta["ratio"] is not None else "n/a")
                print(f"   {marker}: [{row['row']}] {delta['field']} "
                      f"{delta['baseline']:.4f} -> "
                      f"{delta['current']:.4f} ({ratio})")
    print(f"{report['regressions']} regression(s), "
          f"{report['improvements']} improvement(s)")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="diff two benchmark snapshots")
    parser.add_argument("baseline", help="baseline BENCH_*.json")
    parser.add_argument("current", help="current BENCH_*.json")
    parser.add_argument("--threshold", type=float, default=1.5,
                        help="regression ratio (default: 1.5 = 50%% "
                             "slower)")
    parser.add_argument("--noise-floor", type=float, default=0.05,
                        help="absolute delta a regression must also "
                             "exceed (default: 0.05, i.e. 50ms for "
                             "seconds-valued fields)")
    parser.add_argument("--json", metavar="OUT",
                        help="also write the full diff as JSON")
    parser.add_argument("--fail-on-regression", action="store_true",
                        help="exit 1 when regressions were found "
                             "(default: warn only)")
    args = parser.parse_args(argv)

    report = compare_snapshots(load_snapshot(args.baseline),
                               load_snapshot(args.current),
                               args.threshold, args.noise_floor)
    print_report(report)
    if args.json:
        Path(args.json).write_text(
            json.dumps(report, indent=2) + "\n", encoding="utf-8")
    if args.fail_on_regression and report["regressions"]:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
