#!/usr/bin/env python3
"""Ablation -- minimizing compositions before the equivalence test.

Composition brings one fresh view-body copy per resolution goal (the
fusion-correct unfolding), so raw compositions carry heavy redundancy.
DESIGN.md calls out the design choice of running CQ-style minimization on
each composed rule before Theorem 4.2's mutual-mapping search.  This
ablation measures the end-to-end equivalence-test time with and without
that pass, over the paper's (Q4)/(V1) composition and the fan-out family.

Expected shape: minimization costs a little on tiny inputs and saves a
lot as compositions grow (the mapping search is exponential in the number
of body paths).
"""

from __future__ import annotations

import time

from repro.rewriting import chase, compose, programs_equivalent
from repro.rewriting.equivalence import prepare_program
from repro.tsl import parse_query, query_paths
from repro.workloads import fanout_probe_query, fanout_view, view_v1

FANOUTS = (1, 2, 3)


def _paper_case():
    v1 = view_v1()
    q4n = parse_query(
        "<f(P) stanford yes> :- "
        "<g(P) p {<pp(P,Y) pr Y>}>@V1 AND "
        "<g(P) p {<h(X) v leland>}>@V1")
    q3 = parse_query("<f(P) stanford yes> :- <P p {<X Y leland>}>@db")
    return compose(q4n, {"V1": v1}), q3


def _fanout_case(fanout: int):
    view = fanout_view(fanout, name="V")
    probe = fanout_probe_query("V")
    composed = compose(probe, {"V": view})
    reference = prepare_program(composed, minimize_rules=True)
    return composed, reference


def equivalence_time(composed, reference, minimize_rules: bool) -> float:
    started = time.perf_counter()
    assert programs_equivalent(
        prepare_program(composed, minimize_rules=minimize_rules),
        reference)
    return time.perf_counter() - started


def run_experiment() -> list[dict]:
    rows = []
    composed, q3 = _paper_case()
    for minimize_rules in (False, True):
        rows.append({
            "case": "(V1) o (Q4)n vs (Q3)",
            "minimize": minimize_rules,
            "paths": sum(len(query_paths(r)) for r in composed),
            "seconds": equivalence_time(composed, [q3], minimize_rules),
        })
    for fanout in FANOUTS:
        composed, reference = _fanout_case(fanout)
        for minimize_rules in (False, True):
            rows.append({
                "case": f"fanout({fanout}) self-equivalence",
                "minimize": minimize_rules,
                "paths": sum(len(query_paths(r)) for r in composed),
                "seconds": equivalence_time(composed, reference,
                                            minimize_rules),
            })
    return rows


def print_table(rows: list[dict]) -> None:
    print(f"{'case':28} {'minimize':>8} {'paths':>6} {'seconds':>9}")
    for row in rows:
        print(f"{row['case']:28} {str(row['minimize']):>8} "
              f"{row['paths']:>6} {row['seconds']:>9.4f}")


# -- pytest-benchmark entry points ------------------------------------------

def test_paper_case_minimized(benchmark):
    composed, q3 = _paper_case()
    benchmark(equivalence_time, composed, [q3], True)


def test_paper_case_raw(benchmark):
    composed, q3 = _paper_case()
    benchmark(equivalence_time, composed, [q3], False)


def test_decisions_agree():
    composed, q3 = _paper_case()
    assert programs_equivalent(
        prepare_program(composed, minimize_rules=True), [q3])
    assert programs_equivalent(
        prepare_program(composed, minimize_rules=False), [q3])


if __name__ == "__main__":
    print(__doc__)
    print_table(run_experiment())
