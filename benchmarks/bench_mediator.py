#!/usr/bin/env python3
"""E11 -- the Figure 1/2 mediation pipeline ("SIGMOD 97" decomposition).

For a growing number of sources (each with a year-selection capability),
the mediator plans and executes the SIGMOD-97 query per source.  Series
reported: source data size -> plan time, execute time, objects
transferred.  The shape to observe: planning cost is independent of data
size (the rewriter never looks at the data), while execution scales with
the selected fraction only (the year filter is pushed down).
"""

from __future__ import annotations

import random
import time

from repro.mediator import CapabilityView, Mediator, Source
from repro.oem import build_database, obj
from repro.tsl import parse_query

SIZES = (100, 400, 1600)


def make_source(name: str, pubs: int, seed: int) -> Source:
    rng = random.Random(seed)
    confs = ("sigmod", "vldb", "icde", "pods")
    records = []
    for index in range(pubs):
        records.append(obj("pub", [
            obj("title", f"{name}-{index}"),
            obj("conf", rng.choice(confs)),
            obj("year", rng.choice((1995, 1996, 1997))),
        ]))
    db = build_database(name, records)
    capability = CapabilityView.from_text(f"{name}_by_year", f"""
        <v(P) pub {{<c(P,L,W) L W>}}> :-
            <P pub {{<Y year $YEAR>}}>@{name} AND
            <P pub {{<X L W>}}>@{name}
    """)
    return Source(name, db, [capability])


def sigmod_97(source: str):
    return parse_query(
        f"<f(P) hit yes> :- <P pub {{<Y year 1997>}}>@{source} AND "
        f"<P pub {{<C conf sigmod>}}>@{source}")


def plan_only(mediator: Mediator, query):
    return mediator.plan(query)


def plan_and_execute(mediator: Mediator, query):
    return mediator.answer_with_report(query)


def run_experiment() -> list[dict]:
    rows = []
    for size in SIZES:
        source = make_source("s1", size, seed=size)
        mediator = Mediator(sources={"s1": source})
        query = sigmod_97("s1")
        started = time.perf_counter()
        plans = plan_only(mediator, query)
        t_plan = time.perf_counter() - started
        started = time.perf_counter()
        report = plan_and_execute(mediator, query)
        t_exec = time.perf_counter() - started
        rows.append({
            "pubs": size,
            "plan_s": t_plan,
            "exec_s": t_exec,
            "answers": len(report.answer.roots),
            "transferred": report.objects_transferred,
            "cost": plans[0].estimated_cost,
        })
    return rows


def print_table(rows: list[dict]) -> None:
    print(f"{'pubs':>6} {'plan(s)':>9} {'exec(s)':>9} {'answers':>8} "
          f"{'transferred':>12} {'est.cost':>9}")
    for row in rows:
        print(f"{row['pubs']:>6} {row['plan_s']:>9.3f} "
              f"{row['exec_s']:>9.3f} {row['answers']:>8} "
              f"{row['transferred']:>12} {row['cost']:>9.1f}")


# -- pytest-benchmark entry points ------------------------------------------

def test_plan_400(benchmark):
    mediator = Mediator(sources={"s1": make_source("s1", 400, seed=400)})
    plans = benchmark(plan_only, mediator, sigmod_97("s1"))
    assert plans


def test_execute_400(benchmark):
    mediator = Mediator(sources={"s1": make_source("s1", 400, seed=400)})
    report = benchmark(plan_and_execute, mediator, sigmod_97("s1"))
    assert report.answer.roots


def test_planning_is_data_size_independent():
    timings = []
    for size in (100, 1600):
        mediator = Mediator(
            sources={"s1": make_source("s1", size, seed=size)})
        query = sigmod_97("s1")
        mediator.plan(query)  # warm any import costs
        started = time.perf_counter()
        for _ in range(3):
            mediator.plan(query)
        timings.append((time.perf_counter() - started) / 3)
    # 16x more data must not make planning even 4x slower.
    assert timings[1] < 4 * max(timings[0], 1e-4)


if __name__ == "__main__":
    print(__doc__)
    print_table(run_experiment())
