#!/usr/bin/env python3
"""Concurrent load against the in-process rewrite service (serve series).

Drives N client threads against a live :class:`repro.server.ReproServer`
(real HTTP over loopback, real worker pool, real shared sessions) with
the paper's workload, and reports:

* throughput (requests/second) and wall time per concurrency level;
* p50/p90/p99 request latency, read back from the server's own
  ``server.seconds{endpoint=POST /rewrite}`` histogram -- the same
  numbers a Prometheus scrape of ``/metrics`` would show;
* memo hits served by the shared session pool (every client posts the
  same canonical queries, so all but the first few searches replay);
* a **parity check**: each response's rewriting set must be canonically
  fingerprint-identical to the serial in-process rewrite of the same
  query -- zero divergences under concurrency, or the bench raises;
* a **load-shed series**: a deliberately tiny server (1 worker,
  ``max_pending=2``) under a burst, asserting the 429 + ``server.shed``
  admission-control contract;
* a **recorder-overhead series**: the same load run with the flight
  recorder off and on.  The recorder is always-on in production, so the
  bench *asserts* the on-row's p50 stays within the noise floor of the
  off-row (a ratio bound plus an absolute floor, both stricter than the
  CI compare gate) and stamps both rows with ``within_noise``.
"""

from __future__ import annotations

import threading
import time

from repro.obs import MetricsRegistry
from repro.rewriting import RewriteSession, paper_dtd
from repro.rewriting.canon import program_key
from repro.server import ServerConfig, running_server
from repro.tsl import print_query
from repro.workloads import (query_q3, query_q5, query_q7, star_query,
                             star_view, view_v1)

#: Client-thread counts (the concurrency series).
CLIENTS = (1, 4, 8)

#: Requests each client issues (round-robin over the workload).
REQUESTS_PER_CLIENT = 30

#: Worker threads in the serving pool.
WORKERS = 4

#: Burst size + capacity for the load-shed series.
SHED_BURST = 12
SHED_MAX_PENDING = 2

#: Recorder-overhead series: concurrency level and the noise floor the
#: always-on recorder must stay within (p50 on <= max(ratio * off,
#: off + floor)).  Deliberately stricter than the CI compare gate
#: (3.0x / 0.25s) so a recorder slowdown fails here first.
OVERHEAD_CLIENTS = 4
OVERHEAD_RATIO = 2.0
OVERHEAD_FLOOR_MS = 0.5


def _dtd_text() -> str:
    from repro.rewriting.constraints import PAPER_DTD
    return PAPER_DTD


def _workload() -> list[dict]:
    """The request mix: the paper's Q3/Q5/Q7 over V1 with its DTD."""
    dtd = _dtd_text()
    views = {"V1": print_query(view_v1())}
    return [{"query": print_query(query), "views": views, "dtd": dtd}
            for query in (query_q3(), query_q5(), query_q7())]


def _serial_fingerprints(requests: list[dict]) -> list[str]:
    """The expected rewriting-set fingerprint per workload entry."""
    session = RewriteSession({"V1": view_v1()}, paper_dtd())
    fingerprints = []
    for entry in requests:
        from repro.tsl import parse_query
        result = session.rewrite(parse_query(entry["query"]))
        fingerprints.append(
            program_key([r.query for r in result.rewritings]))
    return fingerprints


def _response_fingerprint(body: dict) -> str:
    from repro.tsl import parse_query
    return program_key([parse_query(r["query"])
                        for r in body["rewritings"]])


def run_load(clients: int, requests_per_client: int = REQUESTS_PER_CLIENT,
             workers: int = WORKERS, recorder: bool = True) -> dict:
    """One concurrency level: clients x requests against a fresh server."""
    workload = _workload()
    expected = _serial_fingerprints(workload)
    registry = MetricsRegistry()
    divergences = 0
    failures: list[tuple[int, object]] = []
    lock = threading.Lock()

    with running_server(ServerConfig(port=0, workers=workers,
                                     max_pending=clients * 4 + 16,
                                     recorder=recorder),
                        metrics=registry) as srv:
        barrier = threading.Barrier(clients + 1)

        def client(client_index: int) -> None:
            nonlocal divergences
            barrier.wait()
            for i in range(requests_per_client):
                slot = (client_index + i) % len(workload)
                status, body = srv.post("/rewrite", workload[slot])
                if status != 200:
                    with lock:
                        failures.append((status, body))
                    continue
                if _response_fingerprint(body) != expected[slot]:
                    with lock:
                        divergences += 1

        threads = [threading.Thread(target=client, args=(index,))
                   for index in range(clients)]
        for thread in threads:
            thread.start()
        barrier.wait()
        started = time.perf_counter()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - started

        histogram = registry.histogram(
            "server.seconds", labels={"endpoint": "POST /rewrite"})
        snapshot = registry.snapshot()

    if failures:
        raise AssertionError(
            f"{len(failures)} request(s) failed under load; first: "
            f"{failures[0]}")
    if divergences:
        raise AssertionError(
            f"{divergences} parity divergence(s): concurrent responses "
            f"differ from the serial rewrite")

    total = clients * requests_per_client
    counters = snapshot["counters"]
    return {
        "scenario": f"{clients} client(s) x {requests_per_client}",
        "clients": clients,
        "requests": total,
        "seconds": elapsed,
        "rps": total / elapsed if elapsed > 0 else None,
        "p50_ms": (histogram.quantile(0.50) or 0.0) * 1e3,
        "p90_ms": (histogram.quantile(0.90) or 0.0) * 1e3,
        "p99_ms": (histogram.quantile(0.99) or 0.0) * 1e3,
        "memo_hits": counters.get("cache.rewrite.hits", 0),
        "shed": counters.get("server.shed", 0),
    }


def run_shed_burst() -> dict:
    """Admission control under a burst: tiny capacity, slow queries.

    A 1-worker server with ``max_pending=2`` receives ``SHED_BURST``
    concurrent star-query rewrites (the adversarial workload from the
    trace-smoke scenario).  Everything beyond capacity must be shed
    with 429 and counted on ``server.shed``; admitted requests finish
    200 (or 408 when their deadline fires first) -- never an error.
    """
    registry = MetricsRegistry()
    request = {"query": print_query(star_query(3)),
               "views": {"V": print_query(star_view(3))},
               "budget_ms": 2000}
    statuses: list[int] = []
    lock = threading.Lock()

    with running_server(ServerConfig(port=0, workers=1,
                                     max_pending=SHED_MAX_PENDING),
                        metrics=registry) as srv:
        barrier = threading.Barrier(SHED_BURST + 1)

        def client() -> None:
            barrier.wait()
            status, _body = srv.post("/rewrite", request)
            with lock:
                statuses.append(status)

        threads = [threading.Thread(target=client)
                   for _ in range(SHED_BURST)]
        for thread in threads:
            thread.start()
        barrier.wait()
        started = time.perf_counter()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - started
        shed = registry.snapshot()["counters"].get("server.shed", 0)

    rejected = sum(1 for status in statuses if status == 429)
    served = sum(1 for status in statuses if status in (200, 408))
    assert rejected + served == SHED_BURST, statuses
    assert shed == rejected, (shed, rejected)
    assert rejected > 0, "burst never exceeded capacity; raise SHED_BURST"
    return {
        "scenario": f"shed burst ({SHED_BURST} vs {SHED_MAX_PENDING})",
        "requests": SHED_BURST,
        "seconds": elapsed,
        "served": served,
        "rejected": rejected,
        "shed": shed,
    }


def run_recorder_overhead() -> list[dict]:
    """Flight-recorder cost: the same load with the recorder off and on.

    The recorder is always-on in the server, so this is the series that
    keeps it honest: the on-row's p50 must stay within
    ``max(OVERHEAD_RATIO * off, off + OVERHEAD_FLOOR_MS)`` or the bench
    fails outright.  Both rows carry distinct string identities
    (``recorder="off"|"on"``) so ``compare.py`` tracks them separately
    and never diffs an on-run against an off-baseline.
    """
    rows = []
    for state in ("off", "on"):
        row = run_load(OVERHEAD_CLIENTS, recorder=(state == "on"))
        row["scenario"] = "recorder overhead"
        row["recorder"] = state
        rows.append(row)
    off, on = rows
    limit_ms = max(off["p50_ms"] * OVERHEAD_RATIO,
                   off["p50_ms"] + OVERHEAD_FLOOR_MS)
    within = on["p50_ms"] <= limit_ms
    for row in rows:
        row["within_noise"] = within
    if not within:
        raise AssertionError(
            f"flight recorder overhead outside the noise floor: p50 "
            f"{off['p50_ms']:.3f}ms off -> {on['p50_ms']:.3f}ms on "
            f"(limit {limit_ms:.3f}ms)")
    return rows


def run_experiment() -> list[dict]:
    rows = [run_load(clients) for clients in CLIENTS]
    rows.append(run_shed_burst())
    rows.extend(run_recorder_overhead())
    return rows


def print_table(rows: list[dict]) -> None:
    print(f"{'scenario':28} {'reqs':>5} {'seconds':>8} {'rps':>8} "
          f"{'p50ms':>7} {'p90ms':>7} {'p99ms':>7} {'memo':>6} "
          f"{'shed':>5}")
    for row in rows:
        scenario = row["scenario"]
        if scenario == "recorder overhead":
            scenario = f"{scenario} ({row['recorder']})"
        rps = f"{row['rps']:>8.1f}" if row.get("rps") else f"{'-':>8}"
        p50 = f"{row['p50_ms']:>7.2f}" if "p50_ms" in row else f"{'-':>7}"
        p90 = f"{row['p90_ms']:>7.2f}" if "p90_ms" in row else f"{'-':>7}"
        p99 = f"{row['p99_ms']:>7.2f}" if "p99_ms" in row else f"{'-':>7}"
        memo = row.get("memo_hits", "-")
        print(f"{scenario:28} {row['requests']:>5} "
              f"{row['seconds']:>8.3f} {rps} {p50} {p90} {p99} "
              f"{memo:>6} {row.get('shed', 0):>5}")


if __name__ == "__main__":
    print_table(run_experiment())
