#!/usr/bin/env python3
"""E8 -- label inference and the chase are polynomial (Section 3.3).

Claim: "applying label inference and the chase always terminates in time
polynomial to the length of the queries and the constraints description."

Workload: chain queries of growing depth whose labels are all variables,
against a chain DTD that determines every label; the chase must infer all
of them.  Series reported: depth -> time; the fitted growth ratio stays
polynomial (doubling the input multiplies time by a constant factor, not
an exponential one).
"""

from __future__ import annotations

import time

from repro.logic.terms import Constant, FunctionTerm, Variable
from repro.rewriting import chase
from repro.rewriting.constraints import ChildSpec, Dtd
from repro.tsl.ast import Condition, ObjectPattern, Query, SetPattern

DEPTHS = (4, 8, 16, 32, 64)


def chain_dtd(depth: int) -> Dtd:
    dtd = Dtd(source="db")
    for level in range(1, depth):
        dtd.declare(f"l{level}", [ChildSpec(f"l{level + 1}", "1")])
    dtd.declare_atomic(f"l{depth}")
    return dtd


def variable_label_chain(depth: int) -> Query:
    """A chain whose first and last labels are known, the rest variables."""
    leaf: object = Variable("V")
    pattern = ObjectPattern(Variable(f"X{depth}"), Constant(f"l{depth}"),
                            leaf)
    for level in range(depth - 1, 1, -1):
        pattern = ObjectPattern(Variable(f"X{level}"),
                                Variable(f"L{level}"),
                                SetPattern((pattern,)))
    pattern = ObjectPattern(Variable("X1"), Constant("l1"),
                            SetPattern((pattern,)))
    head = ObjectPattern(FunctionTerm("f", (Variable("X1"),)),
                         Constant("result"), Variable("V"))
    return Query(head, (Condition(pattern, "db"),))


def chase_depth(depth: int) -> Query:
    return chase(variable_label_chain(depth), chain_dtd(depth))


def run_experiment() -> list[dict]:
    rows = []
    for depth in DEPTHS:
        started = time.perf_counter()
        chased = chase_depth(depth)
        elapsed = time.perf_counter() - started
        inferred = sum(
            1 for v in chased.all_variables() if v.name.startswith("L"))
        rows.append({"depth": depth, "seconds": elapsed,
                     "labels_left": inferred})
    return rows


def print_table(rows: list[dict]) -> None:
    print(f"{'depth':>6} {'seconds':>10} {'labels left':>12}")
    previous = None
    for row in rows:
        ratio = ""
        if previous:
            ratio = f"  (x{row['seconds'] / max(previous, 1e-9):.1f})"
        print(f"{row['depth']:>6} {row['seconds']:>10.4f} "
              f"{row['labels_left']:>12}{ratio}")
        previous = row["seconds"]


# -- pytest-benchmark entry points ------------------------------------------

def test_chase_depth_32(benchmark):
    chased = benchmark(chase_depth, 32)
    assert not any(v.name.startswith("L")
                   for v in chased.all_variables())


def test_all_labels_inferred():
    for depth in (4, 8):
        chased = chase_depth(depth)
        assert not any(v.name.startswith("L")
                       for v in chased.all_variables())


def test_polynomial_shape():
    timings = []
    for depth in (8, 16, 32):
        started = time.perf_counter()
        chase_depth(depth)
        timings.append(time.perf_counter() - started)
    # Doubling depth must not square^2 the time (allow a cubic factor
    # with generous noise headroom -- exponential would blow well past).
    assert timings[2] < 64 * max(timings[0], 1e-4)


if __name__ == "__main__":
    print(__doc__)
    print_table(run_experiment())
