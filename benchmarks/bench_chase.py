#!/usr/bin/env python3
"""E8 -- label inference and the chase are polynomial (Section 3.3).

Claim: "applying label inference and the chase always terminates in time
polynomial to the length of the queries and the constraints description."

Workload: chain queries of growing depth whose labels are all variables,
against a chain DTD that determines every label; the chase must infer all
of them.  Series reported: depth -> time; the fitted growth ratio stays
polynomial (doubling the input multiplies time by a constant factor, not
an exponential one).

The legacy-vs-fast rows compare the worklist label-inference and union
saturation kernels against their quadratic rebuild-the-query
predecessors (``chase(..., legacy=True)``); parity of the canonical
hashes is asserted before the speedup row is emitted.
"""

from __future__ import annotations

import time

from repro.logic.terms import Constant, FunctionTerm, Variable
from repro.rewriting import chase
from repro.rewriting.canon import query_key
from repro.rewriting.constraints import ChildSpec, Dtd
from repro.tsl.ast import Condition, ObjectPattern, Query, SetPattern

DEPTHS = (4, 8, 16, 32, 64)
LEGACY_DEPTHS = (16, 64)


def chain_dtd(depth: int) -> Dtd:
    dtd = Dtd(source="db")
    for level in range(1, depth):
        dtd.declare(f"l{level}", [ChildSpec(f"l{level + 1}", "1")])
    dtd.declare_atomic(f"l{depth}")
    return dtd


def variable_label_chain(depth: int) -> Query:
    """A chain whose first and last labels are known, the rest variables."""
    leaf: object = Variable("V")
    pattern = ObjectPattern(Variable(f"X{depth}"), Constant(f"l{depth}"),
                            leaf)
    for level in range(depth - 1, 1, -1):
        pattern = ObjectPattern(Variable(f"X{level}"),
                                Variable(f"L{level}"),
                                SetPattern((pattern,)))
    pattern = ObjectPattern(Variable("X1"), Constant("l1"),
                            SetPattern((pattern,)))
    head = ObjectPattern(FunctionTerm("f", (Variable("X1"),)),
                         Constant("result"), Variable("V"))
    return Query(head, (Condition(pattern, "db"),))


def chase_depth(depth: int, legacy: bool = False) -> Query:
    return chase(variable_label_chain(depth), chain_dtd(depth),
                 legacy=legacy)


def run_experiment() -> list[dict]:
    rows = []
    for depth in DEPTHS:
        started = time.perf_counter()
        chased = chase_depth(depth)
        elapsed = time.perf_counter() - started
        inferred = sum(
            1 for v in chased.all_variables() if v.name.startswith("L"))
        rows.append({"depth": depth, "seconds": elapsed,
                     "labels_left": inferred})
    for depth in LEGACY_DEPTHS:
        started = time.perf_counter()
        fast = chase_depth(depth)
        fast_s = time.perf_counter() - started
        started = time.perf_counter()
        legacy = chase_depth(depth, legacy=True)
        legacy_s = time.perf_counter() - started
        # The kernels must be invisible: identical canonical result.
        assert query_key(fast) == query_key(legacy), \
            f"legacy/fast chase parity broken at depth {depth}"
        rows.append({"mode": f"fast@{depth}", "depth": depth,
                     "seconds": fast_s})
        rows.append({"mode": f"legacy@{depth}", "depth": depth,
                     "seconds": legacy_s})
        rows.append({"mode": f"legacy-vs-fast@{depth}", "depth": depth,
                     "parity": True,
                     "speedup": legacy_s / max(fast_s, 1e-9)})
    return rows


def print_table(rows: list[dict]) -> None:
    print(f"{'mode':>20} {'depth':>6} {'seconds':>10} {'labels left':>12}")
    previous = None
    for row in rows:
        if "speedup" in row:
            print(f"{row['mode']:>20} {row['depth']:>6} "
                  f"{'':>10} {'':>12}  speedup x{row['speedup']:.1f}")
            continue
        ratio = ""
        if previous and "mode" not in row:
            ratio = f"  (x{row['seconds'] / max(previous, 1e-9):.1f})"
        print(f"{row.get('mode', ''):>20} {row['depth']:>6} "
              f"{row['seconds']:>10.4f} "
              f"{row.get('labels_left', ''):>12}{ratio}")
        if "mode" not in row:
            previous = row["seconds"]


# -- pytest-benchmark entry points ------------------------------------------

def test_chase_depth_32(benchmark):
    chased = benchmark(chase_depth, 32)
    assert not any(v.name.startswith("L")
                   for v in chased.all_variables())


def test_all_labels_inferred():
    for depth in (4, 8):
        chased = chase_depth(depth)
        assert not any(v.name.startswith("L")
                       for v in chased.all_variables())


def test_fast_and_legacy_chase_agree():
    for depth in (4, 16):
        assert query_key(chase_depth(depth)) == \
            query_key(chase_depth(depth, legacy=True))


def test_polynomial_shape():
    timings = []
    for depth in (8, 16, 32):
        started = time.perf_counter()
        chase_depth(depth)
        timings.append(time.perf_counter() - started)
    # Doubling depth must not square^2 the time (allow a cubic factor
    # with generous noise headroom -- exponential would blow well past).
    assert timings[2] < 64 * max(timings[0], 1e-4)


if __name__ == "__main__":
    print(__doc__)
    print_table(run_experiment())
