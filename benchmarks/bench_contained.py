#!/usr/bin/env python3
"""Extension bench -- maximally contained rewritings (Section 7).

When the views are *partial archives* (each holding one conference's
publications), an all-titles query has no equivalent rewriting; the
maximally contained rewritings recover the union of the archives.  Series
reported: number of archives -> contained rewritings found, fraction of
the full answer recovered, time.
"""

from __future__ import annotations

import time

from repro.rewriting import maximally_contained_rewritings
from repro.tsl import evaluate, evaluate_program, parse_query
from repro.workloads import CONFERENCES, conference_view, \
    generate_bibliography

ARCHIVE_COUNTS = (1, 2, 3, 4)
DB_SIZE = 300


def build_views(count: int) -> dict:
    return {f"arch_{conf}": conference_view(conf, f"arch_{conf}")
            for conf in CONFERENCES[:count]}


def titles_query():
    return parse_query("<f(P) title T> :- <P pub {<X title T>}>@db")


def run_once(count: int) -> dict:
    db = generate_bibliography(DB_SIZE, seed=17)
    views = build_views(count)
    query = titles_query()
    started = time.perf_counter()
    contained = maximally_contained_rewritings(query, views)
    elapsed = time.perf_counter() - started
    materialized = {name: evaluate(view, db, answer_name=name)
                    for name, view in views.items()}
    union = evaluate_program([r.query for r in contained], materialized)
    full = evaluate(query, db)
    coverage = (len(union.roots) / len(full.roots)) if full.roots else 1.0
    return {"archives": count,
            "rewritings": len(contained.rewritings),
            "coverage": coverage,
            "seconds": elapsed}


def run_experiment() -> list[dict]:
    return [run_once(count) for count in ARCHIVE_COUNTS]


def print_table(rows: list[dict]) -> None:
    print(f"{'archives':>8} {'rewritings':>11} {'coverage':>9} "
          f"{'seconds':>9}")
    for row in rows:
        print(f"{row['archives']:>8} {row['rewritings']:>11} "
              f"{row['coverage']:>8.0%} {row['seconds']:>9.3f}")


# -- pytest-benchmark entry points ------------------------------------------

def test_contained_three_archives(benchmark):
    row = benchmark(run_once, 3)
    benchmark.extra_info.update(
        {k: v for k, v in row.items() if k != "seconds"})


def test_coverage_grows_with_archives():
    coverages = [run_once(count)["coverage"]
                 for count in ARCHIVE_COUNTS]
    assert coverages == sorted(coverages)
    assert coverages[-1] > coverages[0]


if __name__ == "__main__":
    print(__doc__)
    print_table(run_experiment())
