"""Flight recorder over the wire: /debug endpoints, trace propagation,
the JSONL access log, and the label-cardinality guard.

Everything here drives a real server over loopback HTTP, so the
contracts asserted (request-id echo, byte-identical EXPLAIN between
``/debug/requests/<id>`` and ``/explain``, bounded endpoint labels) are
the deployed ones.
"""

import json

import pytest

from repro.obs import MetricsRegistry
from repro.obs.recorder import RECORDER_SCHEMA_VERSION
from repro.rewriting import Explanation, RewriteSession, parse_dtd
from repro.rewriting.constraints import PAPER_DTD
from repro.server import ServerConfig, normalize_endpoint, running_server
from repro.tsl import print_query
from repro.workloads import query_q3, query_q5, view_v1


def rewrite_body(**extra) -> dict:
    body = {"query": print_query(query_q3()),
            "views": {"V1": print_query(view_v1())},
            "dtd": PAPER_DTD}
    body.update(extra)
    return body


@pytest.fixture()
def srv(tmp_path):
    """A per-test server with tail capture forced on (slow_ms=0) and a
    JSONL access log, so every request retains full detail."""
    config = ServerConfig(port=0, workers=2, slow_ms=0.0,
                          access_log=str(tmp_path / "access.log"))
    with running_server(config, metrics=MetricsRegistry()) as thread:
        yield thread


class TestRequestIdPropagation:
    def test_client_supplied_id_is_echoed_everywhere(self, srv, tmp_path):
        status, headers, body = srv.request_full(
            "POST", "/rewrite", rewrite_body(),
            headers={"X-Repro-Request-Id": "client-id-42"})
        assert status == 200
        # 1. the response header
        assert headers["x-repro-request-id"] == "client-id-42"
        # 2. the flight-recorder record
        record = srv.server.recorder.get("client-id-42")
        assert record is not None
        assert record.endpoint == "POST /rewrite"
        # 3. the span attributes of the request root span
        roots = [span for span in record.trace if span["parent"] is None]
        assert roots and roots[0]["attrs"]["request_id"] == "client-id-42"
        # 4. the access log
        lines = [json.loads(line) for line in
                 (tmp_path / "access.log").read_text().splitlines()]
        assert any(entry["request_id"] == "client-id-42"
                   for entry in lines)

    def test_malformed_client_id_is_replaced(self, srv):
        _status, headers, _body = srv.request_full(
            "POST", "/rewrite", rewrite_body(),
            headers={"X-Repro-Request-Id": "bad id with spaces\x01"})
        assert headers["x-repro-request-id"] != "bad id with spaces\x01"
        assert len(headers["x-repro-request-id"]) == 16

    def test_generated_id_when_absent(self, srv):
        _status, headers, _body = srv.request_full("GET", "/healthz")
        assert len(headers["x-repro-request-id"]) == 16

    def test_traceparent_trace_id_is_adopted(self, srv):
        incoming = "00-" + "ab" * 16 + "-" + "cd" * 8 + "-01"
        _status, headers, _body = srv.request_full(
            "GET", "/healthz", headers={"traceparent": incoming})
        parts = headers["traceparent"].split("-")
        assert parts[0] == "00" and parts[3] == "01"
        assert parts[1] == "ab" * 16          # caller's trace id kept
        assert parts[2] != "cd" * 8           # our own span id

    def test_invalid_traceparent_gets_fresh_trace_id(self, srv):
        _status, headers, _body = srv.request_full(
            "GET", "/healthz", headers={"traceparent": "garbage"})
        parts = headers["traceparent"].split("-")
        assert len(parts) == 4 and len(parts[1]) == 32

    def test_access_log_is_structured_jsonl(self, srv, tmp_path):
        srv.post("/rewrite", rewrite_body())
        entries = [json.loads(line) for line in
                   (tmp_path / "access.log").read_text().splitlines()]
        entry = [e for e in entries if e["path"] == "/rewrite"][-1]
        assert entry["method"] == "POST"
        assert entry["status"] == 200
        assert entry["duration_ms"] >= 0
        assert entry["memo"] in ("hit", "miss")
        assert len(entry["trace_id"]) == 32


class TestDebugRequests:
    def test_ring_lists_completed_requests(self, srv):
        srv.post("/rewrite", rewrite_body())
        status, body = srv.get("/debug/requests")
        assert status == 200
        assert body["schema_version"] == RECORDER_SCHEMA_VERSION
        assert body["recorder"]["enabled"] is True
        rewrites = [r for r in body["requests"]
                    if r["endpoint"] == "POST /rewrite"]
        assert rewrites
        record = rewrites[0]
        assert record["status"] == 200
        assert record["config_key"] and record["query_key"]
        assert record["memo"] in ("hit", "miss")
        assert "rewrite" in record["phases_ms"]
        assert "queued" in record["phases_ms"]
        assert record["counters"]["candidates_tested"] >= 0
        # Summaries never carry the heavy detail.
        assert "trace" not in record and "explain" not in record

    def test_unknown_request_id_is_404(self, srv):
        status, body = srv.get("/debug/requests/nope")
        assert status == 404
        assert "no such request" in body["error"]["message"]

    def test_post_to_debug_is_405(self, srv):
        assert srv.post("/debug/requests", {})[0] == 405

    def test_unknown_debug_path_is_404(self, srv):
        assert srv.get("/debug/whatever")[0] == 404

    def test_explain_byte_identical_to_in_process(self, srv):
        """The acceptance contract: /debug/requests/<id> carries EXPLAIN
        JSON byte-identical to the in-process explain for the same
        request (and to the POST /explain response)."""
        status, _headers, wire = srv.request_full(
            "POST", "/explain", rewrite_body(),
            headers={"X-Repro-Request-Id": "explain-probe"})
        assert status == 200
        status, body = srv.get("/debug/requests/explain-probe")
        assert status == 200
        recorded = body["request"]["explain"]
        assert recorded is not None

        session = RewriteSession({"V1": view_v1()}, parse_dtd(PAPER_DTD))
        explanation = Explanation()
        session.rewrite(query_q3(), explain=explanation)
        local = json.dumps(explanation.to_json(), sort_keys=True)

        assert json.dumps(recorded, sort_keys=True) == local
        assert json.dumps(wire["explanation"], sort_keys=True) == local

    def test_memo_hit_explain_still_byte_identical(self, srv):
        srv.post("/rewrite", rewrite_body())   # cold: stores explanation
        srv.request_full("POST", "/rewrite", rewrite_body(),
                         headers={"X-Repro-Request-Id": "warm-probe"})
        status, body = srv.get("/debug/requests/warm-probe")
        assert status == 200
        assert body["request"]["memo"] == "hit"
        session = RewriteSession({"V1": view_v1()}, parse_dtd(PAPER_DTD))
        explanation = Explanation()
        session.rewrite(query_q3(), explain=explanation)
        assert json.dumps(body["request"]["explain"], sort_keys=True) \
            == json.dumps(explanation.to_json(), sort_keys=True)

    def test_slow_endpoint_returns_tail_capture(self, srv):
        srv.post("/rewrite", rewrite_body())   # slow_ms=0 -> everything
        status, body = srv.get("/debug/slow")
        assert status == 200
        assert body["slow_ms"] == 0.0
        assert body["requests"]
        assert all(r["detailed"] for r in body["requests"])
        assert body["requests"][0]["trace"]

    def test_error_requests_are_tail_captured(self, srv):
        srv.post("/rewrite", {"query": "not tsl ((", "views": {}})
        status, body = srv.get("/debug/slow")
        errors = [r for r in body["requests"] if r["status"] == 400]
        assert errors and errors[0]["error"] is True


class TestDebugState:
    def test_cache_aggregates_hit_rates(self, srv):
        srv.post("/rewrite", rewrite_body())
        srv.post("/rewrite", rewrite_body())
        status, body = srv.get("/debug/cache")
        assert status == 200
        tables = body["tables"]
        assert tables["rewrite"]["hits"] >= 1
        assert 0.0 < tables["rewrite"]["hit_rate"] <= 1.0

    def test_sessions_lists_per_config_tables(self, srv):
        srv.post("/rewrite", rewrite_body())
        status, body = srv.get("/debug/sessions")
        assert status == 200
        assert body["pool"]["sessions"] == 1
        (session,) = body["sessions"]
        assert len(session["config_key"]) == 32
        assert session["tables"]["rewrite"]["size"] >= 1

    def test_store_without_persistence(self, srv):
        status, body = srv.get("/debug/store")
        assert status == 200
        assert body["persistent"] is False
        assert body["store"] is None

    def test_store_with_persistence(self, tmp_path):
        config = ServerConfig(port=0, workers=1,
                              cache_dir=str(tmp_path / "cache"))
        with running_server(config) as thread:
            thread.post("/rewrite", rewrite_body())
            status, body = thread.get("/debug/store")
            assert status == 200
            assert body["persistent"] is True
            assert body["store"]["cache_shards"] >= 1
            assert isinstance(body["store"]["shard_entries"], list)


class TestRecorderDisabled:
    def test_no_recorder_means_empty_ring(self):
        config = ServerConfig(port=0, workers=1, recorder=False)
        with running_server(config) as thread:
            thread.post("/rewrite", rewrite_body())
            status, body = thread.get("/debug/requests")
            assert status == 200
            assert body["recorder"]["enabled"] is False
            assert body["requests"] == []
            # Wire propagation is independent of the recorder.
            _s, headers, _b = thread.request_full(
                "POST", "/rewrite", rewrite_body(),
                headers={"X-Repro-Request-Id": "still-echoed"})
            assert headers["x-repro-request-id"] == "still-echoed"


class TestLabelCardinality:
    def test_normalize_endpoint_folds_unknown_paths(self):
        assert normalize_endpoint("/rewrite") == "/rewrite"
        assert normalize_endpoint("/debug/requests/abc123") == \
            "/debug/requests/:id"
        assert normalize_endpoint("/nope") == "<other>"
        assert normalize_endpoint("/admin/../../etc/passwd") == "<other>"

    def test_404_scan_does_not_mint_labels(self, srv):
        for index in range(20):
            srv.get(f"/scanned-path-{index}")
        _status, text = srv.get("/metrics")
        assert "scanned-path" not in text
        assert 'endpoint="GET <other>",status="404"} 20' in text

    def test_gauges_exposed_on_scrape(self, srv):
        srv.post("/rewrite", rewrite_body())
        _status, text = srv.get("/metrics")
        assert "# TYPE repro_server_in_flight gauge" in text
        assert "# TYPE repro_server_queue_depth gauge" in text
        assert "# TYPE repro_server_sessions_live gauge" in text
        assert "repro_server_sessions_live 1" in text
        assert 'repro_server_memo_entries{table="rewrite"}' in text
        assert "# TYPE repro_recorder_requests gauge" in text


class TestHitRateIsolation:
    def test_distinct_queries_share_session_counters(self, srv):
        srv.post("/rewrite", rewrite_body())
        srv.post("/rewrite",
                 rewrite_body(query=print_query(query_q5())))
        status, body = srv.get("/debug/cache")
        assert status == 200
        assert body["tables"]["rewrite"]["size"] >= 2
