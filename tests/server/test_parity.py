"""Serving parity: the wire path must equal the in-process path.

Three batteries, from ISSUE satellites:

* **Corpus replay** -- every regression case in ``tests/corpus/`` goes
  through ``POST /rewrite`` with ``explain`` and must produce EXPLAIN
  JSON byte-identical to ``rewrite(..., explain=Explanation())`` run
  in-process on a fresh session (unsatisfiable cases must 422 exactly
  when the in-process chase raises).
* **Concurrency parity** -- K concurrent clients hammering one shared
  session pool must produce rewriting sets canonically
  fingerprint-identical to the same workload run serially on a fresh
  session.
* **Memo-replay identity** -- a memoized (replayed) EXPLAIN response
  is byte-identical to the cold one that populated the memo.
"""

import json
import os
import threading

import pytest

from repro.errors import ChaseContradictionError
from repro.obs import MetricsRegistry
from repro.rewriting import Explanation, RewriteSession, paper_dtd
from repro.rewriting.canon import program_key
from repro.rewriting.constraints import PAPER_DTD, parse_dtd
from repro.server import ServerConfig, running_server
from repro.oracle import load_corpus
from repro.tsl import parse_query, print_query
from repro.workloads import query_q3, query_q5, query_q7, view_v1

CORPUS_DIR = os.path.join(os.path.dirname(__file__), "..", "corpus")

CORPUS = load_corpus(CORPUS_DIR)


def canonical_json(data) -> str:
    """The byte-comparison form: key order and whitespace pinned."""
    return json.dumps(data, sort_keys=True, separators=(",", ":"))


def wire_body(case) -> dict:
    body = {"query": print_query(case.query),
            "views": {name: print_query(view)
                      for name, view in sorted(case.views.items())},
            "explain": True}
    if case.dtd_text is not None:
        body["dtd"] = case.dtd_text
    return body


def fingerprint(queries) -> str:
    return program_key(list(queries))


class TestCorpusReplay:
    """Every corpus case, wire vs in-process, byte-for-byte."""

    @pytest.mark.parametrize(
        "path,case", CORPUS,
        ids=[os.path.splitext(os.path.basename(p))[0] for p, _ in CORPUS])
    def test_wire_explain_matches_in_process(self, path, case):
        constraints = parse_dtd(case.dtd_text) if case.dtd_text else None
        session = RewriteSession(case.views, constraints)
        explanation = Explanation()
        try:
            result = session.rewrite(case.query, explain=explanation)
        except ChaseContradictionError:
            result = None

        with running_server(ServerConfig(port=0, workers=1)) as srv:
            status, body = srv.post("/rewrite", wire_body(case))

        if result is None:
            assert status == 422
            assert "unsatisfiable" in body["error"]["message"]
            return
        assert status == 200
        assert canonical_json(body["explanation"]) \
            == canonical_json(explanation.to_json())
        assert fingerprint(parse_query(r["query"])
                           for r in body["rewritings"]) \
            == fingerprint(r.query for r in result.rewritings)


class TestConcurrencyParity:
    """K concurrent rewrites == the same workload serially, fresh."""

    CLIENTS = 8
    ROUNDS = 4

    def workload(self) -> list[dict]:
        views = {"V1": print_query(view_v1())}
        return [{"query": print_query(query), "views": views,
                 "dtd": PAPER_DTD}
                for query in (query_q3(), query_q5(), query_q7())]

    def serial_expectations(self, workload):
        """Fingerprints + EXPLAIN JSON from a fresh serial session."""
        session = RewriteSession({"V1": view_v1()}, paper_dtd())
        expected = []
        for entry in workload:
            explanation = Explanation()
            result = session.rewrite(parse_query(entry["query"]),
                                     explain=explanation)
            expected.append(
                (fingerprint(r.query for r in result.rewritings),
                 canonical_json(explanation.to_json())))
        return expected

    def test_concurrent_pool_matches_serial_fresh_session(self):
        workload = self.workload()
        expected = self.serial_expectations(workload)
        responses: dict[int, list] = {i: [] for i in range(len(workload))}
        failures: list = []
        lock = threading.Lock()

        with running_server(ServerConfig(port=0, workers=4),
                            metrics=MetricsRegistry()) as srv:
            barrier = threading.Barrier(self.CLIENTS)

            def client(client_index: int) -> None:
                barrier.wait()
                for i in range(self.ROUNDS * len(workload)):
                    slot = (client_index + i) % len(workload)
                    body = dict(workload[slot], explain=True)
                    status, payload = srv.post("/rewrite", body)
                    with lock:
                        if status != 200:
                            failures.append((status, payload))
                        else:
                            responses[slot].append(payload)

            threads = [threading.Thread(target=client, args=(index,))
                       for index in range(self.CLIENTS)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()

        assert not failures, failures[:3]
        total = sum(len(v) for v in responses.values())
        assert total == self.CLIENTS * self.ROUNDS * len(workload)
        for slot, (expected_fp, expected_explain) in enumerate(expected):
            for payload in responses[slot]:
                assert fingerprint(parse_query(r["query"])
                                   for r in payload["rewritings"]) \
                    == expected_fp
                assert canonical_json(payload["explanation"]) \
                    == expected_explain
        # The pool actually shared work: all but the first few requests
        # per slot replay from the memo.
        memo_hits = sum(1 for slot in responses
                        for payload in responses[slot]
                        if payload["memo"] == "hit")
        assert memo_hits > total // 2


class TestMemoReplayIdentity:
    """Cold vs replayed EXPLAIN over the wire: byte-identical."""

    def test_memo_replay_explain_is_byte_identical(self):
        body = {"query": print_query(query_q3()),
                "views": {"V1": print_query(view_v1())},
                "dtd": PAPER_DTD, "explain": True}
        with running_server(ServerConfig(port=0, workers=1)) as srv:
            status1, cold = srv.post("/rewrite", body)
            status2, warm = srv.post("/rewrite", body)
        assert (status1, status2) == (200, 200)
        assert (cold["memo"], warm["memo"]) == ("miss", "hit")
        assert canonical_json(warm["explanation"]) \
            == canonical_json(cold["explanation"])
        assert warm["rewritings"] == cold["rewritings"]

    def test_alpha_variant_view_text_shares_the_session(self):
        """Canonical config keys: renamed view text hits the same memo."""
        view = view_v1()
        variant = print_query(view).replace("P'", "Pz").replace(
            "Y'", "Yw")
        assert variant != print_query(view)
        body = {"query": print_query(query_q3()),
                "views": {"V1": print_query(view)}, "dtd": PAPER_DTD}
        with running_server(ServerConfig(port=0, workers=1)) as srv:
            status1, cold = srv.post("/rewrite", body)
            status2, warm = srv.post(
                "/rewrite", dict(body, views={"V1": variant}))
            _status, health = srv.get("/healthz")
        assert (status1, status2) == (200, 200)
        assert warm["memo"] == "hit"
        assert health["sessions"] == 1
